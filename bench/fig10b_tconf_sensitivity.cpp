// Fig. 10(b): sensitivity of RC@3 to the anomaly-confidence threshold
// t_conf on RAPMD.  The paper selects values above 0.5 and reports a
// slight increase with t_conf.
#include "bench/bench_common.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Fig. 10(b)", "RC@3 vs t_conf on RAPMD",
                     bench::kDefaultSeed);

  const auto cases = bench::makeRapmdCases(bench::kDefaultSeed);

  util::TextTable table;
  table.setHeader({"t_conf", "RC@3", "mean time"});
  for (const double t_conf : {0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}) {
    core::RapMinerConfig config;
    config.search.t_conf = t_conf;
    const auto localizer = eval::rapminerLocalizer(config);
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
    table.addRow({util::TextTable::num(t_conf, 2),
                  util::TextTable::pct(eval::aggregateRecallAtK(runs, cases, 3)),
                  util::TextTable::duration(eval::aggregateTiming(runs).mean())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape: RC@3 increases slightly with t_conf; both\n"
              "thresholds leave a large stable operating region.\n");
  return 0;
}
