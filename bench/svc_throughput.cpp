// Localization service throughput harness: drives the LocalizeService
// request path (the exact code the HTTP workers run — overrides, content
// hashing, cache, execute) with identical POSTs of the 8-attribute
// benchmark snapshot and reports steady-state requests/s plus the
// latency distribution.
//
// The workload models the deployment's common case: every upstream
// detector asks about the same KPI window, so the FIRST request pays the
// full parse + Algorithm 1/2 search (reported as warm-up) and every
// subsequent request is an idempotent resubmission served from the
// ResultCache after hashing the raw body.  Steady state is therefore
// dominated by hashing ~megabytes per request — the cost the cache-first
// design bounds the hot path to.
//
//   $ ./svc_throughput [--threads 4] [--requests 250] [--journal PATH]
//                      [--json-out BENCH_svc_throughput.json]
//
// --journal wires a durable job journal (RAPJRNL-1, fsync'd) into the
// service, proving the crash-safety layer stays off the sync fast path:
// the floor must hold unchanged, because only async admissions append.
//
// Acceptance floor for the default shape: >= 200 req/s steady state;
// p99 lands in the JSON report for CI trending.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "dataset/cuboid.h"
#include "dataset/schema.h"
#include "io/csv.h"
#include "io/json.h"
#include "svc/service.h"
#include "util/strings.h"

using namespace rap;

namespace {

/// The fig9b sweep schema: 8 attributes, 69120 leaves.
const std::vector<std::int32_t> kCardinalities = {8, 6, 5, 4, 4, 3, 3, 2};

/// Builds the benchmark snapshot body: every leaf of the schema with a
/// clean forecast, one injected 1-dim root cause (A1=e2) dropping actual
/// traffic to 30% — the csv_localize demo recipe at bench scale.
std::string makeSnapshotCsv(const dataset::Schema& schema) {
  std::vector<io::CsvRow> rows;
  rows.reserve(static_cast<std::size_t>(schema.leafCount()) + 1);
  io::CsvRow header;
  for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
    header.push_back(schema.attribute(a).name());
  }
  header.push_back("real");
  header.push_back("predict");
  rows.push_back(std::move(header));

  const auto broken =
      dataset::AttributeCombination::parse(schema, "*,A1=e2,*,*,*,*,*,*")
          .value();
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const double f = 50.0 + static_cast<double>(i % 7) * 10.0;
    const double v = broken.matchesLeaf(leaf) ? f * 0.3 : f;
    io::CsvRow row;
    row.reserve(static_cast<std::size_t>(schema.attributeCount()) + 2);
    for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
      row.push_back(schema.attribute(a).elementName(leaf.slot(a)));
    }
    row.push_back(util::strFormat("%.1f", v));
    row.push_back(util::strFormat("%.1f", f));
    rows.push_back(std::move(row));
  }
  return io::writeCsv(rows);
}

obs::HttpRequest makeRequest(const std::string& body) {
  obs::HttpRequest request;
  request.method = "POST";
  request.path = "/api/v1/localize";
  request.query = "mode=sync";
  request.body = body;
  return request;
}

double percentileMs(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_seconds.size() - 1) + 0.5);
  return sorted_seconds[std::min(rank, sorted_seconds.size() - 1)] * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv, [](util::FlagParser& flags) {
    flags.addInt("threads", 4, "concurrent client threads");
    flags.addInt("requests", 250, "requests per thread (steady state)");
    flags.addString("json-out", "BENCH_svc_throughput.json",
                    "result file ('' = don't write)");
    flags.addString("journal", "",
                    "wire a durable job journal at this path ('' = off); "
                    "the floor must hold either way");
  });
  util::setLogLevel(util::LogLevel::kWarn);
  const auto& flags = obs_session.flags();

  const auto threads = static_cast<std::size_t>(flags.getInt("threads"));
  const auto per_thread = static_cast<std::size_t>(flags.getInt("requests"));

  bench::printHeader("svc throughput",
                     "LocalizeService requests/s on the 8-attr snapshot",
                     bench::kDefaultSeed);

  const auto schema = dataset::Schema::synthetic(kCardinalities);
  const std::string body = makeSnapshotCsv(schema);
  std::printf("snapshot: %llu leaves, %.2f MiB body\n",
              static_cast<unsigned long long>(schema.leafCount()),
              static_cast<double>(body.size()) / (1 << 20));

  std::unique_ptr<svc::JobJournal> journal;
  const std::string journal_path = flags.getString("journal");
  if (!journal_path.empty()) {
    auto opened = svc::JobJournal::open({.path = journal_path});
    if (!opened.isOk()) {
      std::fprintf(stderr, "journal: %s\n",
                   opened.status().toString().c_str());
      return 1;
    }
    journal = std::move(opened.value());
    std::printf("journal: ON (%s)\n", journal_path.c_str());
  }

  svc::LocalizeService::Options options;
  options.sync_row_limit = static_cast<std::size_t>(schema.leafCount());
  options.journal = journal.get();
  svc::LocalizeService service(schema, core::RapMinerConfig{}, options);

  // Warm-up: the one request that pays parse + search and fills the
  // cache (every later identical POST is the resubmission fast path).
  const auto warm_start = std::chrono::steady_clock::now();
  const auto warm = service.handleLocalize(makeRequest(body));
  const double warm_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    warm_start)
          .count();
  if (warm.status != 200) {
    std::fprintf(stderr, "warm-up request failed: %d %s\n", warm.status,
                 warm.body.c_str());
    return 1;
  }
  std::printf("warm-up (cache miss, full search): %.1f ms\n",
              warm_seconds * 1e3);

  std::vector<std::vector<double>> latencies(threads);
  std::atomic<std::uint64_t> failures{0};
  const auto run_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        latencies[t].reserve(per_thread);
        for (std::size_t i = 0; i < per_thread; ++i) {
          const auto start = std::chrono::steady_clock::now();
          const auto response = service.handleLocalize(makeRequest(body));
          const auto elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();
          if (response.status != 200) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          latencies[t].push_back(elapsed);
        }
      });
    }
    for (auto& client : clients) client.join();
  }
  const double run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();

  std::vector<double> all;
  all.reserve(threads * per_thread);
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  const double total = static_cast<double>(all.size());
  const double rps = run_seconds > 0.0 ? total / run_seconds : 0.0;
  const double p50 = percentileMs(all, 0.50);
  const double p95 = percentileMs(all, 0.95);
  const double p99 = percentileMs(all, 0.99);
  const auto& stats = service.cache().stats();
  constexpr double kFloorRps = 200.0;
  const bool pass = failures.load() == 0 && rps >= kFloorRps;

  std::printf(
      "steady state: %zu threads x %zu requests in %.2f s -> %.0f req/s\n",
      threads, per_thread, run_seconds, rps);
  std::printf("latency ms: p50=%.2f p95=%.2f p99=%.2f\n", p50, p95, p99);
  std::printf("cache: %llu hits, %llu misses; failures=%llu\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(failures.load()));
  std::printf("floor: >= %.0f req/s -> %s\n", kFloorRps,
              pass ? "PASS" : "FAIL");

  const std::string out_path = flags.getString("json-out");
  if (!out_path.empty()) {
    io::JsonWriter json;
    json.beginObject();
    json.key("benchmark");
    json.value("svc_throughput");
    json.key("rows");
    json.value(static_cast<std::int64_t>(schema.leafCount()));
    json.key("body_bytes");
    json.value(static_cast<std::int64_t>(body.size()));
    json.key("threads");
    json.value(static_cast<std::int64_t>(threads));
    json.key("requests");
    json.value(static_cast<std::int64_t>(all.size()));
    json.key("warmup_seconds");
    json.value(warm_seconds);
    json.key("run_seconds");
    json.value(run_seconds);
    json.key("rps");
    json.value(rps);
    json.key("p50_ms");
    json.value(p50);
    json.key("p95_ms");
    json.value(p95);
    json.key("p99_ms");
    json.value(p99);
    json.key("cache_hits");
    json.value(static_cast<std::int64_t>(stats.hits));
    json.key("cache_misses");
    json.value(static_cast<std::int64_t>(stats.misses));
    json.key("journal");
    json.value(!journal_path.empty());
    json.key("floor_rps");
    json.value(kFloorRps);
    json.key("pass");
    json.value(pass);
    bench::writeProvenance(json, static_cast<std::int64_t>(threads));
    json.endObject();
    std::ofstream out(out_path);
    out << std::move(json).str() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}
