// Fig. 8(b): RC@3 / RC@4 / RC@5 of every method on RAPMD (105 failure
// timepoints on the Table I CDN schema).
//
// Pass a dataset directory (written by examples/generate_dataset) as the
// first argument to evaluate materialized data instead of regenerating.
#include "bench/bench_common.h"
#include "eval/metrics.h"
#include "io/dataset_io.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Fig. 8(b)", "RC@k on RAPMD", bench::kDefaultSeed);

  std::vector<gen::Case> cases;
  if (!obs_session.positional().empty()) {
    const std::string& dir = obs_session.positional().front();
    auto loaded = io::loadDatasetDirectory(dir);
    if (!loaded) {
      std::fprintf(stderr, "%s\n", loaded.status().toString().c_str());
      return 1;
    }
    std::printf("evaluating materialized dataset %s (%zu cases)\n\n",
                dir.c_str(), loaded->cases.size());
    cases = std::move(loaded->cases);
  } else {
    cases = bench::makeRapmdCases(bench::kDefaultSeed);
  }

  // Table I schema summary, as the paper prints it.
  const auto& schema = cases.front().table.schema();
  std::printf("Table I schema: ");
  for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
    std::printf("%s(%d)%s", schema.attribute(a).name().c_str(),
                schema.cardinality(a),
                a + 1 < schema.attributeCount() ? ", " : "\n\n");
  }

  const auto localizers = eval::standardLocalizers();

  util::TextTable table;
  table.setHeader({"method", "RC@3", "RC@4", "RC@5"});
  for (const auto& localizer : localizers) {
    // One run with k = 5; RC@3/4 truncate the same ranking.
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
    std::vector<std::string> row{localizer.name};
    for (const std::int32_t k : {3, 4, 5}) {
      row.push_back(
          util::TextTable::pct(eval::aggregateRecallAtK(runs, cases, k)));
    }
    table.addRow(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper shape: RAPMiner best (>80%%), >= 10 pts over FP-growth;\n"
      "Squeeze degrades (assumption mismatch); Adtributor ~33%%.\n");
  return 0;
}
