// Extension study backing the paper's §VI remark that "there are many
// ways to realize association rule mining ... the efficiency of
// different implementation methods varies greatly": the same rule-based
// localizer driven by FP-growth vs. level-wise Apriori, on RAPMD.
// Effectiveness is identical by construction (both mine the exact
// frequent-itemset set); only the mining cost differs.
#include "baselines/fp_rap.h"
#include "bench/bench_common.h"
#include "eval/metrics.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Extension", "rule mining engines: FP-growth vs Apriori",
                     bench::kDefaultSeed);

  const auto cases = bench::makeRapmdCases(bench::kDefaultSeed, 60);

  util::TextTable table;
  table.setHeader({"engine", "RC@3", "mean time", "p95 time"});
  for (const auto engine : {baselines::RuleMiningEngine::kFpGrowth,
                            baselines::RuleMiningEngine::kApriori}) {
    baselines::FpRapConfig config;
    config.engine = engine;
    const eval::NamedLocalizer localizer{
        engine == baselines::RuleMiningEngine::kApriori ? "Apriori"
                                                        : "FP-growth",
        [config](const dataset::LeafTable& t, std::int32_t k) {
          return baselines::fpGrowthLocalize(t, config, k);
        }};
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
    const auto timing = eval::aggregateTiming(runs);
    table.addRow({localizer.name,
                  util::TextTable::pct(eval::aggregateRecallAtK(runs, cases, 3)),
                  util::TextTable::duration(timing.mean()),
                  util::TextTable::duration(timing.percentile(0.95))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: identical RC@3 (same itemsets), Apriori markedly\n"
              "slower — the paper's stated reason for choosing FP-growth.\n");
  return 0;
}
