// Table IV: the ratio of cuboids removed from the search lattice after
// deleting k redundant attributes (paper Proof 1) — both the analytic
// lower bound and the exact value measured on real lattices.
#include <cmath>

#include "bench/bench_common.h"
#include "core/classification_power.h"
#include "dataset/cuboid.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Table IV", "DecreaseRatio@k after deleting k attributes",
                     bench::kDefaultSeed);

  util::TextTable table;
  table.setHeader({"n", "k", "analytic (2^n-2^(n-k))/(2^n-1)",
                   "measured on lattice", "bound (2^k-1)/2^k"});
  for (const std::int32_t n : {4, 5, 6, 8}) {
    for (std::int32_t k = 1; k < n; ++k) {
      const double analytic = core::decreaseRatio(n, k);
      // Measure by actually counting cuboids of the two lattices.
      const dataset::CuboidMask full = (1u << n) - 1;
      const dataset::CuboidMask reduced = (1u << (n - k)) - 1;
      const double full_count =
          static_cast<double>(dataset::allCuboidsByLayer(full).size());
      const double reduced_count =
          static_cast<double>(dataset::allCuboidsByLayer(reduced).size());
      const double measured = (full_count - reduced_count) / full_count;
      const double bound =
          (std::pow(2.0, k) - 1.0) / std::pow(2.0, k);
      table.addRow({std::to_string(n), std::to_string(k),
                    util::TextTable::num(analytic, 5),
                    util::TextTable::num(measured, 5),
                    util::TextTable::num(bound, 5)});
    }
    table.addRule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper row (n=4): k=1..3 -> 0.5333, 0.8, 0.9333 exceed the\n"
              "bounds 0.5, 0.75, 0.875 of Table IV.\n");
  return 0;
}
