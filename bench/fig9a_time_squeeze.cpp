// Fig. 9(a): average localization running time per (n_dims, n_raps)
// group on Squeeze-B0, per method.
#include "bench/bench_common.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Fig. 9(a)", "mean running time on Squeeze-B0",
                     bench::kDefaultSeed);

  const auto groups = bench::makeSqueezeGroups(bench::kDefaultSeed);
  const auto localizers = eval::standardLocalizers();

  util::TextTable table;
  std::vector<std::string> header{"method"};
  for (const auto& group : groups) header.push_back(bench::groupLabel(group));
  table.setHeader(header);

  for (const auto& localizer : localizers) {
    std::vector<std::string> row{localizer.name};
    for (const auto& group : groups) {
      const auto runs =
          eval::runLocalizer(localizer, group.cases, {.k_equals_truth = true});
      row.push_back(
          util::TextTable::duration(eval::aggregateTiming(runs).mean()));
    }
    table.addRow(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper shape: Adtributor fastest on (1,*); RAPMiner ~1e-1 s and grows\n"
      "with RAP dimension; iDice slowest by orders of magnitude.\n");
  return 0;
}
