// Design-choice ablations for Algorithm 2 beyond the paper's Table VI:
//   (a) the early stop (lines 9-11) — time and search-effort saved vs.
//       RC@3 cost on RAPMD;
//   (b) the CP-weighted cuboid visit order — with early stop active,
//       visiting high-CP cuboids first should find covering candidates
//       sooner than plain numeric order.
#include "bench/bench_common.h"
#include "core/search.h"

using namespace rap;

namespace {

struct VariantResult {
  double rc3 = 0.0;
  double mean_time = 0.0;
  double mean_evals = 0.0;
  double mean_cuboids = 0.0;
};

VariantResult runVariant(const std::vector<gen::Case>& cases,
                         const core::RapMinerConfig& config) {
  VariantResult out;
  eval::RecallAtKAccumulator rc3(3);
  util::TimingStats timing;
  double evals = 0.0;
  double cuboids = 0.0;
  const core::RapMiner miner(config);
  for (const auto& c : cases) {
    const util::WallTimer timer;
    const auto result = miner.localize(c.table, 5);
    timing.add(timer.elapsedSeconds());
    rc3.add(result.patterns, c.truth);
    evals += static_cast<double>(result.stats.combinations_evaluated);
    cuboids += static_cast<double>(result.stats.cuboids_visited);
  }
  out.rc3 = rc3.value();
  out.mean_time = timing.mean();
  out.mean_evals = evals / static_cast<double>(cases.size());
  out.mean_cuboids = cuboids / static_cast<double>(cases.size());
  return out;
}

}  // namespace

namespace {

std::vector<std::pair<const char*, core::RapMinerConfig>> variants() {
  std::vector<std::pair<const char*, core::RapMinerConfig>> out;
  out.push_back({"full RAPMiner (early stop, CP order)", {}});
  {
    core::RapMinerConfig c;
    c.search.early_stop = false;
    out.push_back({"no early stop", c});
  }
  {
    core::RapMinerConfig c;
    c.search.order = core::CuboidOrder::kNumeric;
    out.push_back({"numeric cuboid order", c});
  }
  {
    core::RapMinerConfig c;
    c.search.early_stop = false;
    c.search.order = core::CuboidOrder::kNumeric;
    out.push_back({"no early stop + numeric order", c});
  }
  return out;
}

void runSection(const char* label, const std::vector<gen::Case>& cases) {
  util::TextTable table;
  table.setHeader({"variant", "RC@3", "mean time", "combos evaluated/case",
                   "cuboids visited/case"});
  for (const auto& [name, config] : variants()) {
    const auto r = runVariant(cases, config);
    table.addRow({name, util::TextTable::pct(r.rc3),
                  util::TextTable::duration(r.mean_time),
                  util::TextTable::num(r.mean_evals, 0),
                  util::TextTable::num(r.mean_cuboids, 1)});
  }
  std::printf("%s:\n%s\n", label, table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Ablation", "Algorithm 2 design choices on RAPMD",
                     bench::kDefaultSeed);

  // Clean verdicts: the early stop fires as soon as the candidates cover
  // every anomalous leaf, which happens early here.
  runSection("clean leaf verdicts (label_noise = 0)",
             bench::makeRapmdCases(bench::kDefaultSeed, 105,
                                   /*label_noise=*/0.0));

  // Noisy verdicts: isolated flipped leaves stay uncovered until the
  // deepest layer, so the early stop rarely fires — an honest limitation
  // of Algorithm 2's lines 9-11 under detector error.
  runSection("noisy leaf verdicts (label_noise = 2%)",
             bench::makeRapmdCases(bench::kDefaultSeed));

  std::printf(
      "expected: with clean labels the early stop removes most of the\n"
      "search; with noisy labels it is cost-neutral.  The CP-weighted\n"
      "cuboid order is worth a fraction of an RC@3 point either way.\n");
  return 0;
}
