// Micro-benchmarks of the primitives the localization algorithms are
// built on: group-by aggregation, classification power, the AC search,
// FP-growth, posting-list intersection and the density clustering.
//
// Besides the google-benchmark suite, the binary has a second mode:
//
//   micro_primitives --assert-zero-alloc
//
// runs the warmed-up workspace group-by over every cuboid of a sparse
// table with the allocation probe armed and exits non-zero if the
// steady state performed a single heap allocation — the CI bench-smoke
// job's enforcement of the allocation-free hot-path contract
// (docs/algorithms.md, "Workspace reuse").  The probe's replacement
// operator new/delete are compiled into this binary only (see
// src/util/alloc_probe.h).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <vector>

#include "alarm/monitor.h"
#include "baselines/fp_rap.h"
#include "forecast/forecaster.h"
#include "io/json.h"
#include "core/classification_power.h"
#include "core/rapminer.h"
#include "dataset/cuboid.h"
#include "dataset/groupby_kernel.h"
#include "dataset/index.h"
#include "gen/rapmd.h"
#include "mining/fpgrowth.h"
#include "obs/metrics.h"
#include "stats/histogram.h"
#include "util/alloc_probe.h"
#include "util/rng.h"

namespace {

using namespace rap;

const gen::Case& rapmdCase() {
  static const gen::Case kCase = [] {
    gen::RapmdConfig config;
    config.num_cases = 1;
    gen::RapmdGenerator generator(dataset::Schema::cdn(), config, 1234);
    return generator.generateCase(0);
  }();
  return kCase;
}

void BM_GroupByFullCuboid(benchmark::State& state) {
  const auto& table = rapmdCase().table;
  const auto mask = dataset::allAttributesMask(table.schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.groupBy(mask));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_GroupByFullCuboid);

void BM_GroupByLayer1(benchmark::State& state) {
  const auto& table = rapmdCase().table;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.groupBy(1u));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_GroupByLayer1);

/// Sparse workload for the workspace-kernel benches: the full cuboid
/// has 64*64*16 = 65536 cells but only 512 distinct leaves carry rows
/// (128x cells-to-groups) — the regime where the seed's dense full
/// sweep spends almost all its time scanning empty cells and the
/// touched-key pass wins.
const dataset::LeafTable& sparseTable() {
  static const dataset::LeafTable kTable = [] {
    const dataset::Schema schema = dataset::Schema::synthetic({64, 64, 16});
    util::Rng rng(4242);
    std::set<std::uint64_t> leaves;
    while (leaves.size() < 512) {
      leaves.insert(static_cast<std::uint64_t>(rng.uniformInt(
          0, static_cast<std::int64_t>(schema.leafCount()) - 1)));
    }
    const std::vector<std::uint64_t> picked(leaves.begin(), leaves.end());
    dataset::LeafTable table(schema);
    for (int r = 0; r < 2048; ++r) {
      const bool anomalous = r % 5 == 0;
      table.addRow(
          dataset::leafFromIndex(schema, picked[static_cast<std::size_t>(r) %
                                               picked.size()]),
          anomalous ? 10.0 : 100.0, 100.0, anomalous);
    }
    return table;
  }();
  return kTable;
}

void BM_GroupByKernelDenseSweep(benchmark::State& state) {
  // The seed baseline: zero-fill all 65536 cells, accumulate, sweep the
  // whole dense array, allocate a fresh result vector.  O(cuboid_size)
  // regardless of how few cells are live.
  const auto& table = sparseTable();
  const dataset::GroupByKernel kernel(table);
  const auto mask = dataset::allAttributesMask(table.schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.groupBy(mask));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_GroupByKernelDenseSweep);

void BM_GroupByKernelWorkspace(benchmark::State& state) {
  // The allocation-free path: touched-key tracking + sort, resetting
  // only the cells this cuboid dirtied, into retained buffers.
  // O(rows + groups log groups) per call, zero steady-state allocation.
  const auto& table = sparseTable();
  dataset::GroupByKernel kernel(table);
  dataset::GroupByScratch scratch;
  std::vector<dataset::GroupAggregate> out;
  const auto mask = dataset::allAttributesMask(table.schema());
  kernel.groupByInto(mask, scratch, out);  // size the buffers once
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.groupByInto(mask, scratch, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_GroupByKernelWorkspace);

void BM_GroupByKernelWorkspaceAllCuboids(benchmark::State& state) {
  // One full Algorithm-2-shaped pass: every cuboid of the lattice
  // through one retained workspace, the reuse pattern aggregateLayer
  // actually drives (alternating masks is what stresses the
  // touched-cell reset and the output-slot rewriting).
  const auto& table = sparseTable();
  dataset::GroupByKernel kernel(table);
  dataset::GroupByScratch scratch;
  std::vector<dataset::GroupAggregate> out;
  const auto cuboids = dataset::allCuboidsByLayer(
      dataset::allAttributesMask(table.schema()));
  for (const auto mask : cuboids) kernel.groupByInto(mask, scratch, out);
  for (auto _ : state) {
    std::size_t groups = 0;
    for (const auto mask : cuboids) {
      groups += kernel.groupByInto(mask, scratch, out);
    }
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(table.size() * cuboids.size()));
}
BENCHMARK(BM_GroupByKernelWorkspaceAllCuboids);

void BM_ClassificationPower(benchmark::State& state) {
  const auto& table = rapmdCase().table;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::classificationPowers(table));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_ClassificationPower);

void BM_RapMinerLocalize(benchmark::State& state) {
  const auto& table = rapmdCase().table;
  const core::RapMiner miner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.localize(table, 5));
  }
}
BENCHMARK(BM_RapMinerLocalize);

void BM_InvertedIndexBuild(benchmark::State& state) {
  const auto& table = rapmdCase().table;
  for (auto _ : state) {
    dataset::InvertedIndex index(table);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_PostingIntersection(benchmark::State& state) {
  const auto& table = rapmdCase().table;
  const dataset::InvertedIndex index(table);
  dataset::AttributeCombination ac(table.schema().attributeCount());
  ac.setSlot(0, 3);
  ac.setSlot(3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.rowsMatching(ac));
  }
}
BENCHMARK(BM_PostingIntersection);

void BM_FpGrowth(benchmark::State& state) {
  // Transactions from the case's anomalous leaves.
  const auto& table = rapmdCase().table;
  std::vector<mining::Transaction> txns;
  for (const auto& row : table.rows()) {
    if (!row.anomalous) continue;
    mining::Transaction txn;
    for (dataset::AttrId a = 0; a < table.schema().attributeCount(); ++a) {
      txn.push_back(a * 64 + row.ac.slot(a));
    }
    txns.push_back(std::move(txn));
  }
  mining::FpGrowthOptions options;
  options.min_support =
      std::max<std::uint64_t>(2, txns.size() / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::mineFrequentItemsets(txns, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(txns.size()));
}
BENCHMARK(BM_FpGrowth);

void BM_DensityClustering(benchmark::State& state) {
  util::Rng rng(99);
  std::vector<double> values;
  values.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    values.push_back(rng.bernoulli(0.5) ? rng.gaussian(0.3, 0.05)
                                        : rng.gaussian(1.2, 0.08));
  }
  for (auto _ : state) {
    stats::Histogram hist(-2.0, 2.0, 80);
    hist.addAll(values);
    benchmark::DoNotOptimize(stats::densityClusters(hist, 2, 0.6));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_DensityClustering);

void BM_AttributeCombinationOps(benchmark::State& state) {
  const auto schema = dataset::Schema::cdn();
  const auto ancestor =
      dataset::AttributeCombination::parse(schema, "(L1, *, *, Site1)")
          .value();
  const auto leaf = dataset::leafFromIndex(schema, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ancestor.matchesLeaf(leaf));
    benchmark::DoNotOptimize(ancestor.isAncestorOf(leaf));
    benchmark::DoNotOptimize(ancestor.cuboidMask());
  }
}
BENCHMARK(BM_AttributeCombinationOps);

void BM_HoltWintersForecast(benchmark::State& state) {
  std::vector<double> history;
  for (int t = 0; t < 1440 * 3; ++t) {
    history.push_back(100.0 + 30.0 * std::sin(t * 0.004));
  }
  const forecast::HoltWintersForecaster forecaster(1440);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forecaster.forecastNext(history));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(history.size()));
}
BENCHMARK(BM_HoltWintersForecast);

void BM_AlarmObserve(benchmark::State& state) {
  alarm::MonitorConfig config;
  config.season_length = 1440;
  alarm::KpiMonitor monitor(config);
  // Pre-fill two seasons.
  for (int t = 0; t < 1440 * 2; ++t) {
    monitor.observe(100.0 + 30.0 * std::sin(t * 0.004));
  }
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.observe(100.0 + 30.0 * std::sin(t)));
    t += 0.004;
  }
}
BENCHMARK(BM_AlarmObserve);

// The obs hot path: instrumentation sites resolve their series once,
// then the per-event cost is a gate load plus one relaxed atomic.
// These pin that cost down so "near-free when disabled" stays a
// measured claim, not a slogan.
void BM_MetricsGateDisabled(benchmark::State& state) {
  obs::setMetricsEnabled(false);
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench_gate_total");
  for (auto _ : state) {
    if (obs::metricsEnabled()) counter.increment();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsGateDisabled);

void BM_MetricsCounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench_counter_total");
  for (auto _ : state) {
    counter.increment();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterIncrement);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench_latency_seconds",
                                  obs::exponentialBuckets(1e-4, 4.0, 10));
  double v = 1e-4;
  for (auto _ : state) {
    hist.observe(v);
    v = v > 1.0 ? 1e-4 : v * 1.7;  // sweep the bucket scan's full range
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_JsonResultSerialization(benchmark::State& state) {
  const auto& c = rapmdCase();
  const auto result = core::RapMiner().localize(c.table, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::resultToJson(c.table.schema(), result));
  }
}
BENCHMARK(BM_JsonResultSerialization);

/// --assert-zero-alloc: drive the warmed-up workspace group-by over
/// every cuboid with the allocation probe armed.  Exit 0 iff the steady
/// state allocated nothing.
int assertZeroAlloc() {
  const auto& table = sparseTable();
  dataset::GroupByKernel kernel(table);
  dataset::GroupByScratch scratch;
  std::vector<dataset::GroupAggregate> out;
  const auto cuboids = dataset::allCuboidsByLayer(
      dataset::allAttributesMask(table.schema()));
  // Warm-up: two full passes size every buffer for its worst cuboid.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto mask : cuboids) kernel.groupByInto(mask, scratch, out);
  }
  util::allocProbeArm();
  std::uint64_t groups = 0;
  constexpr int kPasses = 8;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const auto mask : cuboids) {
      groups += kernel.groupByInto(mask, scratch, out);
    }
  }
  const std::uint64_t allocs = util::allocProbeDisarm();
  std::printf(
      "zero-alloc check: %llu heap allocations across %d steady-state "
      "passes x %zu cuboids (%llu groups aggregated)\n",
      static_cast<unsigned long long>(allocs), kPasses, cuboids.size(),
      static_cast<unsigned long long>(groups));
  if (allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: the steady-state group-by hot path allocated\n");
    return 1;
  }
  std::printf("OK: steady-state group-by is allocation-free\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  bool assert_zero_alloc = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-zero-alloc") == 0) {
      assert_zero_alloc = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (assert_zero_alloc) return assertZeroAlloc();
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
