// Fig. 9(b): average localization running time on RAPMD, per method.
//
// --sweep-threads turns the harness into the parallel-search scalability
// study instead: RAPMiner only, one run per thread count on a wider
// synthetic schema (8 attributes, deletion disabled, so every layer has
// enough cuboids to fan out), asserting that each thread count returns
// exactly the patterns of the serial reference before recording its
// timing.  The sweep writes BENCH_parallel_search.json for CI trending.
//
// --reuse appends the workspace-reuse study: the same cases localized
// cold (a fresh miner per call, the pre-pooling per-request shape) and
// warm (one retained miner whose WorkspacePool keeps the search
// buffers), asserting identical patterns and recording both timings in
// a "reuse" section of the JSON.  On its own it runs a serial sweep.
//
//   $ ./fig9b_time_rapmd                                  # paper figure
//   $ ./fig9b_time_rapmd --sweep-threads 1,2,4,8 --reuse \
//       --sweep-cases 20 --json-out BENCH_parallel_search.json
#include <algorithm>
#include <fstream>
#include <thread>

#include "bench/bench_common.h"
#include "io/json.h"
#include "util/strings.h"

using namespace rap;

namespace {

/// The sweep workload: 8 attributes so layers 2..4 hold 28/56/70
/// cuboids — enough independent aggregations per layer for the fan-out
/// to matter.  Deletion stays off so the lattice is not collapsed first.
std::vector<gen::Case> makeSweepCases(std::uint64_t seed,
                                      std::int32_t num_cases) {
  gen::RapmdConfig config;
  config.num_cases = num_cases;
  config.label_noise = 0.02;
  gen::RapmdGenerator generator(
      dataset::Schema::synthetic({8, 6, 5, 4, 4, 3, 3, 2}), config, seed);
  return generator.generate();
}

bool samePatterns(const std::vector<core::ScoredPattern>& a,
                  const std::vector<core::ScoredPattern>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].ac == b[i].ac) || a[i].confidence != b[i].confidence ||
        a[i].layer != b[i].layer || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

/// Cold-vs-warm workspace study (--reuse): the same cases localized by
/// a fresh serial miner per call (cold — every call pays the kernel
/// transpose and aggregation-scratch allocations, the per-request shape
/// the svc job path had before workspace pooling) and by one retained
/// miner (warm — its WorkspacePool keeps the buffers, so steady-state
/// calls are allocation-free).  The patterns must match exactly.
struct ReuseStudy {
  util::TimingStats cold;
  util::TimingStats warm;
  bool identical = true;
};

ReuseStudy runReuseStudy(const std::vector<gen::Case>& cases,
                         const core::RapMinerConfig& base, int passes) {
  core::RapMinerConfig config = base;
  config.parallel.threads = 1;  // isolate allocation cost from fan-out
  ReuseStudy study;
  const core::RapMiner warm_miner(config);
  // Warm pass: sizes the retained workspaces (and the caches, for both
  // sides — the cold miner touches the same tables).
  for (const auto& c : cases) warm_miner.localize(c.table, 0);
  for (int pass = 0; pass < passes; ++pass) {
    for (const auto& c : cases) {
      util::WallTimer timer;
      const core::RapMiner cold_miner(config);
      const auto cold_result = cold_miner.localize(c.table, 0);
      study.cold.add(timer.elapsedSeconds());
      timer.reset();
      const auto warm_result = warm_miner.localize(c.table, 0);
      study.warm.add(timer.elapsedSeconds());
      if (!samePatterns(cold_result.patterns, warm_result.patterns)) {
        study.identical = false;
      }
    }
  }
  return study;
}

int runThreadSweep(const util::FlagParser& flags) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto num_cases = static_cast<std::int32_t>(flags.getInt("sweep-cases"));
  std::vector<std::int32_t> thread_counts;
  const std::string sweep_spec = flags.getString("sweep-threads");
  if (!sweep_spec.empty()) {
    for (const auto& field : util::split(sweep_spec, ',')) {
      thread_counts.push_back(std::atoi(field.c_str()));
      if (thread_counts.back() < 1) {
        std::fprintf(stderr, "bad --sweep-threads entry '%s'\n",
                     field.c_str());
        return 2;
      }
    }
  }
  if (thread_counts.empty() || thread_counts.front() != 1) {
    // The serial run is the correctness + speedup baseline.  (--reuse
    // with no --sweep-threads lands here too: a serial-only sweep.)
    thread_counts.insert(thread_counts.begin(), 1);
  }

  bench::printHeader("Parallel search sweep",
                     "RAPMiner layer fan-out vs thread count", seed);
  const auto cases = makeSweepCases(seed, num_cases);
  std::printf("cases=%d schema=8 attrs (69,120 leaves) deletion=off\n\n",
              num_cases);

  core::RapMinerConfig base;
  base.cp.enable_attribute_deletion = false;

  // Serial reference: patterns per case, reused to check every other
  // thread count, plus the speedup denominator.
  std::vector<std::vector<core::ScoredPattern>> reference;
  double serial_mean = 0.0;

  util::TextTable table;
  table.setHeader({"threads", "mean", "p50", "p95", "max", "speedup"});

  io::JsonWriter json;
  json.beginObject();
  json.key("bench");
  json.value("parallel_search");
  json.key("seed");
  json.value(static_cast<std::int64_t>(seed));
  json.key("cases");
  json.value(static_cast<std::int64_t>(num_cases));
  json.key("schema_attributes");
  json.value(static_cast<std::int64_t>(8));
  json.key("hardware_concurrency");
  json.value(static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  bench::writeProvenance(
      json, *std::max_element(thread_counts.begin(), thread_counts.end()));
  json.key("results");
  json.beginArray();

  for (const auto threads : thread_counts) {
    core::RapMinerConfig config = base;
    config.parallel.threads = threads;
    const core::RapMiner miner(config);

    util::TimingStats timing;
    bool identical = true;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const util::WallTimer timer;
      const auto result = miner.localize(cases[i].table, /*k=*/0);
      timing.add(timer.elapsedSeconds());
      if (threads == 1) {
        reference.push_back(result.patterns);
      } else if (!samePatterns(result.patterns, reference[i])) {
        identical = false;
      }
    }
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: threads=%d diverged from the serial patterns\n",
                   threads);
      return 1;
    }
    if (threads == 1) serial_mean = timing.mean();
    const double speedup =
        timing.mean() > 0.0 ? serial_mean / timing.mean() : 0.0;

    table.addRow({std::to_string(threads),
                  util::TextTable::duration(timing.mean()),
                  util::TextTable::duration(timing.percentile(0.5)),
                  util::TextTable::duration(timing.percentile(0.95)),
                  util::TextTable::duration(timing.max()),
                  util::strFormat("%.2fx", speedup)});

    json.beginObject();
    json.key("threads");
    json.value(static_cast<std::int64_t>(threads));
    json.key("mean_seconds");
    json.value(timing.mean());
    json.key("p50_seconds");
    json.value(timing.percentile(0.5));
    json.key("p95_seconds");
    json.value(timing.percentile(0.95));
    json.key("max_seconds");
    json.value(timing.max());
    json.key("speedup_vs_serial");
    json.value(speedup);
    json.key("patterns_match_serial");
    json.value(true);
    json.endObject();
  }
  json.endArray();

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "speedup is bounded by the machine: hardware_concurrency=%u\n",
      std::thread::hardware_concurrency());

  if (flags.getBool("reuse")) {
    const auto study = runReuseStudy(cases, base, /*passes=*/3);
    if (!study.identical) {
      std::fprintf(stderr,
                   "FATAL: warm (workspace-reuse) patterns diverged from the "
                   "cold per-call miner\n");
      return 1;
    }
    const double warm_speedup = study.warm.mean() > 0.0
                                    ? study.cold.mean() / study.warm.mean()
                                    : 0.0;
    util::TextTable reuse_table;
    reuse_table.setHeader({"workspace", "mean", "p50", "p95", "max"});
    const auto addTimingRow = [&reuse_table](const char* label,
                                             const util::TimingStats& timing) {
      reuse_table.addRow({label, util::TextTable::duration(timing.mean()),
                          util::TextTable::duration(timing.percentile(0.5)),
                          util::TextTable::duration(timing.percentile(0.95)),
                          util::TextTable::duration(timing.max())});
    };
    addTimingRow("cold", study.cold);
    addTimingRow("warm", study.warm);
    std::printf("\nworkspace reuse (serial, %zu samples each): %.2fx\n%s\n",
                study.cold.count(), warm_speedup,
                reuse_table.render().c_str());

    json.key("reuse");
    json.beginObject();
    json.key("passes");
    json.value(static_cast<std::int64_t>(3));
    json.key("cold_mean_seconds");
    json.value(study.cold.mean());
    json.key("cold_p95_seconds");
    json.value(study.cold.percentile(0.95));
    json.key("warm_mean_seconds");
    json.value(study.warm.mean());
    json.key("warm_p95_seconds");
    json.value(study.warm.percentile(0.95));
    json.key("warm_speedup");
    json.value(warm_speedup);
    json.key("patterns_match_cold");
    json.value(true);
    json.endObject();
  }
  json.endObject();

  const std::string out_path = flags.getString("json-out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << std::move(json).str() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv, [](util::FlagParser& flags) {
    flags.addString("sweep-threads", "",
                    "comma-separated thread counts; non-empty switches the "
                    "harness to the parallel-search sweep");
    flags.addInt("sweep-cases", 10, "RAPMD cases per thread count (sweep)");
    flags.addInt("seed", static_cast<std::int64_t>(bench::kDefaultSeed),
                 "workload seed");
    flags.addString("json-out", "BENCH_parallel_search.json",
                    "sweep result file ('' = don't write)");
    flags.addBool("reuse", false,
                  "append the cold-vs-warm workspace-reuse study to the "
                  "sweep (alone it runs a serial-only sweep)");
  });
  util::setLogLevel(util::LogLevel::kWarn);

  if (!obs_session.flags().getString("sweep-threads").empty() ||
      obs_session.flags().getBool("reuse")) {
    return runThreadSweep(obs_session.flags());
  }

  bench::printHeader("Fig. 9(b)", "mean running time on RAPMD",
                     bench::kDefaultSeed);

  const auto cases = bench::makeRapmdCases(bench::kDefaultSeed);
  const auto localizers = eval::standardLocalizers();

  util::TextTable table;
  table.setHeader({"method", "mean", "p50", "p95", "max"});
  for (const auto& localizer : localizers) {
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
    const auto timing = eval::aggregateTiming(runs);
    table.addRow({localizer.name, util::TextTable::duration(timing.mean()),
                  util::TextTable::duration(timing.percentile(0.5)),
                  util::TextTable::duration(timing.percentile(0.95)),
                  util::TextTable::duration(timing.max())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper shape: RAPMiner slightly behind Squeeze/FP-growth (3-dim RAPs\n"
      "cost BFS depth) but in an acceptable range; iDice worst.\n");
  return 0;
}
