// Fig. 9(b): average localization running time on RAPMD, per method.
//
// --sweep-threads turns the harness into the parallel-search scalability
// study instead: RAPMiner only, one run per thread count on a wider
// synthetic schema (8 attributes, deletion disabled, so every layer has
// enough cuboids to fan out), asserting that each thread count returns
// exactly the patterns of the serial reference before recording its
// timing.  The sweep writes BENCH_parallel_search.json for CI trending.
//
//   $ ./fig9b_time_rapmd                                  # paper figure
//   $ ./fig9b_time_rapmd --sweep-threads 1,2,4,8 \
//       --sweep-cases 20 --json-out BENCH_parallel_search.json
#include <algorithm>
#include <fstream>
#include <thread>

#include "bench/bench_common.h"
#include "io/json.h"
#include "util/strings.h"

using namespace rap;

namespace {

/// The sweep workload: 8 attributes so layers 2..4 hold 28/56/70
/// cuboids — enough independent aggregations per layer for the fan-out
/// to matter.  Deletion stays off so the lattice is not collapsed first.
std::vector<gen::Case> makeSweepCases(std::uint64_t seed,
                                      std::int32_t num_cases) {
  gen::RapmdConfig config;
  config.num_cases = num_cases;
  config.label_noise = 0.02;
  gen::RapmdGenerator generator(
      dataset::Schema::synthetic({8, 6, 5, 4, 4, 3, 3, 2}), config, seed);
  return generator.generate();
}

bool samePatterns(const std::vector<core::ScoredPattern>& a,
                  const std::vector<core::ScoredPattern>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].ac == b[i].ac) || a[i].confidence != b[i].confidence ||
        a[i].layer != b[i].layer || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

int runThreadSweep(const util::FlagParser& flags) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto num_cases = static_cast<std::int32_t>(flags.getInt("sweep-cases"));
  std::vector<std::int32_t> thread_counts;
  for (const auto& field :
       util::split(flags.getString("sweep-threads"), ',')) {
    thread_counts.push_back(std::atoi(field.c_str()));
    if (thread_counts.back() < 1) {
      std::fprintf(stderr, "bad --sweep-threads entry '%s'\n", field.c_str());
      return 2;
    }
  }
  if (thread_counts.empty() || thread_counts.front() != 1) {
    // The serial run is the correctness + speedup baseline.
    thread_counts.insert(thread_counts.begin(), 1);
  }

  bench::printHeader("Parallel search sweep",
                     "RAPMiner layer fan-out vs thread count", seed);
  const auto cases = makeSweepCases(seed, num_cases);
  std::printf("cases=%d schema=8 attrs (69,120 leaves) deletion=off\n\n",
              num_cases);

  core::RapMinerConfig base;
  base.cp.enable_attribute_deletion = false;

  // Serial reference: patterns per case, reused to check every other
  // thread count, plus the speedup denominator.
  std::vector<std::vector<core::ScoredPattern>> reference;
  double serial_mean = 0.0;

  util::TextTable table;
  table.setHeader({"threads", "mean", "p50", "p95", "max", "speedup"});

  io::JsonWriter json;
  json.beginObject();
  json.key("bench");
  json.value("parallel_search");
  json.key("seed");
  json.value(static_cast<std::int64_t>(seed));
  json.key("cases");
  json.value(static_cast<std::int64_t>(num_cases));
  json.key("schema_attributes");
  json.value(static_cast<std::int64_t>(8));
  json.key("hardware_concurrency");
  json.value(static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  bench::writeProvenance(
      json, *std::max_element(thread_counts.begin(), thread_counts.end()));
  json.key("results");
  json.beginArray();

  for (const auto threads : thread_counts) {
    core::RapMinerConfig config = base;
    config.parallel.threads = threads;
    const core::RapMiner miner(config);

    util::TimingStats timing;
    bool identical = true;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const util::WallTimer timer;
      const auto result = miner.localize(cases[i].table, /*k=*/0);
      timing.add(timer.elapsedSeconds());
      if (threads == 1) {
        reference.push_back(result.patterns);
      } else if (!samePatterns(result.patterns, reference[i])) {
        identical = false;
      }
    }
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: threads=%d diverged from the serial patterns\n",
                   threads);
      return 1;
    }
    if (threads == 1) serial_mean = timing.mean();
    const double speedup =
        timing.mean() > 0.0 ? serial_mean / timing.mean() : 0.0;

    table.addRow({std::to_string(threads),
                  util::TextTable::duration(timing.mean()),
                  util::TextTable::duration(timing.percentile(0.5)),
                  util::TextTable::duration(timing.percentile(0.95)),
                  util::TextTable::duration(timing.max()),
                  util::strFormat("%.2fx", speedup)});

    json.beginObject();
    json.key("threads");
    json.value(static_cast<std::int64_t>(threads));
    json.key("mean_seconds");
    json.value(timing.mean());
    json.key("p50_seconds");
    json.value(timing.percentile(0.5));
    json.key("p95_seconds");
    json.value(timing.percentile(0.95));
    json.key("max_seconds");
    json.value(timing.max());
    json.key("speedup_vs_serial");
    json.value(speedup);
    json.key("patterns_match_serial");
    json.value(true);
    json.endObject();
  }
  json.endArray();
  json.endObject();

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "speedup is bounded by the machine: hardware_concurrency=%u\n",
      std::thread::hardware_concurrency());

  const std::string out_path = flags.getString("json-out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << std::move(json).str() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv, [](util::FlagParser& flags) {
    flags.addString("sweep-threads", "",
                    "comma-separated thread counts; non-empty switches the "
                    "harness to the parallel-search sweep");
    flags.addInt("sweep-cases", 10, "RAPMD cases per thread count (sweep)");
    flags.addInt("seed", static_cast<std::int64_t>(bench::kDefaultSeed),
                 "workload seed");
    flags.addString("json-out", "BENCH_parallel_search.json",
                    "sweep result file ('' = don't write)");
  });
  util::setLogLevel(util::LogLevel::kWarn);

  if (!obs_session.flags().getString("sweep-threads").empty()) {
    return runThreadSweep(obs_session.flags());
  }

  bench::printHeader("Fig. 9(b)", "mean running time on RAPMD",
                     bench::kDefaultSeed);

  const auto cases = bench::makeRapmdCases(bench::kDefaultSeed);
  const auto localizers = eval::standardLocalizers();

  util::TextTable table;
  table.setHeader({"method", "mean", "p50", "p95", "max"});
  for (const auto& localizer : localizers) {
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
    const auto timing = eval::aggregateTiming(runs);
    table.addRow({localizer.name, util::TextTable::duration(timing.mean()),
                  util::TextTable::duration(timing.percentile(0.5)),
                  util::TextTable::duration(timing.percentile(0.95)),
                  util::TextTable::duration(timing.max())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper shape: RAPMiner slightly behind Squeeze/FP-growth (3-dim RAPs\n"
      "cost BFS depth) but in an acceptable range; iDice worst.\n");
  return 0;
}
