// Fig. 9(b): average localization running time on RAPMD, per method.
#include "bench/bench_common.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Fig. 9(b)", "mean running time on RAPMD",
                     bench::kDefaultSeed);

  const auto cases = bench::makeRapmdCases(bench::kDefaultSeed);
  const auto localizers = eval::standardLocalizers();

  util::TextTable table;
  table.setHeader({"method", "mean", "p50", "p95", "max"});
  for (const auto& localizer : localizers) {
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
    const auto timing = eval::aggregateTiming(runs);
    table.addRow({localizer.name, util::TextTable::duration(timing.mean()),
                  util::TextTable::duration(timing.percentile(0.5)),
                  util::TextTable::duration(timing.percentile(0.95)),
                  util::TextTable::duration(timing.max())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper shape: RAPMiner slightly behind Squeeze/FP-growth (3-dim RAPs\n"
      "cost BFS depth) but in an acceptable range; iDice worst.\n");
  return 0;
}
