// Fig. 8(a): F1-score of every method on the Squeeze-B0 dataset, grouped
// by (n_dims, n_raps).  As in the paper (§V-B), the number of returned
// results equals the true RAP count of each case.
#include "bench/bench_common.h"
#include "eval/metrics.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Fig. 8(a)", "F1-score on Squeeze-B0 per (n_dims, n_raps)",
                     bench::kDefaultSeed);

  const auto groups = bench::makeSqueezeGroups(bench::kDefaultSeed);
  const auto localizers = eval::standardLocalizers();

  util::TextTable table;
  std::vector<std::string> header{"method"};
  for (const auto& group : groups) header.push_back(bench::groupLabel(group));
  table.setHeader(header);

  for (const auto& localizer : localizers) {
    std::vector<std::string> row{localizer.name};
    for (const auto& group : groups) {
      const auto runs =
          eval::runLocalizer(localizer, group.cases, {.k_equals_truth = true});
      row.push_back(util::TextTable::num(eval::aggregateF1(runs, group.cases)));
    }
    table.addRow(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper shape: RAPMiner ~ Squeeze ~ FP-growth near 1.0; Adtributor good\n"
      "only on (1,*); iDice inferior everywhere.\n");
  return 0;
}
