// Extension study of the paper's §V-F claim: "the efficiency of RAPMiner
// is not related to the total number of attributes, but the number of
// attributes contained in the RAPs, because the redundant attributes can
// be deleted by Algorithm 1".
//
// We grow the schema from 2 to 6 attributes (adding ISP and Protocol
// dimensions to the Table I CDN) while keeping the injected RAP
// dimension fixed at <= 2, and measure RAPMiner with and without the
// deletion stage.  With deletion, cost should track the RAP dimension
// (flat-ish); without it, cost should grow with the lattice (2^n - 1).
#include <fstream>

#include "bench/bench_common.h"
#include "util/strings.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv, [](util::FlagParser& flags) {
    flags.addInt("threads", 1,
                 "also time the no-deletion run with this layer fan-out "
                 "(>1 adds a column; 0 = all cores)");
    flags.addString("json-out", "BENCH_ext_scalability.json",
                    "result file ('' = don't write)");
  });
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Extension",
                     "scalability in attribute count (fixed RAP dimension)",
                     bench::kDefaultSeed);
  const auto fanout =
      static_cast<std::int32_t>(obs_session.flags().getInt("threads"));
  const std::int32_t fanout_threads = core::resolveThreads(fanout);
  const bool with_fanout = fanout_threads > 1;

  struct SchemaSpec {
    const char* label;
    std::vector<std::int32_t> cardinalities;
  };
  const std::vector<SchemaSpec> specs{
      {"2 attrs (33x20)", {33, 20}},
      {"3 attrs (+4)", {33, 20, 4}},
      {"4 attrs (+4) = Table I", {33, 20, 4, 4}},
      {"5 attrs (+ISP 8)", {33, 20, 4, 4, 8}},
      {"6 attrs (+Proto 3)", {33, 20, 4, 4, 8, 3}},
  };

  util::TextTable table;
  std::vector<std::string> header{"schema", "leaves", "cuboids", "RC@3",
                                  "time (deletion)", "time (no deletion)"};
  if (with_fanout) {
    header.push_back(
        util::strFormat("time (no del, %dt)", fanout_threads));
  }
  table.setHeader(header);

  io::JsonWriter json;
  json.beginObject();
  json.key("bench");
  json.value("ext_scalability");
  json.key("seed");
  json.value(static_cast<std::int64_t>(bench::kDefaultSeed));
  json.key("cases_per_schema");
  json.value(static_cast<std::int64_t>(15));
  bench::writeProvenance(json, fanout_threads);
  json.key("results");
  json.beginArray();

  for (const auto& spec : specs) {
    gen::RapmdConfig config;
    config.num_cases = 15;
    config.max_rap_dim = 2;  // fixed failure complexity
    config.label_noise = 0.02;
    gen::RapmdGenerator generator(
        dataset::Schema::synthetic(spec.cardinalities), config,
        bench::kDefaultSeed);
    const auto cases = generator.generate();

    core::RapMinerConfig with;
    core::RapMinerConfig without;
    without.cp.enable_attribute_deletion = false;
    const auto runs_with =
        eval::runLocalizer(eval::rapminerLocalizer(with), cases, {.k = 5});
    const auto runs_without =
        eval::runLocalizer(eval::rapminerLocalizer(without), cases, {.k = 5});

    std::vector<std::string> row{
        spec.label, std::to_string(generator.schema().leafCount()),
        std::to_string(generator.schema().cuboidCount()),
        util::TextTable::pct(eval::aggregateRecallAtK(runs_with, cases, 3)),
        util::TextTable::duration(eval::aggregateTiming(runs_with).mean()),
        util::TextTable::duration(eval::aggregateTiming(runs_without).mean())};

    json.beginObject();
    json.key("schema");
    json.value(spec.label);
    json.key("attributes");
    json.value(static_cast<std::int64_t>(spec.cardinalities.size()));
    json.key("leaves");
    json.value(static_cast<std::int64_t>(generator.schema().leafCount()));
    json.key("cuboids");
    json.value(static_cast<std::int64_t>(generator.schema().cuboidCount()));
    json.key("recall_at_3");
    json.value(eval::aggregateRecallAtK(runs_with, cases, 3));
    json.key("mean_seconds_deletion");
    json.value(eval::aggregateTiming(runs_with).mean());
    json.key("mean_seconds_no_deletion");
    json.value(eval::aggregateTiming(runs_without).mean());

    if (with_fanout) {
      core::RapMinerConfig fanned = without;
      fanned.parallel.threads = fanout_threads;
      const auto runs_fanned = eval::runLocalizer(
          eval::rapminerLocalizer(fanned, "RAPMiner-mt"), cases, {.k = 5});
      row.push_back(
          util::TextTable::duration(eval::aggregateTiming(runs_fanned).mean()));
      json.key("mean_seconds_no_deletion_fanout");
      json.value(eval::aggregateTiming(runs_fanned).mean());
    }
    json.endObject();
    table.addRow(row);
  }
  json.endArray();
  json.endObject();

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: with deletion, time tracks leaves (one CP pass + the\n"
      "RAP-dimension cuboids); without it, time additionally grows with\n"
      "the 2^n - 1 lattice.\n");

  const std::string out_path = obs_session.flags().getString("json-out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << std::move(json).str() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
