// Extension study of the paper's §V-F claim: "the efficiency of RAPMiner
// is not related to the total number of attributes, but the number of
// attributes contained in the RAPs, because the redundant attributes can
// be deleted by Algorithm 1".
//
// We grow the schema from 2 to 6 attributes (adding ISP and Protocol
// dimensions to the Table I CDN) while keeping the injected RAP
// dimension fixed at <= 2, and measure RAPMiner with and without the
// deletion stage.  With deletion, cost should track the RAP dimension
// (flat-ish); without it, cost should grow with the lattice (2^n - 1).
#include "bench/bench_common.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Extension",
                     "scalability in attribute count (fixed RAP dimension)",
                     bench::kDefaultSeed);

  struct SchemaSpec {
    const char* label;
    std::vector<std::int32_t> cardinalities;
  };
  const std::vector<SchemaSpec> specs{
      {"2 attrs (33x20)", {33, 20}},
      {"3 attrs (+4)", {33, 20, 4}},
      {"4 attrs (+4) = Table I", {33, 20, 4, 4}},
      {"5 attrs (+ISP 8)", {33, 20, 4, 4, 8}},
      {"6 attrs (+Proto 3)", {33, 20, 4, 4, 8, 3}},
  };

  util::TextTable table;
  table.setHeader({"schema", "leaves", "cuboids", "RC@3",
                   "time (deletion)", "time (no deletion)"});
  for (const auto& spec : specs) {
    gen::RapmdConfig config;
    config.num_cases = 15;
    config.max_rap_dim = 2;  // fixed failure complexity
    config.label_noise = 0.02;
    gen::RapmdGenerator generator(
        dataset::Schema::synthetic(spec.cardinalities), config,
        bench::kDefaultSeed);
    const auto cases = generator.generate();

    core::RapMinerConfig with;
    core::RapMinerConfig without;
    without.enable_attribute_deletion = false;
    const auto runs_with =
        eval::runLocalizer(eval::rapminerLocalizer(with), cases, {.k = 5});
    const auto runs_without =
        eval::runLocalizer(eval::rapminerLocalizer(without), cases, {.k = 5});

    table.addRow(
        {spec.label, std::to_string(generator.schema().leafCount()),
         std::to_string(generator.schema().cuboidCount()),
         util::TextTable::pct(eval::aggregateRecallAtK(runs_with, cases, 3)),
         util::TextTable::duration(eval::aggregateTiming(runs_with).mean()),
         util::TextTable::duration(
             eval::aggregateTiming(runs_without).mean())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: with deletion, time tracks leaves (one CP pass + the\n"
      "RAP-dimension cuboids); without it, time additionally grows with\n"
      "the 2^n - 1 lattice.\n");
  return 0;
}
