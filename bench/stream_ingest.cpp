// Ingestion throughput harness for the streaming engine: N producer
// threads push healthy leaf events (v == f, so detection and alarming
// stay quiet) through the full shard/window/seal path and the harness
// reports aggregate rows/s plus the engine's counters.
//
// The event stream advances through event time as it goes, so windows
// seal continuously and queue growth stays bounded — the peak queue
// depth is sampled during the run and printed against total capacity.
//
//   $ ./stream_ingest [--rows N] [--producers N] [--shards N]
//                     [--capacity N] [--policy block|drop-oldest|drop-newest]
//                     [--metrics-out metrics.txt]
//
// Acceptance floor for the default shape (4 producers, 4 shards, block
// backpressure): >= 1M rows/s aggregate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "dataset/schema.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "stream/engine.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace rap;

namespace {

bool parsePolicy(const std::string& name, stream::BackpressurePolicy* out) {
  if (name == "block") *out = stream::BackpressurePolicy::kBlock;
  else if (name == "drop-oldest") *out = stream::BackpressurePolicy::kDropOldest;
  else if (name == "drop-newest") *out = stream::BackpressurePolicy::kDropNewest;
  else return false;
  return true;
}

/// Only the streaming engine's families from the Prometheus snapshot.
std::string streamMetricLines() {
  std::istringstream all(obs::defaultRegistry().renderPrometheus());
  std::string out;
  std::string line;
  while (std::getline(all, line)) {
    if (line.find("rap_stream_") != std::string::npos) out += line + "\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addInt("rows", 4'000'000, "total events to ingest");
  flags.addInt("producers", 4, "concurrent producer threads");
  flags.addInt("shards", 4, "engine hash partitions");
  flags.addInt("capacity", 1 << 16, "per-shard queue capacity");
  flags.addString("policy", "block",
                  "backpressure: block | drop-oldest | drop-newest");
  flags.addDouble("lag-interval", 0.0,
                  "pipeline lag collector sample period in seconds "
                  "(0 = off); compare rows/s against 0 to measure the "
                  "collector's overhead");
  flags.addString("json-out", "BENCH_stream_ingest.json",
                  "result file ('' = don't write)");
  obs::addObsFlags(flags);
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }
  obs::enableFromFlags(flags);
  // The counters are part of this harness's report, flags or not.
  obs::setMetricsEnabled(true);

  stream::BackpressurePolicy policy;
  if (!parsePolicy(flags.getString("policy"), &policy)) {
    std::fprintf(stderr, "unknown --policy '%s'\n%s",
                 flags.getString("policy").c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }

  const auto total = static_cast<std::size_t>(flags.getInt("rows"));
  const auto producers = static_cast<std::size_t>(flags.getInt("producers"));

  stream::StreamConfig config;
  config.shards = static_cast<std::int32_t>(flags.getInt("shards"));
  config.queue_capacity = static_cast<std::size_t>(flags.getInt("capacity"));
  config.backpressure = policy;
  config.window_width = 60;
  config.trigger = stream::TriggerPolicy::kOnAlarm;
  config.lag_sample_interval_seconds = flags.getDouble("lag-interval");

  // A pool of concrete Table I CDN leaves, reused round-robin; building
  // the event (leaf copy included) is part of the measured producer work,
  // exactly what a collector shipping rows into the engine would do.
  const auto schema = dataset::Schema::cdn();
  constexpr std::size_t kPoolSize = 4096;
  std::vector<dataset::AttributeCombination> pool;
  pool.reserve(kPoolSize);
  util::Rng rng(20220627);
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    std::vector<dataset::ElemId> slots(
        static_cast<std::size_t>(schema.attributeCount()));
    for (std::size_t a = 0; a < slots.size(); ++a) {
      const auto attr = static_cast<dataset::AttrId>(a);
      slots[a] = static_cast<dataset::ElemId>(
          rng.uniformInt(0, schema.cardinality(attr) - 1));
    }
    pool.emplace_back(std::move(slots));
  }

  // Event time advances with the global index so windows seal as the run
  // progresses: ~64k events per window, tens of windows per run.
  constexpr std::size_t kEventsPerWindow = 1 << 16;
  const auto tsOf = [&](std::size_t i) {
    return static_cast<std::int64_t>(i / kEventsPerWindow) *
               config.window_width +
           static_cast<std::int64_t>(i % config.window_width);
  };

  stream::StreamEngine engine(schema, config);
  engine.start();

  std::printf("ingesting %zu rows from %zu producers into %d shards "
              "(policy=%s, capacity=%zu, lag-interval=%.3g)...\n",
              total, producers, config.shards,
              flags.getString("policy").c_str(), config.queue_capacity,
              config.lag_sample_interval_seconds);

  std::atomic<bool> running{true};
  std::atomic<std::int64_t> peak_depth{0};
  std::thread depth_sampler([&] {
    while (running.load(std::memory_order_acquire)) {
      const std::int64_t depth = engine.stats().queue_depth;
      std::int64_t peak = peak_depth.load(std::memory_order_relaxed);
      while (depth > peak &&
             !peak_depth.compare_exchange_weak(peak, depth)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  constexpr std::size_t kBatch = 512;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<stream::StreamEvent> batch;
      batch.reserve(kBatch);
      for (std::size_t i = p; i < total; i += producers) {
        stream::StreamEvent event;
        event.leaf = pool[i % kPoolSize];
        event.ts = tsOf(i);
        event.v = 100.0;
        event.f = 100.0;  // healthy: detector and alarm stay quiet
        batch.push_back(std::move(event));
        if (batch.size() == kBatch) {
          engine.ingestBatch(std::move(batch));
          batch.clear();
          batch.reserve(kBatch);
        }
      }
      if (!batch.empty()) engine.ingestBatch(std::move(batch));
    });
  }
  for (auto& t : threads) t.join();
  const auto offered_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  engine.stop();
  const auto drained_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  running.store(false, std::memory_order_release);
  depth_sampler.join();

  const auto stats = engine.stats();
  const double rows_per_s = static_cast<double>(total) / offered_elapsed;
  const std::int64_t total_capacity =
      static_cast<std::int64_t>(config.queue_capacity) * config.shards;
  std::printf("\noffered  %zu rows in %.3f s  ->  %.2fM rows/s aggregate\n",
              total, offered_elapsed, rows_per_s / 1e6);
  std::printf("drained  everything in %.3f s total\n", drained_elapsed);
  std::printf("peak queue depth %lld / %lld capacity  (final %lld)\n",
              static_cast<long long>(peak_depth.load()),
              static_cast<long long>(total_capacity),
              static_cast<long long>(stats.queue_depth));
  std::printf("ingested %llu  dropped_oldest %llu  dropped_newest %llu  "
              "windows %llu  alarms %llu  localizations %llu\n\n",
              static_cast<unsigned long long>(stats.ingested),
              static_cast<unsigned long long>(stats.dropped_oldest),
              static_cast<unsigned long long>(stats.dropped_newest),
              static_cast<unsigned long long>(stats.windows_sealed),
              static_cast<unsigned long long>(stats.alarms),
              static_cast<unsigned long long>(stats.localizations));
  std::printf("%s", streamMetricLines().c_str());
  (void)obs::dumpFromFlags(flags);

  const bool pass = rows_per_s >= 1e6;
  const std::string out_path = flags.getString("json-out");
  if (!out_path.empty()) {
    io::JsonWriter json;
    json.beginObject();
    json.key("bench");
    json.value("stream_ingest");
    json.key("rows");
    json.value(static_cast<std::int64_t>(total));
    json.key("producers");
    json.value(static_cast<std::int64_t>(producers));
    json.key("shards");
    json.value(static_cast<std::int64_t>(config.shards));
    json.key("queue_capacity");
    json.value(static_cast<std::int64_t>(config.queue_capacity));
    json.key("policy");
    json.value(flags.getString("policy"));
    json.key("lag_sample_interval_seconds");
    json.value(config.lag_sample_interval_seconds);
    json.key("offered_seconds");
    json.value(offered_elapsed);
    json.key("drained_seconds");
    json.value(drained_elapsed);
    json.key("rows_per_second");
    json.value(rows_per_s);
    json.key("peak_queue_depth");
    json.value(static_cast<std::int64_t>(peak_depth.load()));
    json.key("queue_capacity_total");
    json.value(total_capacity);
    json.key("ingested");
    json.value(static_cast<std::int64_t>(stats.ingested));
    json.key("dropped_oldest");
    json.value(static_cast<std::int64_t>(stats.dropped_oldest));
    json.key("dropped_newest");
    json.value(static_cast<std::int64_t>(stats.dropped_newest));
    json.key("windows_sealed");
    json.value(static_cast<std::int64_t>(stats.windows_sealed));
    json.key("floor_rows_per_second");
    json.value(1e6);
    json.key("pass");
    json.value(pass);
    bench::writeProvenance(json, static_cast<std::int64_t>(producers));
    json.endObject();
    std::ofstream out(out_path);
    out << std::move(json).str() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  return pass ? 0 : 1;
}
