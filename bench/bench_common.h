// Shared workload builders and formatting for the bench harnesses.
// Every harness prints its seed and workload sizes so the tables in
// EXPERIMENTS.md are reproducible.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "eval/runner.h"
#include "gen/rapmd.h"
#include "gen/squeeze_gen.h"
#include "io/json.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table.h"

namespace rap::bench {

inline constexpr std::uint64_t kDefaultSeed = 20220627;  // DSN'22 week

/// Opt-in telemetry for the bench harnesses: parses --metrics-out /
/// --trace-out / --log-json, enables the requested sinks for the run,
/// and dumps the snapshots when the harness exits.  With no flags the
/// pipeline instrumentation stays disabled (its near-zero default), so
/// timing harnesses measure the same code path as before.
class ObsSession {
 public:
  /// `add_flags` lets a harness register its own flags on the shared
  /// parser before parsing (read them back via flags()).
  ObsSession(int argc, char** argv,
             const std::function<void(util::FlagParser&)>& add_flags = {}) {
    obs::addObsFlags(flags_);
    if (add_flags) add_flags(flags_);
    if (auto status = flags_.parse(argc, argv); !status.isOk()) {
      std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                   flags_.helpText(argv[0]).c_str());
      std::exit(2);
    }
    obs::enableFromFlags(flags_);
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession() { (void)obs::dumpFromFlags(flags_); }

  /// Non-flag arguments (some harnesses take a dataset directory).
  const std::vector<std::string>& positional() const noexcept {
    return flags_.positional();
  }

  /// Access to harness flags registered via the constructor callback.
  const util::FlagParser& flags() const noexcept { return flags_; }

 private:
  util::FlagParser flags_;
};

/// The paper's RAPMD workload: 105 failure timepoints on the Table I CDN
/// schema.  A 2% leaf-verdict flip rate emulates the detection errors a
/// real forecasting model leaves behind (the paper's background KPIs are
/// sparse and noisy, §V-A) — without it every confidence is exactly 1.0
/// and the t_conf sensitivity of Fig. 10(b) would be degenerate.
inline std::vector<gen::Case> makeRapmdCases(std::uint64_t seed,
                                             std::int32_t num_cases = 105,
                                             double label_noise = 0.02) {
  gen::RapmdConfig config;
  config.num_cases = num_cases;
  config.label_noise = label_noise;
  gen::RapmdGenerator generator(dataset::Schema::cdn(), config, seed);
  return generator.generate();
}

/// The paper's Squeeze-B0 workload: groups (n,m), n,m in 1..3.
inline std::vector<gen::SqueezeGroup> makeSqueezeGroups(
    std::uint64_t seed, std::int32_t cases_per_group = 25,
    std::int32_t noise_level = 0) {
  gen::SqueezeGenConfig config;
  config.cases_per_group = cases_per_group;
  config.noise_sigma = gen::squeezeNoiseSigma(noise_level);
  gen::SqueezeGenerator generator(config, seed);
  return generator.generateAllGroups();
}

inline std::string groupLabel(const gen::SqueezeGroup& group) {
  return "(" + std::to_string(group.n_dims) + "," +
         std::to_string(group.n_raps) + ")";
}

inline void printHeader(const char* figure, const char* description,
                        std::uint64_t seed) {
  std::printf("== %s — %s ==\n", figure, description);
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));
}

/// Measurement provenance, written as a "provenance" object into every
/// BENCH_*.json.  A committed baseline from a 1-core CI runner must be
/// distinguishable from a 16-core dev box, and a Debug build from a
/// Release one — otherwise a regression gate compares apples to oranges.
/// `threads` is the worker count the harness actually used (for sweeps,
/// the largest swept value).
inline void writeProvenance(io::JsonWriter& json, std::int64_t threads) {
  const obs::BuildInfo& build = obs::buildInfo();
  json.key("provenance");
  json.beginObject();
  json.key("hardware_concurrency");
  json.value(static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.key("threads");
  json.value(threads);
  json.key("build_type");
  json.value(build.build_type);
  json.key("compiler");
  json.value(build.compiler);
  json.endObject();
}

}  // namespace rap::bench
