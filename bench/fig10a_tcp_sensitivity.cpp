// Fig. 10(a): sensitivity of RC@3 to the classification-power threshold
// t_CP on RAPMD.  The paper sweeps small values and reports a slight
// decrease; our CP axis is scaled to the synthetic background's noise
// floor (~3e-4 for a RAP-unrelated attribute — see DESIGN.md).
#include "bench/bench_common.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Fig. 10(a)", "RC@3 vs t_CP on RAPMD",
                     bench::kDefaultSeed);

  const auto cases = bench::makeRapmdCases(bench::kDefaultSeed);

  util::TextTable table;
  table.setHeader({"t_CP", "RC@3", "mean time"});
  for (const double t_cp :
       {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    core::RapMinerConfig config;
    config.cp.t_cp = t_cp;
    const auto localizer = eval::rapminerLocalizer(config);
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
    table.addRow({util::TextTable::num(t_cp, 4),
                  util::TextTable::pct(eval::aggregateRecallAtK(runs, cases, 3)),
                  util::TextTable::duration(eval::aggregateTiming(runs).mean())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape: RC@3 decreases slightly as t_CP grows.\n");
  return 0;
}
