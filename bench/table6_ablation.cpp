// Table VI: efficiency-improvement study of the CP-based redundant
// attribute deletion — RAPMiner with vs. without stage 1 on RAPMD.
#include "bench/bench_common.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Table VI",
                     "RAPMiner with vs. without redundant attribute deletion",
                     bench::kDefaultSeed);

  const auto cases = bench::makeRapmdCases(bench::kDefaultSeed);

  struct Variant {
    const char* name;
    bool deletion;
    double rc3 = 0.0;
    double mean_time = 0.0;
  };
  Variant variants[] = {{"RAPMiner with Redundant Attribute Deletion", true},
                        {"RAPMiner without Redundant Attribute Deletion", false}};
  for (auto& variant : variants) {
    core::RapMinerConfig config;
    config.cp.enable_attribute_deletion = variant.deletion;
    const auto localizer = eval::rapminerLocalizer(config);
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 3});
    variant.rc3 = eval::aggregateRecallAtK(runs, cases, 3);
    variant.mean_time = eval::aggregateTiming(runs).mean();
  }

  const double efficiency_improvement =
      (variants[1].mean_time - variants[0].mean_time) / variants[1].mean_time;
  const double effectiveness_decrease =
      variants[1].rc3 <= 0.0
          ? 0.0
          : (variants[1].rc3 - variants[0].rc3) / variants[1].rc3;

  util::TextTable table;
  table.setHeader({"Method", "RC@3", "Time", "Efficiency improvement",
                   "Effectiveness decreased"});
  table.addRow({variants[0].name, util::TextTable::pct(variants[0].rc3),
                util::TextTable::duration(variants[0].mean_time),
                util::TextTable::pct(efficiency_improvement),
                util::TextTable::pct(effectiveness_decrease)});
  table.addRow({variants[1].name, util::TextTable::pct(variants[1].rc3),
                util::TextTable::duration(variants[1].mean_time), "-", "-"});
  std::printf("%s\n", table.render().c_str());
  std::printf("paper: 81.4%% / 0.618s with deletion vs 86.3%% / 1.067s\n"
              "without -> 42.07%% faster at a 4.87%% effectiveness cost.\n");
  return 0;
}
