// Extension study: the published Squeeze dataset ships noise levels
// B0..B4; the paper evaluates only B0, arguing noise merely degrades the
// leaf-level detection that feeds every method (§V-E.1).  This bench
// verifies that argument end-to-end: F1 of each method per noise level
// on the (2,2) group, plus the leaf-verdict error rate the detector
// would incur.
#include "bench/bench_common.h"
#include "eval/metrics.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Extension", "F1 vs dataset noise level (group (2,2))",
                     bench::kDefaultSeed);

  const auto localizers = eval::standardLocalizers();
  util::TextTable table;
  std::vector<std::string> header{"method"};
  for (std::int32_t level = 0; level <= 4; ++level) {
    header.push_back("B" + std::to_string(level));
  }
  table.setHeader(header);

  std::vector<std::vector<std::string>> rows(localizers.size());
  for (std::size_t i = 0; i < localizers.size(); ++i) {
    rows[i].push_back(localizers[i].name);
  }
  for (std::int32_t level = 0; level <= 4; ++level) {
    gen::SqueezeGenConfig config;
    config.cases_per_group = 20;
    config.noise_sigma = gen::squeezeNoiseSigma(level);
    gen::SqueezeGenerator generator(config, bench::kDefaultSeed);
    const auto group = generator.generateGroup(2, 2);
    for (std::size_t i = 0; i < localizers.size(); ++i) {
      const auto runs = eval::runLocalizer(localizers[i], group.cases,
                                           {.k_equals_truth = true});
      rows[i].push_back(
          util::TextTable::num(eval::aggregateF1(runs, group.cases)));
    }
  }
  for (auto& row : rows) table.addRow(std::move(row));
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: every method degrades with the noise level; the\n"
              "ordering of methods is preserved (the paper's rationale for\n"
              "evaluating B0 only).\n");
  return 0;
}
