// Extension comparison: HotSpot (MCTS + ripple-effect potential score,
// §VI related work) against RAPMiner and Squeeze.  HotSpot assumes a
// single cuboid per failure, so it is run on the Squeeze-style dataset
// (which honors that assumption) and on RAPMD (which breaks it).
#include "bench/bench_common.h"
#include "eval/metrics.h"

using namespace rap;

int main(int argc, char** argv) {
  const bench::ObsSession obs_session(argc, argv);
  util::setLogLevel(util::LogLevel::kWarn);
  bench::printHeader("Extension", "HotSpot vs RAPMiner vs Squeeze",
                     bench::kDefaultSeed);

  const auto localizers =
      eval::standardLocalizers({}, /*include_hotspot=*/true);
  std::vector<const eval::NamedLocalizer*> picked;
  for (const auto& l : localizers) {
    if (l.name == "RAPMiner" || l.name == "Squeeze" || l.name == "HotSpot") {
      picked.push_back(&l);
    }
  }

  // Squeeze-style groups (HotSpot's home turf).
  {
    gen::SqueezeGenConfig config;
    config.cases_per_group = 15;
    config.noise_sigma = gen::squeezeNoiseSigma(0);
    gen::SqueezeGenerator generator(config, bench::kDefaultSeed);
    util::TextTable table;
    table.setHeader({"method", "(1,1) F1", "(2,2) F1", "(3,1) F1",
                     "(2,2) time"});
    for (const auto* l : picked) {
      std::vector<std::string> row{l->name};
      double t22 = 0.0;
      for (const auto& [dims, raps] :
           std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {3, 1}}) {
        const auto group = generator.generateGroup(dims, raps);
        const auto runs =
            eval::runLocalizer(*l, group.cases, {.k_equals_truth = true});
        row.push_back(
            util::TextTable::num(eval::aggregateF1(runs, group.cases)));
        if (dims == 2 && raps == 2) {
          t22 = eval::aggregateTiming(runs).mean();
        }
      }
      row.push_back(util::TextTable::duration(t22));
      table.addRow(std::move(row));
    }
    std::printf("single-cuboid dataset (HotSpot's assumption holds):\n%s\n",
                table.render().c_str());
  }

  // RAPMD (multi-cuboid failures break HotSpot's assumption).
  {
    const auto cases = bench::makeRapmdCases(bench::kDefaultSeed, 40);
    util::TextTable table;
    table.setHeader({"method", "RC@3", "mean time"});
    for (const auto* l : picked) {
      const auto runs = eval::runLocalizer(*l, cases, {.k = 5});
      table.addRow({l->name,
                    util::TextTable::pct(eval::aggregateRecallAtK(runs, cases, 3)),
                    util::TextTable::duration(eval::aggregateTiming(runs).mean())});
    }
    std::printf("RAPMD (multi-cuboid failures):\n%s\n", table.render().c_str());
  }
  std::printf("expected: HotSpot competitive under its single-cuboid\n"
              "assumption, degraded on RAPMD — same failure mode as Squeeze.\n");
  return 0;
}
