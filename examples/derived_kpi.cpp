// Derived-KPI localization (paper §III-A): a failure that leaves traffic
// volume untouched but silently fails requests.  A fundamental-KPI view
// (request count) sees nothing; the derived success-ratio view exposes
// and localizes it.  RAPMiner runs unchanged on both — it only consumes
// leaf verdicts (§IV-B).
//
//   $ ./derived_kpi [--seed N] [--success-rate 0.4]
#include <cstdio>

#include "core/rapminer.h"
#include "dataset/cuboid.h"
#include "dataset/kpi.h"
#include "detect/detector.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace rap;

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addInt("seed", 17, "simulation seed");
  flags.addDouble("success-rate", 0.4,
                  "success ratio of requests under the failure");
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }
  util::Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));

  const dataset::Schema schema = dataset::Schema::cdn();
  dataset::MultiKpiTable table(schema, {"requests", "successes"});

  // The failure: one access type x one website starts failing requests.
  dataset::AttributeCombination broken(schema.attributeCount());
  broken.setSlot(1, static_cast<dataset::ElemId>(rng.uniformInt(0, 3)));
  broken.setSlot(3, static_cast<dataset::ElemId>(rng.uniformInt(0, 19)));

  const double healthy_rate = 0.985;
  const double failed_rate = flags.getDouble("success-rate");
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    dataset::MultiKpiRow row;
    row.ac = leaf;
    const double requests = rng.logNormal(3.0, 1.0);
    const double rate =
        broken.matchesLeaf(leaf) ? failed_rate : healthy_rate;
    row.v = {requests, requests * rate};
    row.f = {requests, requests * healthy_rate};
    table.addRow(std::move(row));
  }

  const detect::RelativeDeviationDetector detector(0.1);

  // Fundamental view: request volume is normal everywhere.
  auto requests_view = table.fundamentalLeafTable(0);
  std::printf("fundamental 'requests': detector flags %u of %zu leaves\n",
              detector.run(requests_view), requests_view.size());

  // Derived view: success ratio drops under the broken pattern.
  const auto ratio = dataset::ratioKpi("success_ratio", 1, 0);
  auto ratio_view = table.derivedLeafTable(ratio);
  std::printf("derived 'success_ratio': detector flags %u of %zu leaves\n\n",
              detector.run(ratio_view), ratio_view.size());

  const auto result = core::RapMiner().localize(ratio_view, 3);
  std::printf("injected failure: %s\n", broken.toString(schema).c_str());
  for (const auto& pattern : result.patterns) {
    std::printf("RAP %s  confidence=%.3f layer=%d score=%.3f\n",
                pattern.ac.toString(schema).c_str(), pattern.confidence,
                pattern.layer, pattern.score);
  }
  // Show the Fig. 4 point: the coarse derived value is g(aggregates).
  const auto [broken_ratio_v, broken_ratio_f] = table.deriveAt(broken, ratio);
  std::printf("\nsuccess ratio at %s: actual %.3f vs forecast %.3f\n",
              broken.toString(schema).c_str(), broken_ratio_v, broken_ratio_f);

  const bool hit =
      !result.patterns.empty() && result.patterns[0].ac == broken;
  return hit ? 0 : 1;
}
