// Quickstart: build a tiny labeled leaf table by hand and localize its
// root anomaly pattern — the paper's Fig. 3 scenario, where everything
// under (L1, *, *, Site1) breaks.
//
//   $ ./quickstart
#include <cstdio>

#include "rap.h"

using namespace rap;

int main() {
  // Schema: 3 locations x 2 access types x 2 OSes x 2 websites.
  const dataset::Schema schema = dataset::Schema::tiny();
  dataset::LeafTable table(schema);

  // Fill every leaf with nominal traffic (v == f == 100), then break the
  // leaves under (a1, *, *, d1): actual drops to 20% of forecast.
  auto broken = dataset::AttributeCombination::parse(schema, "(a1, *, *, d1)");
  if (!broken) {
    std::fprintf(stderr, "parse failed: %s\n",
                 broken.status().toString().c_str());
    return 1;
  }
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const double f = 100.0;
    const bool anomalous = broken->matchesLeaf(leaf);
    const double v = anomalous ? 20.0 : 100.0;
    table.addRow(leaf, v, f, anomalous);
  }

  // Localize.
  const core::RapMiner miner;  // default t_cp / t_conf
  const auto result = miner.localize(table, /*k=*/3);

  std::printf("leaves: %zu, anomalous: %u\n", table.size(),
              table.anomalousCount());
  std::printf("attributes deleted by stage 1: %d\n",
              result.stats.attributes_deleted);
  for (const auto& pattern : result.patterns) {
    std::printf("RAP %s  confidence=%.2f layer=%d score=%.3f\n",
                pattern.ac.toString(schema).c_str(), pattern.confidence,
                pattern.layer, pattern.score);
  }
  return result.patterns.size() == 1 && result.patterns[0].ac == *broken ? 0
                                                                         : 1;
}
