// Materialize a RAPMD or Squeeze-style dataset to disk in the Squeeze
// repository's layout — one  <case_id>.csv  per timestamp plus
// schema.csv and injection_info.csv — so the benches (and external
// tools) can run from files instead of in-memory generation.
//
//   $ ./generate_dataset --out /tmp/rapmd --dataset rapmd --cases 105
//   $ ./generate_dataset --out /tmp/sq --dataset squeeze --cases 10
#include <cstdio>
#include <filesystem>

#include "gen/rapmd.h"
#include "gen/squeeze_gen.h"
#include "io/dataset_io.h"
#include "util/flags.h"

using namespace rap;

namespace {

int writeCases(const dataset::Schema& schema,
               const std::vector<gen::Case>& cases,
               const std::filesystem::path& out) {
  std::filesystem::create_directories(out);
  if (auto s = io::saveSchema(schema, (out / "schema.csv").string());
      !s.isOk()) {
    std::fprintf(stderr, "%s\n", s.toString().c_str());
    return 1;
  }
  std::vector<io::GroundTruthEntry> truth;
  for (const auto& c : cases) {
    const auto path = out / (c.id + ".csv");
    if (auto s = io::saveLeafTable(c.table, path.string()); !s.isOk()) {
      std::fprintf(stderr, "%s\n", s.toString().c_str());
      return 1;
    }
    truth.push_back({c.id, c.truth});
  }
  if (auto s = io::saveGroundTruth(schema, truth,
                                   (out / "injection_info.csv").string());
      !s.isOk()) {
    std::fprintf(stderr, "%s\n", s.toString().c_str());
    return 1;
  }
  std::printf("wrote %zu cases + schema + ground truth to %s\n", cases.size(),
              out.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addString("out", "/tmp/rapminer_dataset", "output directory");
  flags.addString("dataset", "rapmd", "rapmd | squeeze");
  flags.addInt("cases", 20, "cases (rapmd) or cases per group (squeeze)");
  flags.addInt("seed", 20220627, "generator seed");
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  const std::filesystem::path out(flags.getString("out"));

  if (flags.getString("dataset") == "squeeze") {
    gen::SqueezeGenConfig config;
    config.cases_per_group =
        static_cast<std::int32_t>(flags.getInt("cases"));
    gen::SqueezeGenerator generator(config, seed);
    std::vector<gen::Case> cases;
    for (auto& group : generator.generateAllGroups()) {
      for (auto& c : group.cases) cases.push_back(std::move(c));
    }
    return writeCases(generator.schema(), cases, out);
  }

  gen::RapmdConfig config;
  config.num_cases = static_cast<std::int32_t>(flags.getInt("cases"));
  gen::RapmdGenerator generator(dataset::Schema::cdn(), config, seed);
  const auto cases = generator.generate();
  return writeCases(generator.schema(), cases, out);
}
