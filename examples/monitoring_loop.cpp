// The paper's Fig. 1 workflow end-to-end: monitor the overall KPI,
// raise an alarm when it degrades, and only then run anomaly
// localization on the leaf snapshot.
//
//   history stream --> AlarmManager (seasonal baseline + MAD rule)
//        |  alarm!
//        v
//   per-leaf snapshot --> Holt-Winters forecast --> detect --> RAPMiner
//
//   $ ./monitoring_loop [--seed N] [--metrics-out metrics.txt]
//                       [--trace-out trace.json] [--log-json]
//                       [--admin-port P] [--admin-linger S]
#include <cstdio>
#include <numeric>

#include "alarm/monitor.h"
#include "core/rapminer.h"
#include "core/report.h"
#include "forecast/pipeline.h"
#include "gen/timeseries.h"
#include "obs/obs.h"
#include "util/flags.h"

using namespace rap;

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addInt("seed", 31, "simulation seed");
  obs::addObsFlags(flags);
  obs::addAdminFlags(flags);
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }
  // Turn on whatever telemetry the flags asked for before the pipeline
  // runs; the snapshots are written on every exit path below.
  obs::enableFromFlags(flags);
  obs::ScopedDump obs_dump(flags);
  // Batch workflow, so the generic obs endpoints only (no engine to
  // probe); --admin-linger keeps them scrapeable after the run.
  const auto admin = obs::maybeStartAdminServer(flags);
  RAP_TRACE_SPAN("monitoring_loop");

  // Simulated CDN with a failure at a random minute.
  gen::TimeSeriesConfig config;
  config.history_days = 5;
  config.background.minutes_per_day = 144;  // 10-minute samples
  config.background.sparsity = 0.1;
  // The monitor below keys its baseline to the DAILY season; leave the
  // weekly dip out of this demo or weekend days read as outages (a real
  // deployment would use a weekly season_length instead).
  config.background.weekly_depth = 0.0;
  config.drop_lo = 0.5;
  config.drop_hi = 0.9;
  // Keep the failure coarse enough to dent the OVERALL KPI — a 3-dim
  // RAP moves the total by well under the monitor's noise floor (that
  // is precisely why localization inspects leaves, not the total).
  config.min_rap_dim = 1;
  config.max_rap_dim = 2;
  gen::TimeSeriesGenerator generator(
      dataset::Schema::synthetic({8, 3, 2, 6}), config,
      static_cast<std::uint64_t>(flags.getInt("seed")));
  const auto incident = generator.generateCase(0);

  // Overall KPI stream = sum across leaves, minute by minute.
  const std::size_t history_len = incident.series.front().history.size();
  alarm::MonitorConfig monitor_config;
  monitor_config.season_length = config.background.minutes_per_day;
  monitor_config.seasons_kept = config.history_days;
  monitor_config.k_mad = 8.0;
  alarm::AlarmManager manager(monitor_config, {.consecutive = 1, .cooldown = 30});

  std::optional<alarm::AlarmEvent> alarm_event;
  for (std::size_t t = 0; t < history_len; ++t) {
    double total = 0.0;
    for (const auto& s : incident.series) total += s.history[t];
    if (auto event = manager.observe(total); event && !alarm_event) {
      alarm_event = event;  // false positive if it fires in history
    }
  }
  if (alarm_event) {
    std::printf("false alarm during healthy history at sample %lld\n",
                static_cast<long long>(alarm_event->sample_index));
  }
  // The failure minute.
  double failed_total = 0.0;
  for (const auto& s : incident.series) failed_total += s.current;
  const auto event = manager.observe(failed_total);

  if (!event) {
    std::printf("overall KPI monitor did not raise an alarm — no "
                "localization triggered\n");
    obs::adminLingerFromFlags(flags);
    return 1;
  }
  std::printf("ALARM at sample %lld: overall KPI %.0f vs baseline %.0f "
              "(%.0f%% drop)\n\n",
              static_cast<long long>(event->sample_index), event->value,
              event->baseline,
              100.0 * (event->baseline - event->value) /
                  std::max(1.0, event->baseline));

  // Localization, triggered by the alarm.
  forecast::PipelineConfig pipeline;
  pipeline.detect_threshold = 0.25;
  const auto table = forecast::buildDetectedTable(
      generator.schema(), incident.series,
      forecast::HoltWintersForecaster(config.background.minutes_per_day),
      pipeline);
  const auto result = core::RapMiner().localize(table, 5);

  std::printf("injected ground truth:\n");
  for (const auto& rap : incident.truth) {
    std::printf("  %s\n", rap.toString(generator.schema()).c_str());
  }
  std::printf("\n%s", core::renderReport(generator.schema(), result).c_str());

  // Exit status: did the top-|truth| predictions cover the truth?
  std::size_t hits = 0;
  for (std::size_t i = 0; i < result.patterns.size() && i < incident.truth.size();
       ++i) {
    for (const auto& t : incident.truth) {
      if (result.patterns[i].ac == t) ++hits;
    }
  }
  obs::adminLingerFromFlags(flags);
  return hits == incident.truth.size() ? 0 : 1;
}
