// Localize root anomaly patterns from CSV files — the deployment-shaped
// entry point.  Reads a schema sidecar and a leaf KPI table (the Squeeze
// repository's  attr...,real,predict[,label]  layout), optionally runs
// leaf-level detection when the label column is absent, and prints the
// top-k RAPs.
//
//   $ ./csv_localize --schema schema.csv --data ts.csv [--k 5]
//                    [--detect-threshold 0.095] [--t-cp 0.001] [--t-conf 0.8]
//                    [--threads 1]
//
// Run without flags to see a self-contained demo: the binary writes a
// sample schema/data pair to /tmp, then localizes it.
#include <cstdio>

#include "rap.h"

#include "io/dataset_io.h"
#include "io/json.h"
#include "util/flags.h"

using namespace rap;

namespace {

/// Writes a small demo dataset and returns its paths.
std::pair<std::string, std::string> writeDemoFiles() {
  const dataset::Schema schema = dataset::Schema::tiny();
  const std::string schema_path = "/tmp/rapminer_demo_schema.csv";
  const std::string data_path = "/tmp/rapminer_demo_data.csv";
  RAP_CHECK(io::saveSchema(schema, schema_path).isOk());

  dataset::LeafTable table(schema);
  const auto broken =
      dataset::AttributeCombination::parse(schema, "(*, b2, *, *)").value();
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const double f = 50.0 + static_cast<double>(i % 7) * 10.0;
    const double v = broken.matchesLeaf(leaf) ? f * 0.3 : f;
    table.addRow(leaf, v, f, /*anomalous=*/false);  // no label: detect below
  }
  RAP_CHECK(io::saveLeafTable(table, data_path).isOk());
  return {schema_path, data_path};
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addString("schema", "", "schema sidecar CSV (name,elem1,elem2,...)");
  flags.addString("data", "", "leaf KPI CSV (attr...,real,predict[,label])");
  flags.addInt("k", 5, "patterns to report");
  flags.addDouble("detect-threshold", 0.095,
                  "relative-deviation detection threshold (used when the "
                  "table carries no labels)");
  flags.addDouble("t-cp", 0.0005, "RAPMiner classification-power threshold");
  flags.addDouble("t-conf", 0.8, "RAPMiner anomaly-confidence threshold");
  flags.addInt("threads", 1,
               "search fan-out concurrency (1 = serial, 0 = all cores)");
  flags.addBool("json", false, "emit the result as a JSON document");
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }

  std::string schema_path = flags.getString("schema");
  std::string data_path = flags.getString("data");
  if (schema_path.empty() || data_path.empty()) {
    std::printf("no --schema/--data given; running the built-in demo\n");
    std::tie(schema_path, data_path) = writeDemoFiles();
  }

  auto schema = io::loadSchema(schema_path);
  if (!schema) {
    std::fprintf(stderr, "schema: %s\n", schema.status().toString().c_str());
    return 1;
  }
  auto table = io::loadLeafTable(schema.value(), data_path);
  if (!table) {
    std::fprintf(stderr, "data: %s\n", table.status().toString().c_str());
    return 1;
  }

  // Detect when the file carried no verdicts.
  if (table->anomalousCount() == 0) {
    const detect::RelativeDeviationDetector detector(
        flags.getDouble("detect-threshold"));
    const auto flagged = detector.run(table.value());
    std::printf("detector flagged %u of %zu leaves\n", flagged, table->size());
  }

  // Builder: user-supplied thresholds get a Status instead of an abort.
  const auto miner = core::RapMiner::Builder()
                         .tCp(flags.getDouble("t-cp"))
                         .tConf(flags.getDouble("t-conf"))
                         .threads(static_cast<std::int32_t>(
                             flags.getInt("threads")))
                         .build();
  if (!miner.isOk()) {
    std::fprintf(stderr, "config: %s\n", miner.status().toString().c_str());
    return 2;
  }
  const auto result = miner->localize(
      table.value(), static_cast<std::int32_t>(flags.getInt("k")));

  if (flags.getBool("json")) {
    std::printf("%s\n", io::resultToJson(schema.value(), result).c_str());
    return 0;
  }
  if (result.patterns.empty()) {
    std::printf("no root anomaly pattern found\n");
    return 0;
  }
  for (const auto& pattern : result.patterns) {
    std::printf("RAP %s  confidence=%.3f layer=%d score=%.3f\n",
                pattern.ac.toString(schema.value()).c_str(),
                pattern.confidence, pattern.layer, pattern.score);
  }
  return 0;
}
