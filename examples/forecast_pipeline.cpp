// Production-shaped pipeline: per-leaf KPI history -> Holt-Winters
// forecast -> leaf anomaly detection -> RAPMiner localization.
//
// The paper assumes forecasts exist ("we can get the corresponding
// predicted values via some prediction methods", §III-C); this example
// shows the whole loop running against the synthetic diurnal CDN
// traffic model with a failure injected at the current timestamp.
//
//   $ ./forecast_pipeline [--seed N] [--days N] [--drop 0.6]
#include <cstdio>

#include "core/rapminer.h"
#include "dataset/cuboid.h"
#include "forecast/pipeline.h"
#include "gen/background.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace rap;

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addInt("seed", 404, "simulation seed");
  flags.addInt("days", 4, "days of history per leaf");
  flags.addDouble("drop", 0.6, "traffic share lost under the failure");
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));

  // A small CDN so the history fits an example: 8 locations x 3 access
  // types x 2 OSes x 6 sites, 10-minute samples (144/day).
  const dataset::Schema schema = dataset::Schema::synthetic({8, 3, 2, 6});
  gen::BackgroundConfig bg;
  bg.sparsity = 0.1;
  bg.minutes_per_day = 144;
  const gen::CdnBackgroundModel model(schema, bg, seed);
  util::Rng rng(seed + 1);

  // The failure: one location x one site loses `drop` of its traffic.
  dataset::AttributeCombination broken(schema.attributeCount());
  broken.setSlot(0, static_cast<dataset::ElemId>(rng.uniformInt(0, 7)));
  broken.setSlot(3, static_cast<dataset::ElemId>(rng.uniformInt(0, 5)));

  const std::int64_t now =
      flags.getInt("days") * bg.minutes_per_day;
  std::vector<forecast::LeafSeries> series;
  for (std::uint64_t leaf = 0; leaf < schema.leafCount(); ++leaf) {
    if (!model.isActive(leaf)) continue;
    forecast::LeafSeries s;
    s.leaf = dataset::leafFromIndex(schema, leaf);
    s.history.reserve(static_cast<std::size_t>(now));
    for (std::int64_t t = 0; t < now; ++t) {
      s.history.push_back(model.sampleVolume(leaf, t, rng));
    }
    s.current = model.sampleVolume(leaf, now, rng);
    if (broken.matchesLeaf(s.leaf)) {
      s.current *= 1.0 - flags.getDouble("drop");
    }
    series.push_back(std::move(s));
  }

  forecast::PipelineConfig pipeline_config;
  pipeline_config.detect_threshold = flags.getDouble("drop") / 2.0;
  const forecast::HoltWintersForecaster forecaster(bg.minutes_per_day);
  const auto table =
      forecast::buildDetectedTable(schema, series, forecaster, pipeline_config);

  std::printf("history: %lld samples/leaf, %zu active leaves\n",
              static_cast<long long>(now), series.size());
  std::printf("forecaster: %s; detector flagged %u leaves\n",
              forecaster.name().c_str(), table.anomalousCount());
  std::printf("injected failure: %s\n\n", broken.toString(schema).c_str());

  const auto result = core::RapMiner().localize(table, 3);
  for (const auto& pattern : result.patterns) {
    std::printf("RAP %s  confidence=%.3f layer=%d score=%.3f\n",
                pattern.ac.toString(schema).c_str(), pattern.confidence,
                pattern.layer, pattern.score);
  }
  const bool hit =
      !result.patterns.empty() && result.patterns[0].ac == broken;
  std::printf("\n%s\n", hit ? "localized the injected failure"
                            : "missed the injected failure");
  return hit ? 0 : 1;
}
