// Streaming replay daemon: the monitoring_loop workflow, but online.
//
// A simulated CDN incident (TimeSeriesGenerator) is flattened into a
// timestamped event stream and replayed into the StreamEngine from N
// producer threads, optionally paced against event time.  The engine
// assembles event-time windows, watches the aggregate KPI, and — when
// the alarm fires — localizes the sealed window on its worker pool.
// Alarms and localized RAPs print as they happen, from the engine's own
// callback threads.
//
//   $ ./stream_replay [--seed N] [--speedup X] [--producers N]
//                     [--shards N] [--lateness T]
//                     [--policy block|drop-oldest|drop-newest]
//                     [--metrics-out metrics.txt] [--trace-out trace.json]
//                     [--admin-port P] [--admin-linger S] [--lag-interval S]
//
// --speedup is in event-time units per wall-clock second (default six
// simulated hours per second, ~2 s wall); 0 replays at full speed with
// sealing deferred to the drain.  Exit status 0 iff the top-|truth|
// localized patterns of the alarmed window cover the injected truth.
#include <cstdio>
#include <limits>
#include <mutex>
#include <string>

#include "core/report.h"
#include "gen/timeseries.h"
#include "obs/obs.h"
#include "stream/admin.h"
#include "stream/engine.h"
#include "stream/source.h"
#include "util/flags.h"

using namespace rap;

namespace {

bool parsePolicy(const std::string& name, stream::BackpressurePolicy* out) {
  if (name == "block") *out = stream::BackpressurePolicy::kBlock;
  else if (name == "drop-oldest") *out = stream::BackpressurePolicy::kDropOldest;
  else if (name == "drop-newest") *out = stream::BackpressurePolicy::kDropNewest;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addInt("seed", 31, "simulation seed");
  flags.addDouble("speedup", 21600.0,
                  "event-time units per wall second (0 = full speed)");
  flags.addInt("producers", 4, "concurrent producer threads");
  flags.addInt("shards", 4, "engine hash partitions");
  flags.addInt("lateness", -1, "allowed lateness, event-time units (-1 = auto)");
  flags.addString("policy", "block",
                  "backpressure: block | drop-oldest | drop-newest");
  flags.addDouble("lag-interval", 0.25,
                  "pipeline lag sampler period, seconds (0 = off)");
  obs::addObsFlags(flags);
  obs::addAdminFlags(flags);
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }
  obs::enableFromFlags(flags);
  obs::ScopedDump obs_dump(flags);
  RAP_TRACE_SPAN("stream_replay");

  stream::BackpressurePolicy policy;
  if (!parsePolicy(flags.getString("policy"), &policy)) {
    std::fprintf(stderr, "unknown --policy '%s'\n%s",
                 flags.getString("policy").c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }

  // Simulated CDN with a failure at a random minute (same shape as the
  // batch monitoring_loop example, so the two are comparable).
  gen::TimeSeriesConfig ts_config;
  ts_config.history_days = 5;
  ts_config.background.minutes_per_day = 144;  // 10-minute samples
  ts_config.background.sparsity = 0.1;
  ts_config.background.weekly_depth = 0.0;  // monitor keys to the daily season
  ts_config.drop_lo = 0.5;
  ts_config.drop_hi = 0.9;
  // Coarse enough to dent the OVERALL KPI — that is what raises the alarm.
  ts_config.min_rap_dim = 1;
  ts_config.max_rap_dim = 2;
  gen::TimeSeriesGenerator generator(
      dataset::Schema::synthetic({8, 3, 2, 6}), ts_config,
      static_cast<std::uint64_t>(flags.getInt("seed")));
  const auto incident = generator.generateCase(0);

  stream::StreamConfig config;
  config.shards = static_cast<std::int32_t>(flags.getInt("shards"));
  config.backpressure = policy;
  config.window_width = 60;  // one generator minute per window
  // Producers replay strided slices of a ts-sorted stream; pacing keeps
  // them within a batch of each other in event time, so a few windows of
  // lateness absorbs the skew.  At full speed (--speedup 0) a fast
  // producer can race arbitrarily far ahead, so "auto" defers sealing to
  // the final drain rather than silently late-dropping most of the data.
  const std::int64_t lateness = flags.getInt("lateness");
  const double speedup = flags.getDouble("speedup");
  config.allowed_lateness =
      lateness >= 0 ? lateness
                    : (speedup > 0.0 ? 10 * config.window_width
                                     : std::numeric_limits<std::int64_t>::max() / 4);
  config.trigger = stream::TriggerPolicy::kOnAlarm;
  config.monitor.season_length = ts_config.background.minutes_per_day;
  config.monitor.seasons_kept = ts_config.history_days;
  config.monitor.k_mad = 8.0;
  config.alarm_debounce = {.consecutive = 1, .cooldown = 30};
  // The source attaches seasonal-naive forecasts; healthy leaves sit well
  // under this, leaves losing >= 50% of traffic clear it comfortably.
  config.detect_threshold = 0.25;
  config.lag_sample_interval_seconds = flags.getDouble("lag-interval");

  stream::StreamEngine engine(generator.schema(), config);

  std::mutex print_mutex;
  engine.setWindowCallback([&](const stream::StreamEngine::WindowInfo& info) {
    if (!info.alarmed) return;
    const std::lock_guard<std::mutex> lock(print_mutex);
    std::printf("ALARM: window %lld [%lld, %lld) — %u anomalous leaves, "
                "localization dispatched\n",
                static_cast<long long>(info.epoch),
                static_cast<long long>(info.start_ts),
                static_cast<long long>(info.end_ts), info.anomalous_rows);
  });
  engine.setLocalizationCallback(
      [&](const stream::StreamEngine::Localization& loc) {
        const std::lock_guard<std::mutex> lock(print_mutex);
        std::printf("\nlocalized window %lld (%zu rows):\n%s",
                    static_cast<long long>(loc.epoch), loc.rows,
                    core::renderReport(engine.schema(), loc.result).c_str());
      });
  engine.start();
  // Engine-aware /healthz + /statusz ride alongside the generic obs
  // endpoints; the handlers only touch thread-safe engine accessors, so
  // scraping during the replay is fine.
  const auto admin = obs::maybeStartAdminServer(
      flags, [&engine](obs::AdminServer& server) {
        stream::installEngineAdminEndpoints(server, engine);
      });

  auto events = stream::eventsFromTimeSeries(
      incident, config.window_width, ts_config.background.minutes_per_day,
      static_cast<std::uint64_t>(flags.getInt("seed")));
  std::printf("replaying %zu events (%d days of history + failure minute) "
              "across %lld producers...\n",
              events.size(), ts_config.history_days,
              static_cast<long long>(flags.getInt("producers")));

  stream::ReplaySource source(
      {.producers = static_cast<std::size_t>(flags.getInt("producers")),
       .speedup = speedup,
       .batch_size = 256});
  source.run(engine, std::move(events));
  // Linger with the engine still running so /healthz stays green and
  // /statusz shows the live pipeline while probes scrape.
  obs::adminLingerFromFlags(flags);
  engine.stop();

  const auto stats = engine.stats();
  std::printf("\ningested %llu  rejected %llu  dropped %llu  late-dropped %llu  "
              "windows %llu  alarms %llu  localizations %llu\n",
              static_cast<unsigned long long>(stats.ingested),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.dropped_oldest +
                                              stats.dropped_newest),
              static_cast<unsigned long long>(stats.late_dropped),
              static_cast<unsigned long long>(stats.windows_sealed),
              static_cast<unsigned long long>(stats.alarms),
              static_cast<unsigned long long>(stats.localizations));

  std::printf("\ninjected ground truth:\n");
  for (const auto& rap : incident.truth) {
    std::printf("  %s\n", rap.toString(generator.schema()).c_str());
  }

  // Exit status: did the top-|truth| predictions of any localized window
  // cover the truth?  (kOnAlarm normally yields exactly one.)
  const auto localizations = engine.takeLocalizations();
  if (localizations.empty()) {
    std::printf("\nno alarm raised — no localization ran\n");
    return 1;
  }
  for (const auto& loc : localizations) {
    std::size_t hits = 0;
    for (std::size_t i = 0;
         i < loc.result.patterns.size() && i < incident.truth.size(); ++i) {
      for (const auto& t : incident.truth) {
        if (loc.result.patterns[i].ac == t) ++hits;
      }
    }
    if (hits == incident.truth.size()) return 0;
  }
  return 1;
}
