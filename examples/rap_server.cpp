// rap_server — multi-tenant localization-as-a-service daemon: a
// DatasetCatalog of named tenants (each its own schema, RapMiner
// config, JobManager quota, result cache, and optionally a
// StreamEngine) served through the resource-oriented v1 API on the
// embedded admin HTTP server, in one process.
//
//   $ ./rap_server --schema schema.csv [--port 8080]
//   $ ./rap_server --tenants catalog.json
//   $ curl -X POST --data-binary @snapshot.csv \
//         'http://127.0.0.1:8080/api/v1/tenants/default/localize?k=5'
//   $ curl 'http://127.0.0.1:8080/api/v1/tenants'
//   $ curl -X PUT --data-binary @tenant.json \
//         'http://127.0.0.1:8080/api/v1/tenants/edge-eu'
//   $ curl 'http://127.0.0.1:8080/metrics'
//
// The flags configure the "default" tenant, which also answers the
// legacy un-prefixed endpoints (POST /api/v1/localize, GET
// /api/v1/jobs) — a single-tenant deployment upgrades unchanged.
// --tenants loads additional tenants from a sidecar file (see
// src/svc/tenant_config.h for the JSON dialect); a sidecar entry named
// "default" replaces the flags-built default tenant entirely.
//
// Without --schema the default tenant serves the built-in demo schema
// (dataset::Schema::tiny()), which is what the CI smoke test posts
// against.  The bound port is printed on stdout ("listening on ...") so
// scripts can scrape it when --port 0 picks an ephemeral port.
//
// The daemon runs until SIGINT/SIGTERM, then shuts down in order: the
// HTTP server first (in-flight requests finish), then every tenant —
// stream engines seal and localize what they buffered, job managers
// run down their queues against the shared pool.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "core/rapminer.h"
#include "dataset/schema.h"
#include "fault/fault.h"
#include "io/dataset_io.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/catalog.h"
#include "svc/job_journal.h"
#include "svc/router.h"
#include "svc/supervisor.h"
#include "svc/tenant_config.h"
#include "util/flags.h"

using namespace rap;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void onSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addString("schema", "",
                  "default tenant schema sidecar CSV; empty serves the "
                  "built-in demo schema");
  flags.addString("tenants", "",
                  "tenant catalog sidecar JSON ({\"tenants\":[...]})");
  flags.addString("bind", "127.0.0.1", "listen address");
  flags.addInt("port", 8080, "listen port (0 = ephemeral, printed on stdout)");
  flags.addInt("http-workers", 2, "HTTP worker threads");
  flags.addInt("job-workers", 2,
               "localization workers of the pool shared by all tenants");
  flags.addInt("queue-capacity", 64,
               "default tenant: queued jobs beyond which POSTs shed with 429");
  flags.addInt("max-active", 0,
               "default tenant: concurrent-execution quota on the shared "
               "pool (0 = bounded only by the pool)");
  flags.addInt("cache-capacity", 128,
               "default tenant: result cache entries (0 disables)");
  flags.addDouble("cache-ttl", 300.0,
                  "default tenant: result cache TTL in seconds (0 = never "
                  "expires)");
  flags.addInt("sync-row-limit", 4096,
               "auto mode: snapshots up to this many rows run synchronously");
  flags.addInt("k", 5, "default top-k patterns per request");
  flags.addDouble("t-cp", 0.0005, "default classification-power threshold");
  flags.addDouble("t-conf", 0.8, "default anomaly-confidence threshold");
  flags.addDouble("detect-threshold", 0.095,
                  "relative-deviation threshold for unlabeled snapshots");
  flags.addDouble("read-timeout", 10.0,
                  "per-connection socket read timeout in seconds");
  flags.addBool("trace", false, "record trace spans (serve via /tracez)");
  flags.addString("journal", "",
                  "durable job journal file (RAPJRNL-1); accepted async "
                  "jobs survive kill -9 and replay on startup.  Empty "
                  "disables journaling");
  flags.addDouble("max-deadline", 0.0,
                  "default tenant: cap on the per-request deadline "
                  "override in seconds (0 = uncapped)");
  flags.addDouble("overload-target", 0.0,
                  "default tenant: CoDel-style queue-delay target in "
                  "seconds; sheds with 429 `overloaded` when exceeded for "
                  "a full interval (0 disables)");
  flags.addDouble("overload-interval", 1.0,
                  "default tenant: how long the queue delay must stay "
                  "above target before shedding starts");
  flags.addInt("breaker-threshold", 0,
               "default tenant: consecutive localize failures that open "
               "the circuit breaker (0 disables)");
  flags.addDouble("breaker-open", 5.0,
                  "default tenant: seconds the breaker stays open before "
                  "half-open probes");
  flags.addBool("supervise", true,
                "restart crashed tenant stream engines (checkpoint "
                "restore + exponential backoff + quarantine)");
  flags.addDouble("supervise-interval", 0.5,
                  "supervisor poll interval in seconds");
  flags.addInt("supervise-max-restarts", 5,
               "consecutive failed restarts before a tenant is "
               "quarantined");
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }

  // A serving daemon always publishes its metrics; tracing is opt-in
  // (span buffers grow until scraped, wrong default for a long run).
  obs::setMetricsEnabled(true);
  obs::setTracingEnabled(flags.getBool("trace"));

  // Chaos harness: arm fault points from the environment on a build
  // with -DRAP_FAULT_INJECTION=ON (no-op otherwise).  Spec grammar in
  // fault/fault.h; e.g. RAP_FAULT_ARM="svc.tenant=error:0.5".
  if (const char* arm = std::getenv("RAP_FAULT_ARM");
      arm != nullptr && *arm != '\0') {
    auto armed = fault::armFromSpec(arm);
    if (!armed.isOk()) {
      std::fprintf(stderr, "RAP_FAULT_ARM: %s\n",
                   armed.status().toString().c_str());
      return 2;
    }
    if (fault::kCompiledIn) {
      std::printf("fault injection: %d point(s) armed\n", armed.value());
    } else {
      std::fprintf(stderr,
                   "RAP_FAULT_ARM set but fault injection is compiled "
                   "out (-DRAP_FAULT_INJECTION=ON)\n");
    }
  }

  // Sidecar tenants first — an entry named "default" overrides the
  // flags-built one.
  std::vector<svc::TenantSpec> sidecar;
  std::string sidecar_dir;
  const std::string tenants_path = flags.getString("tenants");
  if (!tenants_path.empty()) {
    auto loaded = svc::loadTenantSidecar(tenants_path);
    if (!loaded.isOk()) {
      std::fprintf(stderr, "tenants: %s\n",
                   loaded.status().toString().c_str());
      return 1;
    }
    sidecar = std::move(loaded.value());
    const std::size_t slash = tenants_path.find_last_of('/');
    if (slash != std::string::npos) sidecar_dir = tenants_path.substr(0, slash);
  }
  bool sidecar_has_default = false;
  for (const auto& spec : sidecar) {
    if (spec.name == "default") sidecar_has_default = true;
  }

  // The journal outlives the catalog (services hold a raw pointer and
  // write completion markers from their teardown drains).
  std::unique_ptr<svc::JobJournal> journal;
  const std::string journal_path = flags.getString("journal");
  if (!journal_path.empty()) {
    auto opened = svc::JobJournal::open({.path = journal_path});
    if (!opened.isOk()) {
      std::fprintf(stderr, "journal: %s\n",
                   opened.status().toString().c_str());
      return 1;
    }
    journal = std::move(opened.value());
  }

  svc::DatasetCatalog::Options catalog_options;
  catalog_options.pool_threads =
      static_cast<std::size_t>(flags.getInt("job-workers"));
  catalog_options.journal = journal.get();
  svc::DatasetCatalog catalog(catalog_options);

  if (!sidecar_has_default) {
    svc::TenantSpec spec;
    spec.name = "default";
    spec.schema = dataset::Schema::tiny();
    const std::string schema_path = flags.getString("schema");
    if (!schema_path.empty()) {
      auto loaded = io::loadSchema(schema_path);
      if (!loaded.isOk()) {
        std::fprintf(stderr, "schema: %s\n",
                     loaded.status().toString().c_str());
        return 1;
      }
      spec.schema = std::move(loaded.value());
    } else {
      std::printf("no --schema given; serving the built-in demo schema\n");
    }

    const auto base = core::RapMiner::Builder()
                          .tCp(flags.getDouble("t-cp"))
                          .tConf(flags.getDouble("t-conf"))
                          .build();
    if (!base.isOk()) {
      std::fprintf(stderr, "config: %s\n", base.status().toString().c_str());
      return 2;
    }
    spec.miner = base->config();
    spec.service.default_k = static_cast<std::int32_t>(flags.getInt("k"));
    spec.service.default_detect_threshold =
        flags.getDouble("detect-threshold");
    spec.service.sync_row_limit =
        static_cast<std::size_t>(flags.getInt("sync-row-limit"));
    spec.service.jobs.queue_capacity =
        static_cast<std::size_t>(flags.getInt("queue-capacity"));
    spec.service.jobs.max_active =
        static_cast<std::size_t>(flags.getInt("max-active"));
    spec.service.cache.capacity =
        static_cast<std::size_t>(flags.getInt("cache-capacity"));
    spec.service.cache.ttl_seconds = flags.getDouble("cache-ttl");
    spec.service.max_deadline_seconds = flags.getDouble("max-deadline");
    spec.service.jobs.overload.target_delay_seconds =
        flags.getDouble("overload-target");
    spec.service.jobs.overload.interval_seconds =
        flags.getDouble("overload-interval");
    spec.service.breaker.failure_threshold =
        static_cast<std::size_t>(flags.getInt("breaker-threshold"));
    spec.service.breaker.open_seconds = flags.getDouble("breaker-open");
    if (auto status = catalog.put(std::move(spec)); !status.isOk()) {
      std::fprintf(stderr, "default tenant: %s\n",
                   status.toString().c_str());
      return 2;
    }
  }
  for (auto& spec : sidecar) {
    const std::string name = spec.name;
    if (auto status = catalog.put(std::move(spec)); !status.isOk()) {
      std::fprintf(stderr, "tenant '%s': %s\n", name.c_str(),
                   status.toString().c_str());
      return 2;
    }
  }

  // Replay journaled work accepted before the last crash, before the
  // listener opens — replayed jobs queue ahead of new traffic.
  if (journal != nullptr && journal->liveCount() > 0) {
    const svc::ReplaySummary replay = svc::replayJournal(*journal, catalog);
    std::printf("journal: replayed %zu job(s), dropped %zu\n",
                replay.replayed, replay.dropped);
  }

  svc::EngineSupervisor::Options supervisor_options;
  supervisor_options.poll_interval_seconds =
      flags.getDouble("supervise-interval");
  supervisor_options.max_restarts =
      static_cast<std::size_t>(flags.getInt("supervise-max-restarts"));
  svc::EngineSupervisor supervisor(catalog, supervisor_options);
  if (flags.getBool("supervise")) supervisor.start();

  svc::TenantRouter::Options router_options;
  router_options.schema_base_dir = sidecar_dir;
  svc::TenantRouter router(catalog, router_options);

  obs::AdminServer::Options server_options;
  server_options.bind_address = flags.getString("bind");
  server_options.port = static_cast<std::uint16_t>(flags.getInt("port"));
  server_options.workers =
      static_cast<std::size_t>(flags.getInt("http-workers"));
  server_options.read_timeout_seconds = flags.getDouble("read-timeout");
  obs::AdminServer server(server_options);
  obs::registerObsEndpoints(server);
  router.installEndpoints(server);

  if (auto status = server.start(); !status.isOk()) {
    std::fprintf(stderr, "start: %s\n", status.toString().c_str());
    return 1;
  }
  std::printf("listening on http://%s:%u/\n",
              server_options.bind_address.c_str(), server.port());
  std::printf("serving %zu tenant(s):", catalog.size());
  for (const auto& name : catalog.names()) std::printf(" %s", name.c_str());
  std::printf("\nPOST /api/v1/tenants/<t>/localize | GET /api/v1/tenants | "
              "GET /metrics\n");
  std::fflush(stdout);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (g_shutdown == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  // Order matters: no new requests, stop supervising (a draining engine
  // must not be "restarted"), then drain every tenant (engines seal +
  // localize buffered windows, job managers run down) via the catalog's
  // destructor; the journal closes last, after teardown drains wrote
  // their completion markers.
  server.stop();
  supervisor.stop();
  return 0;
}
