// rap_server — localization-as-a-service daemon: the full src/svc stack
// (JobManager + ResultCache + LocalizeService) mounted on the embedded
// admin HTTP server, plus the obs endpoints, in one process.
//
//   $ ./rap_server --schema schema.csv [--port 8080]
//   $ curl -X POST --data-binary @snapshot.csv \
//         'http://127.0.0.1:8080/api/v1/localize?k=5'
//   $ curl 'http://127.0.0.1:8080/api/v1/jobs'
//   $ curl 'http://127.0.0.1:8080/metrics'
//
// Without --schema the daemon serves the built-in demo schema
// (dataset::Schema::tiny()), which is what the CI smoke test posts
// against.  The bound port is printed on stdout ("listening on ...") so
// scripts can scrape it when --port 0 picks an ephemeral port.
//
// The daemon runs until SIGINT/SIGTERM, then stops the server
// gracefully (in-flight requests finish, queued jobs drain on
// JobManager shutdown).
#include <csignal>
#include <cstdio>
#include <thread>

#include "core/rapminer.h"
#include "dataset/schema.h"
#include "io/dataset_io.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/service.h"
#include "util/flags.h"

using namespace rap;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void onSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addString("schema", "",
                  "schema sidecar CSV; empty serves the built-in demo schema");
  flags.addString("bind", "127.0.0.1", "listen address");
  flags.addInt("port", 8080, "listen port (0 = ephemeral, printed on stdout)");
  flags.addInt("http-workers", 2, "HTTP worker threads");
  flags.addInt("job-workers", 2, "localization worker threads");
  flags.addInt("queue-capacity", 64,
               "queued jobs beyond which POSTs are shed with 429");
  flags.addInt("cache-capacity", 128, "result cache entries (0 disables)");
  flags.addDouble("cache-ttl", 300.0,
                  "result cache TTL in seconds (0 = never expires)");
  flags.addInt("sync-row-limit", 4096,
               "auto mode: snapshots up to this many rows run synchronously");
  flags.addInt("k", 5, "default top-k patterns per request");
  flags.addDouble("t-cp", 0.0005, "default classification-power threshold");
  flags.addDouble("t-conf", 0.8, "default anomaly-confidence threshold");
  flags.addDouble("detect-threshold", 0.095,
                  "relative-deviation threshold for unlabeled snapshots");
  flags.addDouble("read-timeout", 10.0,
                  "per-connection socket read timeout in seconds");
  flags.addBool("trace", false, "record trace spans (serve via /tracez)");
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }

  // A serving daemon always publishes its metrics; tracing is opt-in
  // (span buffers grow until scraped, wrong default for a long run).
  obs::setMetricsEnabled(true);
  obs::setTracingEnabled(flags.getBool("trace"));

  dataset::Schema schema = dataset::Schema::tiny();
  const std::string schema_path = flags.getString("schema");
  if (!schema_path.empty()) {
    auto loaded = io::loadSchema(schema_path);
    if (!loaded.isOk()) {
      std::fprintf(stderr, "schema: %s\n",
                   loaded.status().toString().c_str());
      return 1;
    }
    schema = std::move(loaded.value());
  } else {
    std::printf("no --schema given; serving the built-in demo schema\n");
  }

  const auto base = core::RapMiner::Builder()
                        .tCp(flags.getDouble("t-cp"))
                        .tConf(flags.getDouble("t-conf"))
                        .build();
  if (!base.isOk()) {
    std::fprintf(stderr, "config: %s\n", base.status().toString().c_str());
    return 2;
  }

  svc::LocalizeService::Options options;
  options.default_k = static_cast<std::int32_t>(flags.getInt("k"));
  options.default_detect_threshold = flags.getDouble("detect-threshold");
  options.sync_row_limit =
      static_cast<std::size_t>(flags.getInt("sync-row-limit"));
  options.jobs.workers = static_cast<std::size_t>(flags.getInt("job-workers"));
  options.jobs.queue_capacity =
      static_cast<std::size_t>(flags.getInt("queue-capacity"));
  options.cache.capacity =
      static_cast<std::size_t>(flags.getInt("cache-capacity"));
  options.cache.ttl_seconds = flags.getDouble("cache-ttl");
  svc::LocalizeService service(schema, base->config(), options);

  obs::AdminServer::Options server_options;
  server_options.bind_address = flags.getString("bind");
  server_options.port = static_cast<std::uint16_t>(flags.getInt("port"));
  server_options.workers =
      static_cast<std::size_t>(flags.getInt("http-workers"));
  server_options.read_timeout_seconds = flags.getDouble("read-timeout");
  obs::AdminServer server(server_options);
  obs::registerObsEndpoints(server);
  service.installEndpoints(server);

  if (auto status = server.start(); !status.isOk()) {
    std::fprintf(stderr, "start: %s\n", status.toString().c_str());
    return 1;
  }
  std::printf("listening on http://%s:%u/\n",
              server_options.bind_address.c_str(), server.port());
  std::printf("POST /api/v1/localize | GET /api/v1/jobs | GET /metrics\n");
  std::fflush(stdout);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (g_shutdown == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  server.stop();
  return 0;
}
