// Compare every localization method on one generated incident — a small
// interactive version of the paper's Fig. 8/9 benches.
//
//   $ ./compare_methods [--dataset rapmd|squeeze] [--seed N] [--k N]
#include <cstdio>

#include "eval/metrics.h"
#include "eval/runner.h"
#include "gen/rapmd.h"
#include "gen/squeeze_gen.h"
#include "util/flags.h"
#include "util/table.h"

using namespace rap;

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addString("dataset", "rapmd", "rapmd | squeeze");
  flags.addInt("seed", 7, "generator seed");
  flags.addInt("k", 5, "patterns each method reports");
  flags.addBool("hotspot", true, "include the HotSpot extension baseline");
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto k = static_cast<std::int32_t>(flags.getInt("k"));

  gen::Case incident = [&] {
    if (flags.getString("dataset") == "squeeze") {
      gen::SqueezeGenConfig config;
      config.cases_per_group = 1;
      gen::SqueezeGenerator generator(config, seed);
      return generator.generateGroup(2, 2).cases.front();
    }
    gen::RapmdConfig config;
    config.num_cases = 1;
    return gen::RapmdGenerator(dataset::Schema::cdn(), config, seed)
        .generateCase(0);
  }();
  const auto& schema = incident.table.schema();

  std::printf("dataset=%s seed=%llu leaves=%zu anomalous=%u\n",
              flags.getString("dataset").c_str(),
              static_cast<unsigned long long>(seed), incident.table.size(),
              incident.table.anomalousCount());
  std::printf("ground truth:\n");
  for (const auto& rap : incident.truth) {
    std::printf("  %s\n", rap.toString(schema).c_str());
  }
  std::printf("\n");

  util::TextTable table;
  table.setHeader({"method", "time", "hits", "top predictions"});
  for (const auto& localizer :
       eval::standardLocalizers({}, flags.getBool("hotspot"))) {
    util::WallTimer timer;
    const auto patterns = localizer.fn(incident.table, k);
    const double seconds = timer.elapsedSeconds();

    const auto counts =
        eval::matchPatterns(eval::patternsToAcs(patterns), incident.truth);
    std::string preview;
    for (std::size_t i = 0; i < patterns.size() && i < 3; ++i) {
      if (i > 0) preview += "  ";
      preview += patterns[i].ac.toString(schema);
    }
    table.addRow({localizer.name, util::TextTable::duration(seconds),
                  std::to_string(counts.tp) + "/" +
                      std::to_string(incident.truth.size()),
                  preview});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
