// CDN incident walkthrough — the paper's §II scenario end-to-end on the
// Table I schema: synthesize a timestamp of CDN traffic, inject a
// failure, run leaf-level anomaly detection, then localize with RAPMiner
// and print the operator-facing summary.
//
//   $ ./cdn_incident [--seed N] [--raps N] [--k N]
#include <cstdio>

#include "core/rapminer.h"
#include "core/report.h"
#include "detect/detector.h"
#include "gen/rapmd.h"
#include "util/flags.h"

using namespace rap;

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.addInt("seed", 2022, "generator seed");
  flags.addInt("raps", 2, "number of injected root anomaly patterns");
  flags.addInt("k", 5, "patterns to report");
  if (auto status = flags.parse(argc, argv); !status.isOk()) {
    std::fprintf(stderr, "%s\n%s", status.toString().c_str(),
                 flags.helpText(argv[0]).c_str());
    return 2;
  }

  // One failure timepoint on the paper's CDN schema.
  gen::RapmdConfig config;
  config.num_cases = 1;
  config.min_raps = static_cast<std::int32_t>(flags.getInt("raps"));
  config.max_raps = config.min_raps;
  gen::RapmdGenerator generator(
      dataset::Schema::cdn(), config,
      static_cast<std::uint64_t>(flags.getInt("seed")));
  auto incident = generator.generateCase(0);
  const auto& schema = incident.table.schema();

  // Pretend we only collected (v, f): wipe the injected verdicts and run
  // the detector, as a production pipeline would.
  for (dataset::RowId id = 0; id < incident.table.size(); ++id) {
    incident.table.setAnomalous(id, false);
  }
  const detect::RelativeDeviationDetector detector(/*threshold=*/0.095);
  const auto flagged = detector.run(incident.table);
  std::printf("collected %zu leaf KPIs, detector flagged %u anomalous\n\n",
              incident.table.size(), flagged);

  // Localize.
  const core::RapMiner miner;
  const auto result =
      miner.localize(incident.table, static_cast<std::int32_t>(flags.getInt("k")));

  std::printf("injected ground truth:\n");
  for (const auto& rap : incident.truth) {
    std::printf("  %s\n", rap.toString(schema).c_str());
  }
  std::printf("\n%s", core::renderReport(schema, result).c_str());
  return 0;
}
