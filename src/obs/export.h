// Snapshot export + command-line wiring for the obs subsystem.
//
// Examples and bench harnesses call three functions:
//
//   obs::addObsFlags(flags);          // registers --metrics-out etc.
//   obs::enableFromFlags(flags);      // after parse: turn on what's asked
//   ...run the workload...
//   obs::dumpFromFlags(flags);        // write the requested snapshots
//
// or hold an obs::ScopedDump so the dump happens on every exit path.
// A binary that passes no obs flags enables nothing, and the pipeline
// instrumentation stays at its disabled (near-zero) cost.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/status.h"

namespace rap::obs {

/// Writes `content` to `path` ("-" means stdout).
util::Status writeTextFile(const std::string& path, const std::string& content);

/// Metrics snapshot: Prometheus text format, or the JSON document when
/// `path` ends in ".json".
util::Status writeMetricsSnapshot(const MetricsRegistry& registry,
                                  const std::string& path);

/// Chrome trace-event JSON (load in chrome://tracing or Perfetto).
util::Status writeTraceFile(const TraceRecorder& recorder,
                            const std::string& path);

/// Registers --metrics-out, --trace-out, and --log-json.
void addObsFlags(util::FlagParser& flags);

/// Registers --admin-port (and --admin-linger for run-to-completion
/// binaries).  Separate from addObsFlags: only binaries that actually
/// start the server should accept the flag.
void addAdminFlags(util::FlagParser& flags);

/// Starts an admin server on --admin-port when the flag is >= 0 (0
/// binds an ephemeral port — the bound port is logged and queryable via
/// ->port()).  Serving live scrapes implies live metrics and tracing,
/// so both are enabled and rap_build_info is registered.  `configure`,
/// when given, runs after the obs endpoints are installed and before
/// start() — the hook for engine-specific handlers
/// (stream::installEngineAdminEndpoints).  Returns nullptr when the
/// flag is negative (disabled) or binding fails (logged, never fatal:
/// losing the admin plane must not kill the workload).
std::unique_ptr<AdminServer> maybeStartAdminServer(
    const util::FlagParser& flags,
    const std::function<void(AdminServer&)>& configure = nullptr);

/// Sleeps for --admin-linger seconds (no-op at the default 0) so a
/// run-to-completion binary keeps its admin plane scrapeable after the
/// workload finishes — the CI smoke probe and ad-hoc curl both use it.
void adminLingerFromFlags(const util::FlagParser& flags);

/// Enables metrics / tracing / JSON logging according to parsed flags.
/// Call before the instrumented workload runs.
void enableFromFlags(const util::FlagParser& flags);

/// Writes whichever outputs the flags requested (no-op otherwise);
/// logs each written path.  Returns the first error encountered.
util::Status dumpFromFlags(const util::FlagParser& flags);

/// RAII variant of dumpFromFlags for binaries with several exit paths.
class ScopedDump {
 public:
  explicit ScopedDump(const util::FlagParser& flags) : flags_(flags) {}
  ScopedDump(const ScopedDump&) = delete;
  ScopedDump& operator=(const ScopedDump&) = delete;
  ~ScopedDump();

 private:
  const util::FlagParser& flags_;
};

}  // namespace rap::obs
