// Snapshot export + command-line wiring for the obs subsystem.
//
// Examples and bench harnesses call three functions:
//
//   obs::addObsFlags(flags);          // registers --metrics-out etc.
//   obs::enableFromFlags(flags);      // after parse: turn on what's asked
//   ...run the workload...
//   obs::dumpFromFlags(flags);        // write the requested snapshots
//
// or hold an obs::ScopedDump so the dump happens on every exit path.
// A binary that passes no obs flags enables nothing, and the pipeline
// instrumentation stays at its disabled (near-zero) cost.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/status.h"

namespace rap::obs {

/// Writes `content` to `path` ("-" means stdout).
util::Status writeTextFile(const std::string& path, const std::string& content);

/// Metrics snapshot: Prometheus text format, or the JSON document when
/// `path` ends in ".json".
util::Status writeMetricsSnapshot(const MetricsRegistry& registry,
                                  const std::string& path);

/// Chrome trace-event JSON (load in chrome://tracing or Perfetto).
util::Status writeTraceFile(const TraceRecorder& recorder,
                            const std::string& path);

/// Registers --metrics-out, --trace-out, and --log-json.
void addObsFlags(util::FlagParser& flags);

/// Enables metrics / tracing / JSON logging according to parsed flags.
/// Call before the instrumented workload runs.
void enableFromFlags(const util::FlagParser& flags);

/// Writes whichever outputs the flags requested (no-op otherwise);
/// logs each written path.  Returns the first error encountered.
util::Status dumpFromFlags(const util::FlagParser& flags);

/// RAII variant of dumpFromFlags for binaries with several exit paths.
class ScopedDump {
 public:
  explicit ScopedDump(const util::FlagParser& flags) : flags_(flags) {}
  ScopedDump(const ScopedDump&) = delete;
  ScopedDump& operator=(const ScopedDump&) = delete;
  ~ScopedDump();

 private:
  const util::FlagParser& flags_;
};

}  // namespace rap::obs
