#include "obs/query_params.h"

#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace rap::obs {

namespace {

const ParamSpec* findSpec(const std::vector<ParamSpec>& specs,
                          std::string_view key) {
  for (const auto& spec : specs) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

util::Status rangeError(const ParamSpec& spec, const std::string& raw) {
  return util::Status::invalidArgument(
      util::strFormat("%s out of range: %s not in [%g, %g]", spec.key.c_str(),
                      raw.c_str(), spec.min_value, spec.max_value));
}

}  // namespace

util::Result<std::int64_t> parseQueryInt(std::string_view raw) {
  // Shape check first: strtoll is lenient (skips leading whitespace,
  // accepts '+'), so the strictness lives here, in one place.
  const std::size_t digits_from = raw.size() > 0 && raw[0] == '-' ? 1 : 0;
  if (raw.size() == digits_from ||
      raw.find_first_not_of("0123456789", digits_from) !=
          std::string_view::npos) {
    return util::Status::invalidArgument(
        util::strFormat("'%.*s' is not an integer",
                        static_cast<int>(raw.size()), raw.data()));
  }
  errno = 0;
  const std::string text(raw);
  char* tail = nullptr;
  const long long v = std::strtoll(text.c_str(), &tail, 10);
  if (errno != 0 || tail != text.c_str() + text.size()) {
    return util::Status::invalidArgument(
        util::strFormat("'%s' is out of integer range", text.c_str()));
  }
  return static_cast<std::int64_t>(v);
}

util::Result<ParsedParams> parseParams(std::string_view query,
                                       const std::vector<ParamSpec>& specs) {
  ParsedParams out;
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view part = query.substr(pos, end - pos);
    pos = end + 1;
    if (part.empty()) {
      if (end == query.size()) break;
      continue;
    }
    const std::size_t eq = part.find('=');
    const std::string key(eq == std::string_view::npos ? part
                                                       : part.substr(0, eq));
    const std::string raw(eq == std::string_view::npos
                              ? std::string_view()
                              : part.substr(eq + 1));
    const ParamSpec* spec = findSpec(specs, key);
    if (spec == nullptr) {
      return util::Status::invalidArgument("unknown query parameter '" + key +
                                           "'");
    }
    switch (spec->kind) {
      case ParamSpec::Kind::kInt: {
        const auto parsed = parseQueryInt(raw);
        if (!parsed.isOk()) {
          return util::Status::invalidArgument(util::strFormat(
              "bad %s parameter: '%s' is not an integer", key.c_str(),
              raw.c_str()));
        }
        const std::int64_t value = parsed.value();
        if (static_cast<double>(value) < spec->min_value ||
            static_cast<double>(value) > spec->max_value) {
          return rangeError(*spec, raw);
        }
        out.ints_[key] = value;
        break;
      }
      case ParamSpec::Kind::kDouble: {
        const auto parsed = util::parseDouble(raw);
        if (!parsed.isOk() || !std::isfinite(parsed.value())) {
          return util::Status::invalidArgument(
              util::strFormat("bad %s parameter: '%s' is not a number",
                              key.c_str(), raw.c_str()));
        }
        if (parsed.value() < spec->min_value ||
            parsed.value() > spec->max_value) {
          return rangeError(*spec, raw);
        }
        out.doubles_[key] = parsed.value();
        break;
      }
      case ParamSpec::Kind::kString:
        out.strings_[key] = raw;
        break;
      case ParamSpec::Kind::kEnum: {
        bool listed = false;
        for (const auto& choice : spec->choices) {
          if (choice == raw) {
            listed = true;
            break;
          }
        }
        if (!listed) {
          return util::Status::invalidArgument(util::strFormat(
              "bad %s parameter: '%s' is not one of %s", key.c_str(),
              raw.c_str(), util::join(spec->choices, "|").c_str()));
        }
        out.strings_[key] = raw;
        break;
      }
    }
    if (end == query.size()) break;
  }
  return out;
}

}  // namespace rap::obs
