// Scoped trace spans for the localization pipeline.
//
//   RAP_TRACE_SPAN("localize");
//   RAP_TRACE_SPAN("search/layer", {{"layer", l}});
//
// Each span records one Chrome trace-event "complete" event (ph:"X")
// with the wall-clock interval of its enclosing scope; nesting falls
// out of interval containment per thread, so chrome://tracing (or
// Perfetto) renders the usual flame graph.  Events land in per-thread
// buffers of the process-wide TraceRecorder — one uncontended mutex
// push per span close, no cross-thread contention on the hot path.
//
// Tracing is off by default.  The RAP_TRACE_SPAN macro evaluates its
// argument expressions ONLY when tracing is enabled (the ternary in the
// macro), so a disabled span costs one relaxed atomic load, a branch,
// and an inert stack object.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace rap::obs {

/// One key/value annotation on a span, rendered into the Chrome trace
/// "args" object.  Numeric values stay unquoted in the JSON.
struct TraceArg {
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  TraceArg(std::string k, T v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  TraceArg(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), quoted(false) {}
  TraceArg(std::string k, double v);
  TraceArg(std::string k, const char* v)
      : key(std::move(k)), value(v), quoted(true) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)), quoted(true) {}

  std::string key;
  std::string value;
  bool quoted = true;
};

/// One finished span or flow point.  `name` points at a string literal
/// (the emitting macros/functions only ever pass literals), timestamps
/// are microseconds since the recorder's construction.
struct TraceEvent {
  const char* name = "";
  /// Chrome trace phase: 'X' complete span (the default), or a flow
  /// event — 's' start, 't' step, 'f' end — linking spans across
  /// threads (see traceFlow).
  char phase = 'X';
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;       ///< 'X' only
  std::uint64_t flow_id = 0;      ///< flow events only; 0 = none
  std::uint32_t tid = 0;
  std::string args_json;  ///< pre-rendered "{...}" or empty
};

/// Collects spans from every thread; exports Chrome trace-event JSON.
/// Per-thread buffers outlive their threads, so events survive worker
/// pool teardown until export.
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder();

  /// Microseconds since this recorder was constructed.
  std::uint64_t nowMicros() const noexcept;

  /// Appends one finished span to the calling thread's buffer.
  void record(TraceEvent event);

  /// Copy of every recorded event (unordered across threads).
  std::vector<TraceEvent> snapshotEvents() const;

  /// {"traceEvents":[...]} — loadable in chrome://tracing / Perfetto.
  std::string renderChromeTrace() const;

  /// Drops all recorded events (buffers stay registered).
  void clear();

  std::size_t eventCount() const;

 private:
  struct ThreadBuffer;
  ThreadBuffer& localBuffer();

  mutable std::mutex mutex_;  // guards buffers_ (the list, not entries)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_;
};

/// The recorder RAP_TRACE_SPAN publishes to.
TraceRecorder& defaultTraceRecorder();

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

inline bool tracingEnabled() noexcept {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}
void setTracingEnabled(bool enabled) noexcept;

/// Records one flow point at "now" on the calling thread.  Flow events
/// with the same (name, id) chain into one arrow sequence in Perfetto /
/// chrome://tracing, each point binding to the 'X' span enclosing its
/// timestamp on its thread — that is how one window's journey renders
/// as a connected lane across the producer, sealer, and pool threads.
/// `phase` is 's' (start), 't' (step), or 'f' (end).  No-op (one
/// relaxed load + branch) while tracing is disabled.
void traceFlow(char phase, const char* name, std::uint64_t flow_id,
               std::initializer_list<TraceArg> args = {});

/// RAII span; use via RAP_TRACE_SPAN.  A default-constructed span is
/// inert (that is the disabled-tracing arm of the macro).
class TraceSpan {
 public:
  TraceSpan() noexcept = default;
  explicit TraceSpan(const char* name)
      : TraceSpan(name, std::initializer_list<TraceArg>{}) {}
  TraceSpan(const char* name, std::initializer_list<TraceArg> args);
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&&) = delete;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_ = nullptr;
  bool active_ = false;
  std::uint64_t start_us_ = 0;
  std::string args_json_;
};

}  // namespace rap::obs

#define RAP_OBS_CONCAT_INNER(a, b) a##b
#define RAP_OBS_CONCAT(a, b) RAP_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.  Arguments
/// after the name are TraceArg initializers: {{"layer", l}}.  Argument
/// expressions are not evaluated when tracing is disabled.
#define RAP_TRACE_SPAN(...)                                          \
  ::rap::obs::TraceSpan RAP_OBS_CONCAT(rap_trace_span_, __LINE__) =  \
      ::rap::obs::tracingEnabled() ? ::rap::obs::TraceSpan(__VA_ARGS__) \
                                   : ::rap::obs::TraceSpan()
