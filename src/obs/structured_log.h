// Structured (JSON lines) output for rap::util logging.
//
// Installing a JsonLineLogSink turns every RAP_LOG / RAP_LOG_KV
// statement into one newline-delimited JSON object:
//
//   {"ts":"2022-06-27T10:31:05","level":"info","src":"monitor.cpp:98",
//    "msg":"alarm raised","alarms":3,"state":"raised"}
//
// Field keys come straight from RAP_LOG_KV; numeric and boolean values
// are emitted unquoted.  Each record is written with a single fwrite,
// so lines from concurrent threads never interleave.
#pragma once

#include <cstdio>
#include <mutex>

#include "util/logging.h"

namespace rap::obs {

class JsonLineLogSink final : public util::LogSink {
 public:
  explicit JsonLineLogSink(std::FILE* out = stderr) : out_(out) {}

  void write(const util::LogRecord& record) override;

  /// The JSON object for one record, without the trailing newline
  /// (exposed for tests and for callers buffering their own lines).
  static std::string formatRecord(const util::LogRecord& record);

 private:
  std::FILE* out_;
  std::mutex mutex_;
};

/// Convenience: installs a process-lifetime JsonLineLogSink writing to
/// `out`.  Calling again rebinds the stream; enableJsonLogging(nullptr)
/// restores the default text formatter.
void enableJsonLogging(std::FILE* out = stderr);

}  // namespace rap::obs
