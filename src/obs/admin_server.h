// Embedded admin HTTP server — the live scrape surface of the obs
// subsystem.
//
// A dependency-free HTTP/1.1 server on POSIX sockets: one blocking
// accept loop plus a small worker set serving GET requests against a
// path -> handler table.  Built for operational scraping of a running
// daemon (Prometheus, curl, health probes), not for general traffic:
// request bodies are ignored, responses always close the connection,
// and the whole exchange is one read / one write per connection.
//
//   obs::AdminServer server({.port = 0});         // 0 = ephemeral
//   obs::registerObsEndpoints(server);            // /metrics, /tracez, ...
//   RAP_CHECK(server.start().isOk());
//   ... server.port() is the bound port ...
//   server.stop();                                // graceful, idempotent
//
// Threading: handlers run on worker threads, concurrently with each
// other and with the rest of the process — they must only touch
// thread-safe state (the metrics registry, the trace recorder, and the
// StreamEngine accessors all qualify).  start()/stop() are control-
// plane calls from one thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace rap::obs {

/// One parsed request line.  Headers and bodies are intentionally not
/// surfaced — admin endpoints key off method + path (+ query) only.
struct HttpRequest {
  std::string method;  ///< "GET", uppercased as received
  std::string path;    ///< "/metrics" — target with the query stripped
  std::string query;   ///< "limit=32" — text after '?', possibly empty

  /// Integer query parameter `key`, or `fallback` when absent/garbled.
  std::int64_t queryInt(const std::string& key, std::int64_t fallback) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Loopback by default: the admin plane is an operator surface, not
    /// a public one.  Set to "0.0.0.0" to expose deliberately.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (tests), read it back with
    /// port() after start().
    std::uint16_t port = 0;
    /// Worker threads serving accepted connections.
    std::size_t workers = 2;
    /// Accepted connections waiting for a worker before new arrivals
    /// are turned away with 503.
    std::size_t backlog = 64;
  };

  /// Default options: loopback, ephemeral port.  (Separate constructor
  /// because a `= {}` default argument would need the nested class's
  /// member initializers before the enclosing class is complete.)
  AdminServer();
  explicit AdminServer(Options options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Installs (or replaces) the handler for an exact path.  Handlers
  /// must be installed before start().
  void handle(std::string path, Handler handler);

  /// Binds, listens, and spawns the accept loop + workers.  Fails with
  /// a Status (never a crash) when the address or port is unavailable.
  util::Status start();

  /// Graceful shutdown: stops accepting, serves connections already
  /// queued, then joins every thread.  Idempotent; also run by the
  /// destructor.
  void stop();

  bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !stopping_.load(std::memory_order_acquire);
  }

  /// Port actually bound (resolves ephemeral port 0); 0 before start().
  std::uint16_t port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }

  /// Requests served so far (any status), for tests and /statusz.
  std::uint64_t requestsServed() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void acceptLoop();
  void workerLoop();
  void serveConnection(int fd);

  Options options_;
  std::vector<std::pair<std::string, Handler>> routes_;

  int listen_fd_ = -1;
  std::atomic<std::uint16_t> port_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

/// Installs the obs-backed endpoints on `server`:
///   /metrics       Prometheus text exposition of `registry`
///   /metrics.json  the same snapshot as JSON
///   /tracez        recent trace events as JSON (?limit=N, default 64)
///   /healthz       plain "ok" liveness (override with a richer probe)
/// Also registers the rap_build_info gauge so every scrape identifies
/// the binary.  Defaults target the process-wide registry/recorder.
void registerObsEndpoints(AdminServer& server,
                          MetricsRegistry* registry = nullptr,
                          TraceRecorder* recorder = nullptr);

/// Renders the /tracez JSON document from `recorder` (the newest
/// `limit` events, ordered oldest first).  Exposed for tests.
std::string renderTracez(const TraceRecorder& recorder, std::size_t limit);

}  // namespace rap::obs
