// Embedded admin + service HTTP server — the live network surface of
// the process.
//
// A dependency-free HTTP/1.1 server on POSIX sockets: one blocking
// accept loop plus a small worker set serving requests against a route
// table.  Built for operational scraping (Prometheus, curl, health
// probes) and for the bounded request/response API of the localization
// service (src/svc), not for general traffic: responses always close
// the connection and the whole exchange is one request per connection.
//
//   obs::AdminServer server({.port = 0});         // 0 = ephemeral
//   obs::registerObsEndpoints(server);            // /metrics, /tracez, ...
//   RAP_CHECK(server.start().isOk());
//   ... server.port() is the bound port ...
//   server.stop();                                // graceful, idempotent
//
// Hostile-client hardening (every limit maps to an HTTP status instead
// of a hung or memory-exhausted worker):
//   * per-connection read timeout (SO_RCVTIMEO) — a client that stops
//     sending mid-request gets 408 and the worker moves on;
//   * max_header_bytes — an unterminated header section gets 431;
//   * max_body_bytes — an oversized declared body gets 413 before the
//     body is read;
//   * POST without Content-Length gets 411 (chunked uploads are not
//     accepted on this plane).
//
// Threading: handlers run on worker threads, concurrently with each
// other and with the rest of the process — they must only touch
// thread-safe state (the metrics registry, the trace recorder, the
// StreamEngine accessors and the svc::JobManager all qualify).
// start()/stop() are control-plane calls from one thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace rap::obs {

/// One parsed request.  Header names are lowercased at parse time;
/// bodies are only read for routes registered via handlePost.
struct HttpRequest {
  std::string method;  ///< "GET", uppercased as received
  std::string path;    ///< "/metrics" — target with the query stripped
  std::string query;   ///< "limit=32" — text after '?', possibly empty
  /// Header fields in arrival order, names lowercased, values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;  ///< POST payload (empty for GET/HEAD)

  /// First header with the given lowercase name, or nullptr.
  const std::string* header(const std::string& lower_name) const;

  /// Raw (undecoded) value of query parameter `key`; nullopt when the
  /// key is absent.  Admin parameters are numbers and short tokens, so
  /// percent-decoding is intentionally not performed.
  std::optional<std::string> queryParam(const std::string& key) const;

  /// Integer query parameter `key`, or `fallback` when absent/garbled.
  std::int64_t queryInt(const std::string& key, std::int64_t fallback) const;

  /// Strict integer parse for endpoints that must reject garbage with
  /// 400 instead of silently falling back (the /tracez contract).
  enum class QueryIntResult { kAbsent, kValid, kInvalid };
  QueryIntResult queryIntStrict(const std::string& key,
                                std::int64_t* out) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. {"Retry-After", "1"}); Content-Type,
  /// Content-Length and Connection are always emitted by the server.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Method classes routes are registered under.  HEAD dispatches to the
/// kGet handler (the server suppresses the body).
enum class HttpMethod : std::uint8_t { kGet, kPost, kPut, kDelete };

/// Canonical JSON error body shared by the server core and every API
/// handler:
///   {"error":{"code":"not_found","status":404,"message":"..."}}
/// `extra_fields` is raw JSON appended inside the error object (e.g.
/// "\"retry_after_seconds\":1"); empty adds nothing.
std::string errorEnvelope(int status, std::string_view code,
                          std::string_view message,
                          std::string_view extra_fields = {});

/// errorEnvelope wrapped in an application/json HttpResponse.
HttpResponse errorResponse(int status, std::string_view code,
                           std::string_view message);

class AdminServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Loopback by default: the admin plane is an operator surface, not
    /// a public one.  Set to "0.0.0.0" to expose deliberately.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (tests), read it back with
    /// port() after start().
    std::uint16_t port = 0;
    /// Worker threads serving accepted connections.
    std::size_t workers = 2;
    /// Accepted connections waiting for a worker before new arrivals
    /// are turned away with 503.
    std::size_t backlog = 64;
    /// Per-connection socket read timeout in seconds (SO_RCVTIMEO); a
    /// stalled client gets 408 instead of pinning a worker.  0 disables.
    double read_timeout_seconds = 10.0;
    /// Upper bound on the request line + header section -> 431.
    std::size_t max_header_bytes = 8192;
    /// Upper bound on a declared POST body -> 413.
    std::size_t max_body_bytes = 8u << 20;
  };

  /// Default options: loopback, ephemeral port.  (Separate constructor
  /// because a `= {}` default argument would need the nested class's
  /// member initializers before the enclosing class is complete.)
  AdminServer();
  explicit AdminServer(Options options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Installs (or replaces) the GET/HEAD handler for an exact path.
  /// Handlers must be installed before start().
  void handle(std::string path, Handler handler);

  /// Installs (or replaces) the POST handler for an exact path.  The
  /// body is read (subject to max_body_bytes) before dispatch.  A path
  /// may carry one handler per method class.
  void handlePost(std::string path, Handler handler);

  /// Installs a GET/HEAD handler for every path starting with `prefix`
  /// (e.g. "/api/v1/jobs/").  Exact routes win over prefix routes; the
  /// longest matching prefix wins among prefix routes.
  void handlePrefix(std::string prefix, Handler handler);

  /// Fully general registration: exact or prefix route for any method
  /// class.  PUT routes read a bounded body exactly like POST; DELETE
  /// requests carry no body on this plane.
  void handleMethod(HttpMethod method, std::string path, bool prefix,
                    Handler handler);

  /// Binds, listens, and spawns the accept loop + workers.  Fails with
  /// a Status (never a crash) when the address or port is unavailable.
  util::Status start();

  /// Graceful shutdown: stops accepting, serves connections already
  /// queued, then joins every thread.  Idempotent; also run by the
  /// destructor.
  void stop();

  bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !stopping_.load(std::memory_order_acquire);
  }

  /// Port actually bound (resolves ephemeral port 0); 0 before start().
  std::uint16_t port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }

  /// Requests served so far (any status), for tests and /statusz.
  std::uint64_t requestsServed() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string path;
    bool prefix = false;  ///< prefix match instead of exact
    HttpMethod method = HttpMethod::kGet;
    Handler fn;
  };

  void acceptLoop();
  void workerLoop();
  void serveConnection(int fd);
  /// Longest match for (path, method); sets `path_known` when the path
  /// matches a route of another method class (405 material).
  const Route* findRoute(const std::string& path, HttpMethod method,
                         bool* path_known) const;

  Options options_;
  std::vector<Route> routes_;

  int listen_fd_ = -1;
  std::atomic<std::uint16_t> port_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

/// Installs the obs-backed endpoints on `server`:
///   /metrics       Prometheus text exposition of `registry`
///   /metrics.json  the same snapshot as JSON
///   /tracez        recent trace events as JSON (?limit=N, default 64;
///                  a non-numeric or negative limit is a 400)
///   /healthz       plain "ok" liveness (override with a richer probe)
/// Also registers the rap_build_info gauge so every scrape identifies
/// the binary.  Defaults target the process-wide registry/recorder.
void registerObsEndpoints(AdminServer& server,
                          MetricsRegistry* registry = nullptr,
                          TraceRecorder* recorder = nullptr);

/// Renders the /tracez JSON document from `recorder` (the newest
/// `limit` events, ordered oldest first).  Exposed for tests.
std::string renderTracez(const TraceRecorder& recorder, std::size_t limit);

}  // namespace rap::obs
