// Umbrella header for the rap::obs observability subsystem:
//
//   * metrics.h        — counters / gauges / histograms + registry,
//                        Prometheus and JSON exposition
//   * trace.h          — RAP_TRACE_SPAN scoped spans, traceFlow
//                        cross-thread links, Chrome trace export
//   * structured_log.h — JSON-lines sink for RAP_LOG / RAP_LOG_KV
//   * export.h         — snapshot files + --metrics-out/--trace-out and
//                        --admin-port wiring
//   * admin_server.h   — embedded HTTP server: live /metrics, /healthz,
//                        /statusz, /tracez
//   * build_info.h     — rap_build_info gauge + /statusz build block
//
// See docs/observability.md for naming conventions and usage.
#pragma once

#include "obs/admin_server.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"
