// Umbrella header for the rap::obs observability subsystem:
//
//   * metrics.h        — counters / gauges / histograms + registry,
//                        Prometheus and JSON exposition
//   * trace.h          — RAP_TRACE_SPAN scoped spans, Chrome trace export
//   * structured_log.h — JSON-lines sink for RAP_LOG / RAP_LOG_KV
//   * export.h         — snapshot files + --metrics-out/--trace-out wiring
//
// See docs/observability.md for naming conventions and usage.
#pragma once

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"
