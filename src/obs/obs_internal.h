// Shared formatting helpers for the obs exporters.  Internal to
// src/obs — kept out of io/json.h so the obs layer depends on util
// only (io sits above core, which itself links obs).
#pragma once

#include <string>

namespace rap::obs::internal {

/// Minimal RFC 8259 string escaping (quotes, backslash, control chars).
std::string jsonEscape(const std::string& text);

/// Prometheus text-exposition label-value escaping: exactly backslash,
/// double-quote, and line feed (the spec's three), everything else —
/// tabs and other control bytes included — passes through verbatim.
std::string promEscapeLabelValue(const std::string& text);

/// Shortest-ish decimal rendering for exposition output: integers print
/// without a fractional part, everything else with %.9g.
std::string formatDouble(double v);

}  // namespace rap::obs::internal
