#include "obs/build_info.h"

#include "obs/obs_internal.h"

namespace rap::obs {

namespace {

// The version and build type are injected by CMake; direct compiler
// invocations (IDE probes, single-file checks) still build with the
// fallbacks.
#ifndef RAP_VERSION_STRING
#define RAP_VERSION_STRING "0.0.0-dev"
#endif
#ifndef RAP_BUILD_TYPE
#define RAP_BUILD_TYPE "unspecified"
#endif

const char* compilerString() noexcept {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& buildInfo() noexcept {
  static const BuildInfo info{
      RAP_VERSION_STRING, compilerString(), RAP_BUILD_TYPE,
      // Mirrors fault::kCompiledIn without linking the fault library
      // into obs (obs depends on util only).
#ifdef RAP_FAULT_INJECTION
      true,
#else
      false,
#endif
  };
  return info;
}

void registerBuildInfo(MetricsRegistry& registry) {
  const BuildInfo& info = buildInfo();
  registry
      .gauge("rap_build_info",
             {{"version", info.version},
              {"compiler", info.compiler},
              {"build_type", info.build_type},
              {"fault_injection", info.fault_injection ? "on" : "off"}})
      .set(1.0);
}

std::string buildInfoJson() {
  const BuildInfo& info = buildInfo();
  std::string out = "{\"version\":\"";
  out += internal::jsonEscape(info.version);
  out += "\",\"compiler\":\"";
  out += internal::jsonEscape(info.compiler);
  out += "\",\"build_type\":\"";
  out += internal::jsonEscape(info.build_type);
  out += "\",\"fault_injection\":";
  out += info.fault_injection ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace rap::obs
