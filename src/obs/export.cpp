#include "obs/export.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/build_info.h"
#include "obs/structured_log.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rap::obs {

util::Status writeTextFile(const std::string& path,
                           const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return util::Status::ok();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::notFound("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return util::Status::internal("short write to '" + path + "'");
  }
  return util::Status::ok();
}

util::Status writeMetricsSnapshot(const MetricsRegistry& registry,
                                  const std::string& path) {
  const bool json = util::endsWith(path, ".json");
  return writeTextFile(path,
                       json ? registry.renderJson()
                            : registry.renderPrometheus());
}

util::Status writeTraceFile(const TraceRecorder& recorder,
                            const std::string& path) {
  return writeTextFile(path, recorder.renderChromeTrace());
}

void addObsFlags(util::FlagParser& flags) {
  flags.addString("metrics-out", "",
                  "write a metrics snapshot on exit (Prometheus text; "
                  "*.json for JSON; '-' for stdout)");
  flags.addString("trace-out", "",
                  "write a Chrome trace-event JSON file on exit");
  flags.addBool("log-json", false,
                "emit log statements as JSON lines instead of text");
}

void enableFromFlags(const util::FlagParser& flags) {
  if (!flags.getString("metrics-out").empty()) setMetricsEnabled(true);
  if (!flags.getString("trace-out").empty()) setTracingEnabled(true);
  if (flags.getBool("log-json")) enableJsonLogging(stderr);
}

void addAdminFlags(util::FlagParser& flags) {
  flags.addInt("admin-port", -1,
               "serve live /metrics, /healthz, /statusz, /tracez on this "
               "port (0 = ephemeral; -1 = off)");
  flags.addInt("admin-linger", 0,
               "keep the process (and admin server) alive this many "
               "seconds after the workload finishes");
}

std::unique_ptr<AdminServer> maybeStartAdminServer(
    const util::FlagParser& flags,
    const std::function<void(AdminServer&)>& configure) {
  const std::int64_t port = flags.getInt("admin-port");
  if (port < 0) return nullptr;
  if (port > 65535) {
    RAP_LOG(Error) << "--admin-port " << port << " out of range; disabled";
    return nullptr;
  }
  // A live scrape surface with frozen instrumentation would lie; turn
  // everything on before the workload starts.
  setMetricsEnabled(true);
  setTracingEnabled(true);
  auto server = std::make_unique<AdminServer>(
      AdminServer::Options{.port = static_cast<std::uint16_t>(port)});
  registerObsEndpoints(*server);
  if (configure) configure(*server);
  if (auto status = server->start(); !status.isOk()) {
    RAP_LOG(Error) << "admin server failed to start: " << status.toString();
    return nullptr;
  }
  // Printed (not just logged) so scripts probing an ephemeral port can
  // parse it from stdout.
  std::printf("admin server listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server->port()));
  std::fflush(stdout);
  return server;
}

void adminLingerFromFlags(const util::FlagParser& flags) {
  const std::int64_t seconds = flags.getInt("admin-linger");
  if (seconds <= 0) return;
  RAP_LOG_KV(Info, {"seconds", seconds}) << "admin server lingering";
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
}

util::Status dumpFromFlags(const util::FlagParser& flags) {
  util::Status status = util::Status::ok();
  if (const std::string path = flags.getString("metrics-out"); !path.empty()) {
    if (auto s = writeMetricsSnapshot(defaultRegistry(), path); !s.isOk()) {
      RAP_LOG(Error) << "metrics snapshot failed: " << s.toString();
      if (status.isOk()) status = s;
    } else {
      RAP_LOG(Info) << "metrics snapshot written to " << path;
    }
  }
  if (const std::string path = flags.getString("trace-out"); !path.empty()) {
    if (auto s = writeTraceFile(defaultTraceRecorder(), path); !s.isOk()) {
      RAP_LOG(Error) << "trace export failed: " << s.toString();
      if (status.isOk()) status = s;
    } else {
      RAP_LOG(Info) << "trace written to " << path;
    }
  }
  return status;
}

ScopedDump::~ScopedDump() { (void)dumpFromFlags(flags_); }

}  // namespace rap::obs
