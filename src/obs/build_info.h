// Build identity for scrapes and status pages.
//
// A daemon fleet is only debuggable when every scrape says which binary
// produced it: rap_build_info is the Prometheus idiom for that — a
// constant-1 gauge whose labels carry the identifying facts.  The same
// facts back the /statusz "build" block.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace rap::obs {

struct BuildInfo {
  const char* version;     ///< project version (RAP_VERSION_STRING)
  const char* compiler;    ///< e.g. "gcc 13.2.0"
  const char* build_type;  ///< CMAKE_BUILD_TYPE, or "unspecified"
  bool fault_injection;    ///< RAP_FAULT_INJECTION compiled in
};

/// The facts baked into this binary at compile time.
const BuildInfo& buildInfo() noexcept;

/// Registers the `rap_build_info` gauge (value 1, labels version /
/// compiler / build_type / fault_injection) on `registry`.  Idempotent:
/// re-registering the same series is a no-op by registry semantics.
void registerBuildInfo(MetricsRegistry& registry = defaultRegistry());

/// {"version":...,"compiler":...,...} for /statusz.
std::string buildInfoJson();

}  // namespace rap::obs
