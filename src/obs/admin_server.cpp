#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/build_info.h"
#include "obs/obs_internal.h"
#include "obs/query_params.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rap::obs {

namespace {

const char* statusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 202:
      return "Accepted";
    case 403:
      return "Forbidden";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 409:
      return "Conflict";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 411:
      return "Length Required";
    case 413:
      return "Content Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// Blocking full write; sockets may accept partial writes under
/// pressure, and a scrape response must not be truncated silently.
bool writeAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string toLower(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

/// Receive outcome for the bounded reads below.
enum class RecvResult { kData, kClosed, kTimeout, kError };

RecvResult recvSome(int fd, std::string& out, char* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      return RecvResult::kData;
    }
    if (n == 0) return RecvResult::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvResult::kTimeout;
    return RecvResult::kError;
  }
}

/// Maps the request-line method token to a route method class;
/// returns false for methods this plane refuses (405).
bool methodClass(const std::string& token, HttpMethod* out) {
  if (token == "GET" || token == "HEAD") {
    *out = HttpMethod::kGet;
    return true;
  }
  if (token == "POST") {
    *out = HttpMethod::kPost;
    return true;
  }
  if (token == "PUT") {
    *out = HttpMethod::kPut;
    return true;
  }
  if (token == "DELETE") {
    *out = HttpMethod::kDelete;
    return true;
  }
  return false;
}

}  // namespace

std::string errorEnvelope(int status, std::string_view code,
                          std::string_view message,
                          std::string_view extra_fields) {
  std::string out = "{\"error\":{\"code\":\"";
  out += internal::jsonEscape(std::string(code));
  out += "\",\"status\":";
  out += std::to_string(status);
  out += ",\"message\":\"";
  out += internal::jsonEscape(std::string(message));
  out += "\"";
  if (!extra_fields.empty()) {
    out += ",";
    out += extra_fields;
  }
  out += "}}";
  return out;
}

HttpResponse errorResponse(int status, std::string_view code,
                           std::string_view message) {
  return HttpResponse{status, "application/json",
                      errorEnvelope(status, code, message), {}};
}

const std::string* HttpRequest::header(const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

std::optional<std::string> HttpRequest::queryParam(
    const std::string& key) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string part = query.substr(pos, end - pos);
    const std::size_t eq = part.find('=');
    if (eq != std::string::npos && part.substr(0, eq) == key) {
      return part.substr(eq + 1);
    }
    if (eq == std::string::npos && part == key) return std::string();
    pos = end + 1;
  }
  return std::nullopt;
}

std::int64_t HttpRequest::queryInt(const std::string& key,
                                   std::int64_t fallback) const {
  std::int64_t value = 0;
  return queryIntStrict(key, &value) == QueryIntResult::kValid ? value
                                                               : fallback;
}

HttpRequest::QueryIntResult HttpRequest::queryIntStrict(
    const std::string& key, std::int64_t* out) const {
  const auto raw = queryParam(key);
  if (!raw.has_value()) return QueryIntResult::kAbsent;
  // One strict parser for every query-int path: raw strtoll here used
  // to accept the '+5' and ' 5' spellings parseParams rejected.
  const auto parsed = parseQueryInt(*raw);
  if (!parsed.isOk()) return QueryIntResult::kInvalid;
  *out = parsed.value();
  return QueryIntResult::kValid;
}

AdminServer::AdminServer() : AdminServer(Options{}) {}

AdminServer::AdminServer(Options options) : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.backlog == 0) options_.backlog = 1;
  if (options_.max_header_bytes == 0) options_.max_header_bytes = 1024;
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::handleMethod(HttpMethod method, std::string path,
                               bool prefix, Handler handler) {
  RAP_CHECK_MSG(!started_.load(), "install handlers before start()");
  RAP_CHECK(handler != nullptr);
  for (auto& route : routes_) {
    if (route.path == path && route.prefix == prefix &&
        route.method == method) {
      route.fn = std::move(handler);
      return;
    }
  }
  routes_.push_back(Route{std::move(path), prefix, method, std::move(handler)});
}

void AdminServer::handle(std::string path, Handler handler) {
  handleMethod(HttpMethod::kGet, std::move(path), /*prefix=*/false,
               std::move(handler));
}

void AdminServer::handlePost(std::string path, Handler handler) {
  handleMethod(HttpMethod::kPost, std::move(path), /*prefix=*/false,
               std::move(handler));
}

void AdminServer::handlePrefix(std::string prefix, Handler handler) {
  handleMethod(HttpMethod::kGet, std::move(prefix), /*prefix=*/true,
               std::move(handler));
}

const AdminServer::Route* AdminServer::findRoute(const std::string& path,
                                                 HttpMethod method,
                                                 bool* path_known) const {
  const Route* best = nullptr;
  for (const auto& route : routes_) {
    const bool matches =
        route.prefix ? path.compare(0, route.path.size(), route.path) == 0
                     : path == route.path;
    if (!matches) continue;
    *path_known = true;
    if (route.method != method) continue;
    if (!route.prefix) return &route;  // exact routes always win
    // Longest matching prefix wins among prefix routes.
    if (best == nullptr || route.path.size() > best->path.size()) {
      best = &route;
    }
  }
  return best;
}

util::Status AdminServer::start() {
  RAP_CHECK_MSG(!started_.load(), "admin server started twice");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::internal(
        util::strFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return util::Status::invalidArgument("bad bind address '" +
                                         options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Status::internal(
        util::strFormat("bind(%s:%u): %s", options_.bind_address.c_str(),
                        static_cast<unsigned>(options_.port),
                        std::strerror(err)));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Status::internal(
        util::strFormat("listen(): %s", std::strerror(err)));
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return util::Status::internal(
        util::strFormat("getsockname(): %s", std::strerror(err)));
  }

  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  acceptor_ = std::thread([this] { acceptLoop(); });
  started_.store(true, std::memory_order_release);
  RAP_LOG_KV(Info, {"address", options_.bind_address},
             {"port", static_cast<std::int64_t>(port())})
      << "admin server listening";
  return util::Status::ok();
}

void AdminServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;

  // shutdown() unblocks the acceptor's blocking accept(); close() alone
  // is not guaranteed to on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Workers drain connections already accepted, then exit on the empty
  // queue + stopping flag.
  queue_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  RAP_LOG_KV(Info, {"requests", static_cast<std::int64_t>(requestsServed())})
      << "admin server stopped";
}

void AdminServer::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() during stop() lands here (EINVAL); anything else on
      // a healthy listener is transient — bail only when stopping.
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (!stopping_.load(std::memory_order_acquire) &&
          pending_.size() < options_.backlog) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      static const std::string kBusy = [] {
        const std::string body =
            errorEnvelope(503, "overloaded", "connection backlog full");
        return "HTTP/1.1 503 Service Unavailable\r\n"
               "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
               body;
      }();
      writeAll(fd, kBusy.data(), kBusy.size());
      ::close(fd);
    }
  }
}

void AdminServer::workerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serveConnection(fd);
    ::close(fd);
  }
}

void AdminServer::serveConnection(int fd) {
  // One request per connection: read the header section, then (for POST
  // routes) the declared body, dispatch, respond, close.
  if (options_.read_timeout_seconds > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(options_.read_timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (options_.read_timeout_seconds - static_cast<double>(tv.tv_sec)) *
        1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  std::string raw;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  bool timed_out = false;
  bool header_overflow = false;
  while ((header_end = raw.find("\r\n\r\n")) == std::string::npos) {
    if (raw.size() > options_.max_header_bytes) {
      header_overflow = true;
      break;
    }
    const RecvResult r = recvSome(fd, raw, buf, sizeof(buf));
    if (r == RecvResult::kTimeout) {
      timed_out = true;
      break;
    }
    if (r != RecvResult::kData) break;
  }
  // The cap applies even when the whole oversized section arrives in one
  // read — the in-loop check only sees unterminated prefixes.
  if (header_end != std::string::npos &&
      header_end > options_.max_header_bytes) {
    header_overflow = true;
    header_end = std::string::npos;  // skip parsing what we refused
  }

  HttpRequest request;
  HttpResponse response;
  bool parsed = false;
  if (header_end != std::string::npos) {
    const std::size_t line_end = raw.find("\r\n");
    const std::string line = raw.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      request.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t qmark = target.find('?');
      if (qmark != std::string::npos) {
        request.query = target.substr(qmark + 1);
        target.resize(qmark);
      }
      request.path = std::move(target);
      parsed = !request.method.empty() && !request.path.empty() &&
               request.path.front() == '/';
    }
    // Header fields: "Name: value" lines between the request line and
    // the blank line.
    std::size_t pos = line_end + 2;
    while (parsed && pos < header_end) {
      std::size_t eol = raw.find("\r\n", pos);
      if (eol == std::string::npos || eol > header_end) eol = header_end;
      const std::string field = raw.substr(pos, eol - pos);
      const std::size_t colon = field.find(':');
      if (colon != std::string::npos) {
        request.headers.emplace_back(
            toLower(field.substr(0, colon)),
            std::string(util::trim(field.substr(colon + 1))));
      }
      pos = eol + 2;
    }
  }

  bool dispatch = false;
  HttpMethod method = HttpMethod::kGet;
  if (timed_out && header_end == std::string::npos) {
    response = errorResponse(408, "timeout", "request timed out");
  } else if (header_overflow) {
    response = errorResponse(431, "header_too_large",
                             "request header section too large");
  } else if (!parsed) {
    response = errorResponse(400, "bad_request", "bad request");
  } else if (!methodClass(request.method, &method)) {
    response =
        errorResponse(405, "method_not_allowed", "method not allowed");
  } else {
    dispatch = true;
  }

  const Route* route = nullptr;
  if (dispatch) {
    bool path_known = false;
    route = findRoute(request.path, method, &path_known);
    if (route == nullptr) {
      response = path_known ? errorResponse(405, "method_not_allowed",
                                            "method not allowed")
                            : errorResponse(404, "not_found", "not found");
      dispatch = false;
    } else if (method == HttpMethod::kPost || method == HttpMethod::kPut) {
      // Bounded body read: Content-Length is mandatory (no chunked
      // decoding on this plane) and capped before a byte is read.
      const std::string* declared = request.header("content-length");
      std::uint64_t content_length = 0;
      if (declared == nullptr) {
        response = errorResponse(411, "length_required",
                                 "Content-Length required");
        dispatch = false;
      } else {
        errno = 0;
        char* tail = nullptr;
        const unsigned long long v =
            std::strtoull(declared->c_str(), &tail, 10);
        if (errno != 0 || tail == declared->c_str() || *tail != '\0') {
          response =
              errorResponse(400, "bad_request", "bad Content-Length");
          dispatch = false;
        } else if (v > options_.max_body_bytes) {
          response = errorResponse(413, "body_too_large",
                                   "request body too large");
          dispatch = false;
        } else {
          content_length = v;
        }
      }
      if (dispatch) {
        request.body = raw.substr(header_end + 4);
        bool body_timeout = false;
        while (request.body.size() < content_length) {
          const RecvResult r = recvSome(fd, request.body, buf, sizeof(buf));
          if (r == RecvResult::kTimeout) {
            body_timeout = true;
            break;
          }
          if (r != RecvResult::kData) break;
        }
        if (request.body.size() < content_length) {
          response = body_timeout
                         ? errorResponse(408, "timeout", "request timed out")
                         : errorResponse(400, "bad_request",
                                         "truncated request body");
          dispatch = false;
        } else {
          request.body.resize(content_length);
        }
      }
    }
  }

  if (dispatch) {
    try {
      response = (route->fn)(request);
    } catch (const std::exception& e) {
      // An endpoint bug must not take down the serving plane.
      response = errorResponse(500, "internal",
                               std::string("handler error: ") + e.what());
    }
  }

  std::string head = util::strFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n",
      response.status, statusText(response.status),
      response.content_type.c_str(), response.body.size());
  for (const auto& [name, value] : response.headers) {
    head += name;
    head += ": ";
    head += value;
    head += "\r\n";
  }
  head += "Connection: close\r\n\r\n";
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!writeAll(fd, head.data(), head.size())) return;
  if (request.method != "HEAD") {
    writeAll(fd, response.body.data(), response.body.size());
  }
}

std::string renderTracez(const TraceRecorder& recorder, std::size_t limit) {
  auto events = recorder.snapshotEvents();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  const std::size_t begin = events.size() > limit ? events.size() - limit : 0;
  std::string out = "{\"total\":" + std::to_string(events.size()) +
                    ",\"events\":[";
  for (std::size_t i = begin; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > begin) out += ",";
    out += "{\"name\":\"";
    out += internal::jsonEscape(event.name);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"ts_us\":" + std::to_string(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur_us\":" + std::to_string(event.dur_us);
    }
    if (event.flow_id != 0) {
      out += ",\"id\":" + std::to_string(event.flow_id);
    }
    out += ",\"tid\":" + std::to_string(event.tid);
    if (!event.args_json.empty()) out += ",\"args\":" + event.args_json;
    out += "}";
  }
  out += "]}";
  return out;
}

void registerObsEndpoints(AdminServer& server, MetricsRegistry* registry,
                          TraceRecorder* recorder) {
  MetricsRegistry* metrics = registry ? registry : &defaultRegistry();
  TraceRecorder* traces = recorder ? recorder : &defaultTraceRecorder();
  registerBuildInfo(*metrics);

  server.handle("/metrics", [metrics](const HttpRequest&) {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        metrics->renderPrometheus(),
                        {}};
  });
  server.handle("/metrics.json", [metrics](const HttpRequest&) {
    return HttpResponse{200, "application/json", metrics->renderJson(), {}};
  });
  server.handle("/tracez", [traces](const HttpRequest& request) {
    // A garbled limit must not silently serve the default — the
    // operator asked for something specific and typo'd it.
    const auto params = parseParams(
        request.query,
        {{"limit", ParamSpec::Kind::kInt, 0.0, 9e18, {}}});
    if (!params.isOk()) {
      return errorResponse(400, "bad_parameter", params.status().message());
    }
    const std::int64_t limit = params.value().intOr("limit", 64);
    return HttpResponse{
        200, "application/json",
        renderTracez(*traces, static_cast<std::size_t>(limit)),
        {}};
  });
  server.handle("/healthz", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n", {}};
  });
}

}  // namespace rap::obs
