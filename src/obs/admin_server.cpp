#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/build_info.h"
#include "obs/obs_internal.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rap::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* statusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// Blocking full write; sockets may accept partial writes under
/// pressure, and a scrape response must not be truncated silently.
bool writeAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::int64_t HttpRequest::queryInt(const std::string& key,
                                   std::int64_t fallback) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string part = query.substr(pos, end - pos);
    const std::size_t eq = part.find('=');
    if (eq != std::string::npos && part.substr(0, eq) == key) {
      errno = 0;
      char* tail = nullptr;
      const long long v = std::strtoll(part.c_str() + eq + 1, &tail, 10);
      if (errno == 0 && tail != nullptr && *tail == '\0' &&
          tail != part.c_str() + eq + 1) {
        return static_cast<std::int64_t>(v);
      }
      return fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

AdminServer::AdminServer() : AdminServer(Options{}) {}

AdminServer::AdminServer(Options options) : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.backlog == 0) options_.backlog = 1;
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::handle(std::string path, Handler handler) {
  RAP_CHECK_MSG(!started_.load(), "install handlers before start()");
  RAP_CHECK(handler != nullptr);
  for (auto& [existing, fn] : routes_) {
    if (existing == path) {
      fn = std::move(handler);
      return;
    }
  }
  routes_.emplace_back(std::move(path), std::move(handler));
}

util::Status AdminServer::start() {
  RAP_CHECK_MSG(!started_.load(), "admin server started twice");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::internal(
        util::strFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return util::Status::invalidArgument("bad bind address '" +
                                         options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Status::internal(
        util::strFormat("bind(%s:%u): %s", options_.bind_address.c_str(),
                        static_cast<unsigned>(options_.port),
                        std::strerror(err)));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Status::internal(
        util::strFormat("listen(): %s", std::strerror(err)));
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return util::Status::internal(
        util::strFormat("getsockname(): %s", std::strerror(err)));
  }

  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  acceptor_ = std::thread([this] { acceptLoop(); });
  started_.store(true, std::memory_order_release);
  RAP_LOG_KV(Info, {"address", options_.bind_address},
             {"port", static_cast<std::int64_t>(port())})
      << "admin server listening";
  return util::Status::ok();
}

void AdminServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;

  // shutdown() unblocks the acceptor's blocking accept(); close() alone
  // is not guaranteed to on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Workers drain connections already accepted, then exit on the empty
  // queue + stopping flag.
  queue_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  RAP_LOG_KV(Info, {"requests", static_cast<std::int64_t>(requestsServed())})
      << "admin server stopped";
}

void AdminServer::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() during stop() lands here (EINVAL); anything else on
      // a healthy listener is transient — bail only when stopping.
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (!stopping_.load(std::memory_order_acquire) &&
          pending_.size() < options_.backlog) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      static constexpr char kBusy[] =
          "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n"
          "Connection: close\r\n\r\n";
      writeAll(fd, kBusy, sizeof(kBusy) - 1);
      ::close(fd);
    }
  }
}

void AdminServer::workerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serveConnection(fd);
    ::close(fd);
  }
}

void AdminServer::serveConnection(int fd) {
  // One request per connection: read until the header terminator (the
  // body, if any, is ignored), dispatch, respond, close.
  std::string raw;
  char buf[2048];
  while (raw.size() < kMaxRequestBytes &&
         raw.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }

  HttpRequest request;
  HttpResponse response;
  const std::size_t line_end = raw.find("\r\n");
  bool parsed = false;
  if (line_end != std::string::npos) {
    const std::string line = raw.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      request.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t qmark = target.find('?');
      if (qmark != std::string::npos) {
        request.query = target.substr(qmark + 1);
        target.resize(qmark);
      }
      request.path = std::move(target);
      parsed = !request.method.empty() && !request.path.empty() &&
               request.path.front() == '/';
    }
  }

  if (!parsed) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (request.method != "GET" && request.method != "HEAD") {
    response = {405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    const Handler* handler = nullptr;
    for (const auto& [path, fn] : routes_) {
      if (path == request.path) {
        handler = &fn;
        break;
      }
    }
    if (handler == nullptr) {
      response = {404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      try {
        response = (*handler)(request);
      } catch (const std::exception& e) {
        // An endpoint bug must not take down the serving plane.
        response = {500, "text/plain; charset=utf-8",
                    std::string("handler error: ") + e.what() + "\n"};
      }
    }
  }

  std::string head = util::strFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, statusText(response.status),
      response.content_type.c_str(), response.body.size());
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!writeAll(fd, head.data(), head.size())) return;
  if (request.method != "HEAD") {
    writeAll(fd, response.body.data(), response.body.size());
  }
}

std::string renderTracez(const TraceRecorder& recorder, std::size_t limit) {
  auto events = recorder.snapshotEvents();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  const std::size_t begin = events.size() > limit ? events.size() - limit : 0;
  std::string out = "{\"total\":" + std::to_string(events.size()) +
                    ",\"events\":[";
  for (std::size_t i = begin; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > begin) out += ",";
    out += "{\"name\":\"";
    out += internal::jsonEscape(event.name);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"ts_us\":" + std::to_string(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur_us\":" + std::to_string(event.dur_us);
    }
    if (event.flow_id != 0) {
      out += ",\"id\":" + std::to_string(event.flow_id);
    }
    out += ",\"tid\":" + std::to_string(event.tid);
    if (!event.args_json.empty()) out += ",\"args\":" + event.args_json;
    out += "}";
  }
  out += "]}";
  return out;
}

void registerObsEndpoints(AdminServer& server, MetricsRegistry* registry,
                          TraceRecorder* recorder) {
  MetricsRegistry* metrics = registry ? registry : &defaultRegistry();
  TraceRecorder* traces = recorder ? recorder : &defaultTraceRecorder();
  registerBuildInfo(*metrics);

  server.handle("/metrics", [metrics](const HttpRequest&) {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        metrics->renderPrometheus()};
  });
  server.handle("/metrics.json", [metrics](const HttpRequest&) {
    return HttpResponse{200, "application/json", metrics->renderJson()};
  });
  server.handle("/tracez", [traces](const HttpRequest& request) {
    const std::int64_t limit = request.queryInt("limit", 64);
    return HttpResponse{
        200, "application/json",
        renderTracez(*traces,
                     limit > 0 ? static_cast<std::size_t>(limit) : 0)};
  });
  server.handle("/healthz", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
}

}  // namespace rap::obs
