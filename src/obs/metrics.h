// Metrics layer of rap::obs — counters, gauges, and fixed-bucket
// histograms behind a thread-safe registry with Prometheus-style text
// and JSON exposition.
//
// Design:
//   * Metric objects are created once (mutex-protected registry lookup)
//     and updated lock-free afterwards: counters and histogram buckets
//     are relaxed atomics, so concurrent increments from the search /
//     eval worker threads never serialize on a lock.
//   * A process-wide default registry backs the pipeline
//     instrumentation.  It is gated by setMetricsEnabled(): when the
//     gate is off (the default) every instrumentation site reduces to
//     one relaxed atomic load and a branch, so binaries that never pass
//     --metrics-out pay effectively nothing.
//   * Library users who want isolated scraping (tests, embedding
//     services) construct their own MetricsRegistry and talk to it
//     directly; nothing in the class is global.
//
// Naming convention (docs/observability.md): `rap_<module>_<what>`,
// with `_total` for counters and `_seconds` for histograms of
// durations.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rap::obs {

/// Label set attached to one metric series, e.g. {{"layer","2"}}.
/// Order matters for identity; instrumentation sites pass a consistent
/// order so the registry's linear series lookup stays exact.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value that can move both ways (e.g. alarm state).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are chosen at creation
/// and never change, so observe() is a branchless-ish scan plus one
/// relaxed fetch_add.  Exposition follows Prometheus semantics
/// (cumulative `le` buckets plus `_sum` / `_count`).
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly increasing; an
  /// implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts, one per bound plus the +Inf
  /// bucket at the back.
  std::vector<std::uint64_t> bucketCounts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` buckets growing geometrically from `start` by `factor`
/// (Prometheus ExponentialBuckets) — the default shape for durations.
std::vector<double> exponentialBuckets(double start, double factor,
                                       std::int32_t count);
/// `count` buckets of equal `width` starting at `start`.
std::vector<double> linearBuckets(double start, double width,
                                  std::int32_t count);

/// Thread-safe collection of metric families.  Lookup takes a mutex;
/// the returned references stay valid for the registry's lifetime, so
/// hot paths resolve once and update lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create.  A name must keep one kind for the registry's
  /// lifetime (requesting an existing counter as a gauge is a caller
  /// bug and RAP_CHECKs).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` applies when the series is first created; later callers
  /// get the existing histogram regardless of their bounds argument.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  /// Prometheus text exposition format, families sorted by name.
  std::string renderPrometheus() const;
  /// The same snapshot as a JSON document:
  /// {"metrics":[{"name":..,"type":..,"series":[{"labels":{..},..}]}]}
  std::string renderJson() const;

  /// Number of registered series across all families (for tests).
  std::size_t seriesCount() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind{};
    std::vector<std::unique_ptr<Series>> series;
  };

  Series& findOrCreate(const std::string& name, Kind kind,
                       const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// The process-wide registry the pipeline instrumentation publishes to.
MetricsRegistry& defaultRegistry();

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

/// Gate for the built-in pipeline instrumentation.  Off by default:
/// every instrumentation site checks this first, so a binary that never
/// enables metrics pays one relaxed load + branch per site.
inline bool metricsEnabled() noexcept {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void setMetricsEnabled(bool enabled) noexcept;

}  // namespace rap::obs
