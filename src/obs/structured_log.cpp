#include "obs/structured_log.h"

#include <chrono>
#include <ctime>
#include <memory>
#include <string>

#include "obs/obs_internal.h"

namespace rap::obs {

std::string JsonLineLogSink::formatRecord(const util::LogRecord& record) {
  using Clock = std::chrono::system_clock;
  const auto now = Clock::to_time_t(Clock::now());
  char ts[40];
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%S", &tm_buf);

  std::string out = "{\"ts\":\"";
  out += ts;
  out += "\",\"level\":\"";
  out += util::logLevelFullName(record.level);
  out += "\",\"src\":\"";
  out += internal::jsonEscape(record.file);
  out += ":";
  out += std::to_string(record.line);
  out += "\",\"msg\":\"";
  out += internal::jsonEscape(record.message);
  out += "\"";
  for (const auto& field : record.fields) {
    out += ",\"";
    out += internal::jsonEscape(field.key);
    out += "\":";
    if (field.quoted) {
      // Built with += only: GCC 12 misfires -Wrestrict on the
      // `const char* + std::string&&` concatenation chain here.
      out += "\"";
      out += internal::jsonEscape(field.value);
      out += "\"";
    } else {
      out += field.value;
    }
  }
  out += "}";
  return out;
}

void JsonLineLogSink::write(const util::LogRecord& record) {
  const std::string line = formatRecord(record) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), out_);
}

void enableJsonLogging(std::FILE* out) {
  static std::unique_ptr<JsonLineLogSink> sink;
  if (out == nullptr) {
    util::setLogSink(nullptr);
    sink.reset();
    return;
  }
  auto next = std::make_unique<JsonLineLogSink>(out);
  util::setLogSink(next.get());
  sink = std::move(next);  // the previous sink is freed after the swap
}

}  // namespace rap::obs
