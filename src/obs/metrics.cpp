#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/obs_internal.h"
#include "util/status.h"

namespace rap::obs {

namespace internal {

std::atomic<bool> g_metrics_enabled{false};

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string promEscapeLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string formatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace internal

void setMetricsEnabled(bool enabled) noexcept {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

MetricsRegistry& defaultRegistry() {
  static MetricsRegistry registry;
  return registry;
}

// ----------------------------------------------------------------- Gauge

void Gauge::add(double delta) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  RAP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  RAP_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
            bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<double> exponentialBuckets(double start, double factor,
                                       std::int32_t count) {
  RAP_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (std::int32_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> linearBuckets(double start, double width,
                                  std::int32_t count) {
  RAP_CHECK(width > 0.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

// -------------------------------------------------------------- Registry

MetricsRegistry::Series& MetricsRegistry::findOrCreate(const std::string& name,
                                                       Kind kind,
                                                       const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
  } else {
    RAP_CHECK_MSG(family.kind == kind,
                  "metric '" << name << "' re-registered with another kind");
  }
  for (const auto& series : family.series) {
    if (series->labels == labels) return *series;
  }
  family.series.push_back(std::make_unique<Series>());
  family.series.back()->labels = labels;
  return *family.series.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  Series& series = findOrCreate(name, Kind::kCounter, labels);
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  Series& series = findOrCreate(name, Kind::kGauge, labels);
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  Series& series = findOrCreate(name, Kind::kHistogram, labels);
  if (!series.histogram) {
    series.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *series.histogram;
}

std::size_t MetricsRegistry::seriesCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

namespace {

/// `{key="value",...}` or "" for the empty label set; `extra` appends
/// one more pair (the histogram `le` bound).
std::string labelBlock(const Labels& labels, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& k, const std::string& v) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += internal::promEscapeLabelValue(v);
    out += "\"";
  };
  for (const auto& [k, v] : labels) append(k, v);
  if (!extra_key.empty()) append(extra_key, extra_value);
  out += "}";
  return out;
}

const char* kindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

std::string MetricsRegistry::renderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# TYPE " + name + " " +
           kindName(static_cast<int>(family.kind)) + "\n";
    for (const auto& series : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + labelBlock(series->labels) + " " +
                 std::to_string(series->counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + labelBlock(series->labels) + " " +
                 internal::formatDouble(series->gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series->histogram;
          const auto counts = h.bucketCounts();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            out += name + "_bucket" +
                   labelBlock(series->labels, "le",
                              internal::formatDouble(h.bounds()[i])) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += counts.back();
          out += name + "_bucket" + labelBlock(series->labels, "le", "+Inf") +
                 " " + std::to_string(cumulative) + "\n";
          out += name + "_sum" + labelBlock(series->labels) + " " +
                 internal::formatDouble(h.sum()) + "\n";
          out += name + "_count" + labelBlock(series->labels) + " " +
                 std::to_string(h.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::renderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"metrics\":[";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ",";
    first_family = false;
    out += "{\"name\":\"" + internal::jsonEscape(name) + "\",\"type\":\"" +
           kindName(static_cast<int>(family.kind)) + "\",\"series\":[";
    bool first_series = true;
    for (const auto& series : family.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : series->labels) {
        if (!first_label) out += ",";
        first_label = false;
        // Built with += only: GCC 12 misfires -Wrestrict on the
        // `const char* + std::string&&` concatenation chain here.
        out += "\"";
        out += internal::jsonEscape(k);
        out += "\":\"";
        out += internal::jsonEscape(v);
        out += "\"";
      }
      out += "}";
      switch (family.kind) {
        case Kind::kCounter:
          out += ",\"value\":" + std::to_string(series->counter->value());
          break;
        case Kind::kGauge:
          out += ",\"value\":" +
                 internal::formatDouble(series->gauge->value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series->histogram;
          const auto counts = h.bucketCounts();
          out += ",\"count\":" + std::to_string(h.count()) +
                 ",\"sum\":" + internal::formatDouble(h.sum()) +
                 ",\"buckets\":[";
          for (std::size_t i = 0; i < counts.size(); ++i) {
            if (i > 0) out += ",";
            std::string le = "\"+Inf\"";
            if (i < h.bounds().size()) {
              le = "\"";
              le += internal::formatDouble(h.bounds()[i]);
              le += "\"";
            }
            out += "{\"le\":" + le + ",\"count\":" + std::to_string(counts[i]) +
                   "}";
          }
          out += "]";
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace rap::obs
