#include "obs/trace.h"

#include <cstdio>

#include "obs/obs_internal.h"

namespace rap::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

void setTracingEnabled(bool enabled) noexcept {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

TraceArg::TraceArg(std::string k, double v)
    : key(std::move(k)), value(internal::formatDouble(v)), quoted(false) {}

struct TraceRecorder::ThreadBuffer {
  std::uint32_t tid = 0;
  std::mutex mutex;  // writer vs. snapshot; uncontended on the hot path
  std::vector<TraceEvent> events;
};

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
TraceRecorder::~TraceRecorder() = default;

std::uint64_t TraceRecorder::nowMicros() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuffer& TraceRecorder::localBuffer() {
  // Keyed on the recorder so tests with their own recorders do not mix
  // events into the default one.
  thread_local TraceRecorder* cached_owner = nullptr;
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_owner == this && cached_buffer != nullptr) return *cached_buffer;

  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size());
  cached_owner = this;
  cached_buffer = buffers_.back().get();
  return *cached_buffer;
}

void TraceRecorder::record(TraceEvent event) {
  ThreadBuffer& buffer = localBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::snapshotEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::string TraceRecorder::renderChromeTrace() const {
  const auto events = snapshotEvents();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + internal::jsonEscape(event.name) +
           "\",\"cat\":\"rap\",\"ph\":\"";
    out += event.phase;
    out += "\",\"ts\":" + std::to_string(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":" + std::to_string(event.dur_us);
    } else {
      out += ",\"id\":" + std::to_string(event.flow_id);
      // Terminating flow points bind to the enclosing slice rather than
      // the next one, so the arrow lands inside the span it annotates.
      if (event.phase == 'f') out += ",\"bp\":\"e\"";
    }
    out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    if (!event.args_json.empty()) {
      out += ",\"args\":" + event.args_json;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

TraceRecorder& defaultTraceRecorder() {
  static TraceRecorder recorder;
  return recorder;
}

namespace {

std::string renderArgs(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& arg : args) {
    if (!first) out += ",";
    first = false;
    // Built with += only: GCC 12 misfires -Wrestrict on the
    // `const char* + std::string&&` concatenation chain here.
    out += "\"";
    out += internal::jsonEscape(arg.key);
    out += "\":";
    if (arg.quoted) {
      out += "\"";
      out += internal::jsonEscape(arg.value);
      out += "\"";
    } else {
      out += arg.value;
    }
  }
  out += "}";
  return out;
}

}  // namespace

void traceFlow(char phase, const char* name, std::uint64_t flow_id,
               std::initializer_list<TraceArg> args) {
  if (!tracingEnabled()) return;
  TraceRecorder& recorder = defaultTraceRecorder();
  TraceEvent event;
  event.name = name;
  event.phase = phase;
  event.flow_id = flow_id;
  event.ts_us = recorder.nowMicros();
  event.args_json = renderArgs(args);
  recorder.record(std::move(event));
}

TraceSpan::TraceSpan(const char* name, std::initializer_list<TraceArg> args)
    : name_(name), active_(tracingEnabled()) {
  if (!active_) return;
  args_json_ = renderArgs(args);
  start_us_ = defaultTraceRecorder().nowMicros();
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : name_(other.name_),
      active_(other.active_),
      start_us_(other.start_us_),
      args_json_(std::move(other.args_json_)) {
  other.active_ = false;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder& recorder = defaultTraceRecorder();
  TraceEvent event;
  event.name = name_;
  event.ts_us = start_us_;
  const std::uint64_t end = recorder.nowMicros();
  event.dur_us = end > start_us_ ? end - start_us_ : 0;
  event.args_json = std::move(args_json_);
  recorder.record(std::move(event));
}

}  // namespace rap::obs
