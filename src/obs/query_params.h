// Spec-driven query-string parsing shared by every HTTP handler.
//
// PR 6 grew three hand-rolled query parsers (/tracez's strict limit,
// the localize knob overrides, the jobs listing) with three different
// failure dialects.  This is the one implementation behind all of
// them: a handler declares the parameters it accepts — name, type,
// numeric range, enum choices — and gets back either a typed bag of
// values or an invalid-argument Status with a uniform diagnostic:
//
//   unknown query parameter 'foo'
//   bad limit parameter: 'abc' is not an integer
//   limit out of range: -3 not in [0, 100000]
//   bad mode parameter: 'x' is not one of sync|async|auto
//
// Callers turn that Status into a 400 (`obs::errorResponse`), so a
// typo'd operator request is always told what was wrong instead of
// silently served a default.
//
// Lives in obs (not svc) because /tracez needs it and the CMake layer
// order is svc -> obs; `svc::parseParams` re-exports it for the
// service handlers (src/svc/params.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rap::obs {

/// One accepted query parameter.
struct ParamSpec {
  enum class Kind { kInt, kDouble, kString, kEnum };

  std::string key;
  Kind kind = Kind::kString;
  /// Inclusive numeric range for kInt/kDouble (defaults accept any
  /// finite value); ignored for strings and enums.
  double min_value = -1.7976931348623157e308;
  double max_value = 1.7976931348623157e308;
  /// Accepted tokens for kEnum, e.g. {"sync", "async", "auto"}.
  std::vector<std::string> choices;
};

/// Typed values for the parameters that were present.  Lookups take a
/// fallback so handlers read defaults in one line.
class ParsedParams {
 public:
  bool has(const std::string& key) const {
    return ints_.count(key) != 0 || doubles_.count(key) != 0 ||
           strings_.count(key) != 0;
  }
  std::int64_t intOr(const std::string& key, std::int64_t fallback) const {
    const auto it = ints_.find(key);
    return it == ints_.end() ? fallback : it->second;
  }
  double doubleOr(const std::string& key, double fallback) const {
    const auto it = doubles_.find(key);
    return it == doubles_.end() ? fallback : it->second;
  }
  const std::string& stringOr(const std::string& key,
                              const std::string& fallback) const {
    const auto it = strings_.find(key);
    return it == strings_.end() ? fallback : it->second;
  }

  std::map<std::string, std::int64_t> ints_;
  std::map<std::string, double> doubles_;
  std::map<std::string, std::string> strings_;
};

/// Strict base-10 integer parse shared by every query-parameter path
/// (parseParams' kInt kind and HttpRequest::queryIntStrict).  Accepts
/// exactly an optional '-' followed by digits: the leading whitespace
/// and '+' that strtoll silently swallows ("?limit= 5", "?limit=+5")
/// are rejected, as the docs promise strict integers.  Out-of-range
/// values (beyond int64) are rejected too.
util::Result<std::int64_t> parseQueryInt(std::string_view raw);

/// Parses a raw query string ("k=3&mode=sync") against `specs`.
/// Unknown keys, unparsable numbers, out-of-range values and unlisted
/// enum tokens are invalid-argument errors; a repeated key keeps the
/// last value (curl-override idiom).  Values are not percent-decoded —
/// admin parameters are numbers and short tokens by contract.
util::Result<ParsedParams> parseParams(std::string_view query,
                                       const std::vector<ParamSpec>& specs);

}  // namespace rap::obs
