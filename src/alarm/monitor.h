// Alarm stage of the paper's IT-operations workflow (Fig. 1): human
// operators monitor the OVERALL KPI of the CDN; when it turns anomalous
// an alarm fires and only then is anomaly localization triggered.
//
// KpiMonitor watches a single aggregate KPI stream with a robust
// residual rule: the observation is compared against the median of the
// same phase on previous periods (seasonal baseline), and flagged when
// the residual exceeds k times a running MAD-based scale estimate.
// AlarmManager wraps a monitor with debouncing — `consecutive` abnormal
// points to raise, a cooldown before re-raising — which is what keeps a
// production pager sane.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace rap::alarm {

struct MonitorConfig {
  std::int32_t season_length = 1440;  ///< samples per season (day)
  std::int32_t seasons_kept = 7;      ///< history horizon for the baseline
  double k_mad = 5.0;                 ///< alarm when |residual| > k * MAD
  /// Drops (actual below baseline) only, matching CDN failure semantics;
  /// set false to alarm on spikes too.
  bool drops_only = true;
  /// Minimum samples before the monitor can flag anything.
  std::int32_t warmup = 32;
};

/// Verdict for one observation.
struct Verdict {
  bool anomalous = false;
  double baseline = 0.0;   ///< seasonal median expectation
  double residual = 0.0;   ///< observation - baseline
  double scale = 0.0;      ///< robust residual scale (MAD * 1.4826)
};

/// Streaming seasonal-baseline detector over one aggregate KPI.
class KpiMonitor {
 public:
  explicit KpiMonitor(MonitorConfig config);

  /// Feeds one observation; returns its verdict.  O(history) per call
  /// due to the median — fine for one aggregate stream.
  Verdict observe(double value);

  std::int64_t samplesSeen() const noexcept { return samples_seen_; }

 private:
  double seasonalBaseline() const;
  double robustScale() const;

  MonitorConfig config_;
  std::deque<double> history_;    ///< last seasons_kept * season_length
  std::deque<double> residuals_;  ///< residuals of the same horizon
  std::int64_t samples_seen_ = 0;
};

enum class AlarmState { kQuiet, kRaised };

struct AlarmEvent {
  std::int64_t sample_index = 0;  ///< when it fired (observe() count - 1)
  double value = 0.0;
  double baseline = 0.0;
};

/// Debounced alarm on top of a KpiMonitor.
class AlarmManager {
 public:
  struct Config {
    std::int32_t consecutive = 3;   ///< abnormal points needed to raise
    std::int32_t cooldown = 60;     ///< samples before re-raising
  };

  AlarmManager(MonitorConfig monitor_config, Config config);

  /// Feeds one observation; returns the alarm event if one fired NOW.
  std::optional<AlarmEvent> observe(double value);

  AlarmState state() const noexcept { return state_; }
  const std::vector<AlarmEvent>& events() const noexcept { return events_; }

 private:
  KpiMonitor monitor_;
  Config config_;
  AlarmState state_ = AlarmState::kQuiet;
  std::int32_t abnormal_streak_ = 0;
  std::int64_t last_raise_ = -1;
  std::vector<AlarmEvent> events_;
};

}  // namespace rap::alarm
