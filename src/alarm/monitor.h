// Alarm stage of the paper's IT-operations workflow (Fig. 1): human
// operators monitor the OVERALL KPI of the CDN; when it turns anomalous
// an alarm fires and only then is anomaly localization triggered.
//
// KpiMonitor watches a single aggregate KPI stream with a robust
// residual rule: the observation is compared against the median of the
// same phase on previous periods (seasonal baseline), and flagged when
// the residual exceeds k times a running MAD-based scale estimate.
// AlarmManager wraps a monitor with debouncing — `consecutive` abnormal
// points to raise, a cooldown before re-raising — which is what keeps a
// production pager sane.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace rap::alarm {

struct MonitorConfig {
  std::int32_t season_length = 1440;  ///< samples per season (day)
  std::int32_t seasons_kept = 7;      ///< history horizon for the baseline
  double k_mad = 5.0;                 ///< alarm when |residual| > k * MAD
  /// Drops (actual below baseline) only, matching CDN failure semantics;
  /// set false to alarm on spikes too.
  bool drops_only = true;
  /// Minimum samples before the monitor can flag anything.
  std::int32_t warmup = 32;
};

/// Verdict for one observation.
struct Verdict {
  bool anomalous = false;
  double baseline = 0.0;   ///< seasonal median expectation
  double residual = 0.0;   ///< observation - baseline
  double scale = 0.0;      ///< robust residual scale (MAD * 1.4826)
};

/// Streaming seasonal-baseline detector over one aggregate KPI.
///
/// observe() is amortized O(log horizon): the seasonal baseline reads
/// one per-phase buffer (at most seasons_kept samples) and the MAD scale
/// comes from a running median over the |residual| population instead of
/// a fresh O(history log history) sort per call.  Verdicts are
/// bit-identical to the naive full-scan formulation (tests assert this
/// against a brute-force reference).
class KpiMonitor {
 public:
  explicit KpiMonitor(MonitorConfig config);

  /// Feeds one observation; returns its verdict.
  Verdict observe(double value);

  std::int64_t samplesSeen() const noexcept { return samples_seen_; }

 private:
  /// Exact running median: the population is split into a max-side and a
  /// min-side multiset around the median.  median() reproduces
  /// stats::median's interpolation expression bit for bit.
  class RunningMedian {
   public:
    void insert(double x);
    void erase(double x);
    std::size_t size() const noexcept { return low_.size() + high_.size(); }
    double median() const noexcept;

   private:
    void rebalance();

    std::multiset<double> low_;   ///< <= median, max at rbegin()
    std::multiset<double> high_;  ///< >= median, min at begin()
  };

  double seasonalBaseline() const;
  double robustScale() const;

  MonitorConfig config_;
  /// Per seasonal phase: the last seasons_kept observations of that
  /// phase (equivalent to scanning a season_length*seasons_kept FIFO at
  /// stride season_length — the horizon is an exact multiple of the
  /// season, so the evictions line up).
  std::vector<std::deque<double>> phases_;
  std::deque<double> recent_;     ///< cold-start fallback window
  std::deque<double> residuals_;  ///< FIFO of the horizon's residuals
  RunningMedian abs_residuals_;   ///< running |residual| population
  std::int64_t samples_seen_ = 0;
};

enum class AlarmState { kQuiet, kRaised };

struct AlarmEvent {
  std::int64_t sample_index = 0;  ///< when it fired (observe() count - 1)
  double value = 0.0;
  double baseline = 0.0;
};

/// Debounced alarm on top of a KpiMonitor.
class AlarmManager {
 public:
  struct Config {
    std::int32_t consecutive = 3;   ///< abnormal points needed to raise
    std::int32_t cooldown = 60;     ///< samples before re-raising
  };

  AlarmManager(MonitorConfig monitor_config, Config config);

  /// Feeds one observation; returns the alarm event if one fired NOW.
  std::optional<AlarmEvent> observe(double value);

  AlarmState state() const noexcept { return state_; }
  const std::vector<AlarmEvent>& events() const noexcept { return events_; }

 private:
  KpiMonitor monitor_;
  Config config_;
  AlarmState state_ = AlarmState::kQuiet;
  std::int32_t abnormal_streak_ = 0;
  std::int64_t last_raise_ = -1;
  std::vector<AlarmEvent> events_;
};

}  // namespace rap::alarm
