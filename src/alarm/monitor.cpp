#include "alarm/monitor.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "stats/descriptive.h"
#include "util/logging.h"
#include "util/status.h"

namespace rap::alarm {

namespace {

/// Alarm-path counters live behind the obs gate like everything else;
/// the registry lookup per observation is fine at monitoring cadence
/// (one aggregate KPI sample at a time, not a search inner loop).
obs::Counter& alarmCounter(const char* name) {
  return obs::defaultRegistry().counter(name);
}

}  // namespace

KpiMonitor::KpiMonitor(MonitorConfig config) : config_(config) {
  RAP_CHECK(config_.season_length >= 1);
  RAP_CHECK(config_.seasons_kept >= 1);
  RAP_CHECK(config_.k_mad > 0.0);
}

double KpiMonitor::seasonalBaseline() const {
  // Median of the observations at the same seasonal phase; when fewer
  // than two phase-aligned samples exist, fall back to the median of
  // the recent window.
  const auto m = static_cast<std::size_t>(config_.season_length);
  std::vector<double> phase_samples;
  // history_ holds the most recent samples; the *next* observation's
  // phase sits season_length behind the end, 2*season_length, ...
  for (std::size_t back = m; back <= history_.size(); back += m) {
    phase_samples.push_back(history_[history_.size() - back]);
  }
  if (phase_samples.size() >= 2) return stats::median(phase_samples);

  const std::size_t window = std::min<std::size_t>(history_.size(), 64);
  if (window == 0) return 0.0;
  std::vector<double> recent(history_.end() - static_cast<std::ptrdiff_t>(window),
                             history_.end());
  return stats::median(recent);
}

double KpiMonitor::robustScale() const {
  if (residuals_.size() < 8) return 0.0;
  std::vector<double> abs_residuals;
  abs_residuals.reserve(residuals_.size());
  for (const double r : residuals_) abs_residuals.push_back(std::fabs(r));
  // MAD scaled to sigma-equivalent under normality.
  return 1.4826 * stats::median(abs_residuals);
}

Verdict KpiMonitor::observe(double value) {
  Verdict verdict;
  verdict.baseline = seasonalBaseline();
  verdict.residual = value - verdict.baseline;
  verdict.scale = robustScale();

  const bool warm = samples_seen_ >= config_.warmup;
  if (warm && verdict.scale > 0.0) {
    const double deviation =
        config_.drops_only ? -verdict.residual : std::fabs(verdict.residual);
    verdict.anomalous = deviation > config_.k_mad * verdict.scale;
  }

  // Only normal-looking residuals feed the scale estimate, so a long
  // outage does not inflate it and mask itself.
  if (!verdict.anomalous) {
    residuals_.push_back(verdict.residual);
  }
  history_.push_back(value);
  const auto horizon = static_cast<std::size_t>(config_.season_length) *
                       static_cast<std::size_t>(config_.seasons_kept);
  while (history_.size() > horizon) history_.pop_front();
  while (residuals_.size() > horizon) residuals_.pop_front();
  samples_seen_ += 1;
  return verdict;
}

AlarmManager::AlarmManager(MonitorConfig monitor_config, Config config)
    : monitor_(monitor_config), config_(config) {
  RAP_CHECK(config_.consecutive >= 1);
  RAP_CHECK(config_.cooldown >= 0);
}

std::optional<AlarmEvent> AlarmManager::observe(double value) {
  const auto index = monitor_.samplesSeen();
  const Verdict verdict = monitor_.observe(value);
  const bool metrics = obs::metricsEnabled();
  if (metrics) alarmCounter("rap_alarm_observations_total").increment();

  if (!verdict.anomalous) {
    abnormal_streak_ = 0;
    state_ = AlarmState::kQuiet;
    if (metrics) obs::defaultRegistry().gauge("rap_alarm_state").set(0.0);
    return std::nullopt;
  }

  if (metrics) alarmCounter("rap_alarm_abnormal_points_total").increment();
  abnormal_streak_ += 1;
  if (abnormal_streak_ < config_.consecutive) {
    // Debounce: abnormal, but the streak is still short of `consecutive`.
    if (metrics) alarmCounter("rap_alarm_debounce_suppressed_total").increment();
    return std::nullopt;
  }
  if (state_ == AlarmState::kRaised) return std::nullopt;
  if (last_raise_ >= 0 && index - last_raise_ < config_.cooldown) {
    if (metrics) alarmCounter("rap_alarm_cooldown_skipped_total").increment();
    return std::nullopt;
  }

  state_ = AlarmState::kRaised;
  last_raise_ = index;
  AlarmEvent event;
  event.sample_index = index;
  event.value = value;
  event.baseline = verdict.baseline;
  events_.push_back(event);
  if (metrics) {
    alarmCounter("rap_alarm_raised_total").increment();
    obs::defaultRegistry().gauge("rap_alarm_state").set(1.0);
  }
  RAP_LOG_KV(Info, {"sample", event.sample_index}, {"value", event.value},
             {"baseline", event.baseline})
      << "alarm raised";
  return event;
}

}  // namespace rap::alarm
