#include "alarm/monitor.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "stats/descriptive.h"
#include "util/logging.h"
#include "util/status.h"

namespace rap::alarm {

namespace {

/// Alarm-path counters live behind the obs gate like everything else;
/// the registry lookup per observation is fine at monitoring cadence
/// (one aggregate KPI sample at a time, not a search inner loop).
obs::Counter& alarmCounter(const char* name) {
  return obs::defaultRegistry().counter(name);
}

}  // namespace

void KpiMonitor::RunningMedian::insert(double x) {
  if (low_.empty() || x <= *low_.rbegin()) {
    low_.insert(x);
  } else {
    high_.insert(x);
  }
  rebalance();
}

void KpiMonitor::RunningMedian::erase(double x) {
  // Every element of low_ is <= every element of high_, so x <= max(low_)
  // guarantees an instance of x lives in low_ (duplicates at the boundary
  // are interchangeable).
  if (!low_.empty() && x <= *low_.rbegin()) {
    const auto it = low_.find(x);
    RAP_CHECK_MSG(it != low_.end(), "erasing a value never inserted");
    low_.erase(it);
  } else {
    const auto it = high_.find(x);
    RAP_CHECK_MSG(it != high_.end(), "erasing a value never inserted");
    high_.erase(it);
  }
  rebalance();
}

void KpiMonitor::RunningMedian::rebalance() {
  if (low_.size() > high_.size() + 1) {
    const auto it = std::prev(low_.end());
    high_.insert(*it);
    low_.erase(it);
  } else if (high_.size() > low_.size()) {
    const auto it = high_.begin();
    low_.insert(*it);
    high_.erase(it);
  }
}

double KpiMonitor::RunningMedian::median() const noexcept {
  if (low_.empty()) return 0.0;
  // Replicates stats::median exactly: odd n returns the middle element
  // (interpolation degenerates to x*1.0 + x*0.0 == x), even n returns
  // lo*0.5 + hi*0.5 in that exact expression order.
  if (low_.size() > high_.size()) return *low_.rbegin();
  return *low_.rbegin() * (1.0 - 0.5) + *high_.begin() * 0.5;
}

KpiMonitor::KpiMonitor(MonitorConfig config) : config_(config) {
  RAP_CHECK(config_.season_length >= 1);
  RAP_CHECK(config_.seasons_kept >= 1);
  RAP_CHECK(config_.k_mad > 0.0);
  phases_.resize(static_cast<std::size_t>(config_.season_length));
}

double KpiMonitor::seasonalBaseline() const {
  // Median of the observations at the next observation's seasonal phase;
  // when fewer than two phase-aligned samples exist, fall back to the
  // median of the recent window.
  const auto& phase =
      phases_[static_cast<std::size_t>(samples_seen_ % config_.season_length)];
  if (phase.size() >= 2) {
    return stats::median({phase.begin(), phase.end()});
  }
  if (recent_.empty()) return 0.0;
  return stats::median({recent_.begin(), recent_.end()});
}

double KpiMonitor::robustScale() const {
  if (abs_residuals_.size() < 8) return 0.0;
  // MAD scaled to sigma-equivalent under normality.
  return 1.4826 * abs_residuals_.median();
}

Verdict KpiMonitor::observe(double value) {
  Verdict verdict;
  verdict.baseline = seasonalBaseline();
  verdict.residual = value - verdict.baseline;
  verdict.scale = robustScale();

  const bool warm = samples_seen_ >= config_.warmup;
  if (warm && verdict.scale > 0.0) {
    const double deviation =
        config_.drops_only ? -verdict.residual : std::fabs(verdict.residual);
    verdict.anomalous = deviation > config_.k_mad * verdict.scale;
  }

  const auto horizon = static_cast<std::size_t>(config_.season_length) *
                       static_cast<std::size_t>(config_.seasons_kept);
  // Only normal-looking residuals feed the scale estimate, so a long
  // outage does not inflate it and mask itself.
  if (!verdict.anomalous) {
    residuals_.push_back(verdict.residual);
    abs_residuals_.insert(std::fabs(verdict.residual));
    while (residuals_.size() > horizon) {
      abs_residuals_.erase(std::fabs(residuals_.front()));
      residuals_.pop_front();
    }
  }

  auto& phase =
      phases_[static_cast<std::size_t>(samples_seen_ % config_.season_length)];
  phase.push_back(value);
  while (phase.size() > static_cast<std::size_t>(config_.seasons_kept)) {
    phase.pop_front();
  }
  // The fallback window is the tail of the old full-history FIFO, so it
  // is bounded by the horizon as well as by its own width.
  recent_.push_back(value);
  while (recent_.size() > std::min<std::size_t>(64, horizon)) {
    recent_.pop_front();
  }
  samples_seen_ += 1;
  return verdict;
}

AlarmManager::AlarmManager(MonitorConfig monitor_config, Config config)
    : monitor_(monitor_config), config_(config) {
  RAP_CHECK(config_.consecutive >= 1);
  RAP_CHECK(config_.cooldown >= 0);
}

std::optional<AlarmEvent> AlarmManager::observe(double value) {
  const auto index = monitor_.samplesSeen();
  const Verdict verdict = monitor_.observe(value);
  const bool metrics = obs::metricsEnabled();
  if (metrics) alarmCounter("rap_alarm_observations_total").increment();

  if (!verdict.anomalous) {
    abnormal_streak_ = 0;
    state_ = AlarmState::kQuiet;
    if (metrics) obs::defaultRegistry().gauge("rap_alarm_state").set(0.0);
    return std::nullopt;
  }

  if (metrics) alarmCounter("rap_alarm_abnormal_points_total").increment();
  abnormal_streak_ += 1;
  if (abnormal_streak_ < config_.consecutive) {
    // Debounce: abnormal, but the streak is still short of `consecutive`.
    if (metrics) alarmCounter("rap_alarm_debounce_suppressed_total").increment();
    return std::nullopt;
  }
  if (state_ == AlarmState::kRaised) return std::nullopt;
  if (last_raise_ >= 0 && index - last_raise_ < config_.cooldown) {
    if (metrics) alarmCounter("rap_alarm_cooldown_skipped_total").increment();
    return std::nullopt;
  }

  state_ = AlarmState::kRaised;
  last_raise_ = index;
  AlarmEvent event;
  event.sample_index = index;
  event.value = value;
  event.baseline = verdict.baseline;
  events_.push_back(event);
  if (metrics) {
    alarmCounter("rap_alarm_raised_total").increment();
    obs::defaultRegistry().gauge("rap_alarm_state").set(1.0);
  }
  RAP_LOG_KV(Info, {"sample", event.sample_index}, {"value", event.value},
             {"baseline", event.baseline})
      << "alarm raised";
  return event;
}

}  // namespace rap::alarm
