// Minimal JSON document parser for the localization service's request
// bodies (src/io/json.h is writer-only by design; the service is the
// first consumer that must *read* JSON).
//
// Scope is deliberately small: a recursive-descent parser over the full
// RFC 8259 grammar with two hostile-input guards —
//   * a nesting-depth cap (kMaxDepth) so a "[[[[..." body cannot blow
//     the stack, and
//   * strict end-of-document checking so trailing garbage is an error,
// returning util::Status instead of throwing.  Numbers are held as
// double (the service's payloads are KPI values and small counts);
// \uXXXX escapes are decoded to UTF-8, including surrogate pairs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rap::svc {

/// One parsed JSON value.  A tagged struct instead of a class hierarchy:
/// the service inspects a handful of fields and moves on.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// Nesting depth beyond which parsing fails (hostile-input guard).
  static constexpr int kMaxDepth = 64;

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_value;
  /// Members in document order (duplicate keys are kept as-is; find()
  /// returns the first).
  std::vector<std::pair<std::string, JsonValue>> object_value;

  bool isNull() const noexcept { return kind == Kind::kNull; }
  bool isBool() const noexcept { return kind == Kind::kBool; }
  bool isNumber() const noexcept { return kind == Kind::kNumber; }
  bool isString() const noexcept { return kind == Kind::kString; }
  bool isArray() const noexcept { return kind == Kind::kArray; }
  bool isObject() const noexcept { return kind == Kind::kObject; }

  /// First object member named `key`, or nullptr (also for non-objects).
  const JsonValue* find(std::string_view key) const;

  /// Parses a full document; anything but exactly one JSON value
  /// surrounded by whitespace is an error with a byte offset.
  static util::Result<JsonValue> parse(std::string_view text);
};

}  // namespace rap::svc
