#include "svc/catalog.h"

#include <utility>

namespace rap::svc {

DatasetCatalog::DatasetCatalog() : DatasetCatalog(Options{}) {}

DatasetCatalog::DatasetCatalog(Options options)
    : options_(options),
      pool_(options.pool_threads == 0 ? 1 : options.pool_threads) {
  if (obs::metricsEnabled()) {
    tenants_gauge_ = &obs::defaultRegistry().gauge("rap_svc_tenants");
  }
}

DatasetCatalog::~DatasetCatalog() {
  // Tear tenants down before pool_'s own destructor runs: each
  // JobManager waits for its outstanding closures on the still-live
  // shared pool.
  std::map<std::string, std::shared_ptr<Tenant>> tenants;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tenants.swap(tenants_);
  }
  tenants.clear();
}

util::Status DatasetCatalog::put(TenantSpec spec) {
  RAP_RETURN_IF_ERROR(validateTenantName(spec.name));

  auto tenant = std::make_shared<Tenant>();
  tenant->spec = spec;

  // Wire the spec to this catalog.  The "default" tenant keeps the
  // legacy un-prefixed job URLs so pre-catalog clients see identical
  // responses; every other tenant lives under its resource path.
  spec.service.tenant = spec.name;
  spec.service.jobs_path_prefix =
      spec.name == "default" ? "/api/v1/jobs/"
                             : "/api/v1/tenants/" + spec.name + "/jobs/";
  spec.service.jobs.metric_labels = {{"tenant", spec.name}};
  spec.service.jobs.shared_pool = &pool_;
  spec.service.journal = options_.journal;
  tenant->service = std::make_unique<LocalizeService>(
      spec.schema, spec.miner, std::move(spec.service));

  if (spec.streaming) {
    // parseTenantSpec already mirrored the miner knobs into
    // spec.stream.miner; the catalog only stamps the metric identity.
    spec.stream.metric_tenant = spec.name;
    auto engine = std::make_shared<stream::StreamEngine>(
        std::move(spec.schema), std::move(spec.stream));
    engine->start();
    tenant->replaceEngine(std::move(engine));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] =
        tenants_.emplace(tenant->spec.name, std::move(tenant));
    if (!inserted) {
      // The freshly built tenant (and its started engine) dies here —
      // it never served a request, so teardown is immediate.
      return util::Status::failedPrecondition("tenant '" + it->first +
                                              "' already exists");
    }
    if (tenants_gauge_ != nullptr) {
      tenants_gauge_->set(static_cast<double>(tenants_.size()));
    }
  }
  return util::Status::ok();
}

util::Result<std::shared_ptr<DatasetCatalog::Tenant>> DatasetCatalog::remove(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return util::Status::notFound("no such tenant '" + name + "'");
  }
  std::shared_ptr<Tenant> tenant = std::move(it->second);
  tenants_.erase(it);
  if (tenants_gauge_ != nullptr) {
    tenants_gauge_->set(static_cast<double>(tenants_.size()));
  }
  return tenant;
}

std::shared_ptr<DatasetCatalog::Tenant> DatasetCatalog::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::string> DatasetCatalog::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::vector<std::shared_ptr<DatasetCatalog::Tenant>> DatasetCatalog::list()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Tenant>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(tenant);
  return out;
}

std::size_t DatasetCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

}  // namespace rap::svc
