// EngineSupervisor (src/svc) — the restart loop that keeps streaming
// tenants alive without restarting the process.
//
// A tenant's StreamEngine can die without the serving plane dying with
// it: a poison batch, an injected fault, an operator stop().  The
// batch/localize surface of that tenant (and every other tenant) keeps
// working — only ingest is down.  The supervisor turns that partial
// outage into a self-healing one: a polling thread watches every
// streaming tenant and, when it finds a non-running engine, builds a
// replacement and swaps it in via Tenant::replaceEngine().
//
// Restart policy:
//   * The replacement restores from the tenant's RAPCHKPT-1 checkpoint
//     (spec streaming.checkpoint_path) when the file exists — buffered
//     fragments and sealed-epoch history survive the crash — and starts
//     fresh otherwise.
//   * Attempts back off exponentially (backoff_initial_seconds doubling
//     up to backoff_max_seconds) so a hard-broken engine does not spin
//     the supervisor.
//   * After `max_restarts` consecutive failed attempts the tenant is
//     QUARANTINED (Tenant::setQuarantined): the router answers 503
//     tenant_unavailable on its sub-resources until an operator
//     deletes and re-puts it.  A restart that produces an engine still
//     running at the next sweep resets the failure budget.
//   * Healthy engines with a positive streaming.checkpoint_interval_
//     seconds are checkpointed periodically, bounding how much window
//     state the next crash can lose.
//
// The poll thread calls sweep() on its interval; tests call sweep()
// directly and never start the thread, so every transition is
// deterministic under a fake crash (engine->stop()).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "svc/catalog.h"

namespace rap::svc {

class EngineSupervisor {
 public:
  struct Options {
    double poll_interval_seconds = 0.5;
    /// First-retry delay after a failed restart; doubles per consecutive
    /// failure up to backoff_max_seconds.
    double backoff_initial_seconds = 0.5;
    double backoff_max_seconds = 30.0;
    /// Consecutive failed restart attempts before quarantine.
    std::size_t max_restarts = 5;
  };

  /// Monotonic counters (all tenants).
  struct SupervisorStats {
    std::uint64_t restarts = 0;     ///< successful engine swaps
    std::uint64_t restores = 0;     ///< ...of which seeded from a checkpoint
    std::uint64_t failures = 0;     ///< failed restart attempts
    std::uint64_t quarantines = 0;  ///< tenants given up on
    std::uint64_t checkpoints = 0;  ///< periodic checkpoints written
  };

  explicit EngineSupervisor(DatasetCatalog& catalog)
      : EngineSupervisor(catalog, Options{}) {}
  EngineSupervisor(DatasetCatalog& catalog, Options options);

  EngineSupervisor(const EngineSupervisor&) = delete;
  EngineSupervisor& operator=(const EngineSupervisor&) = delete;

  /// stop()s (joins the poll thread); never touches engines on the way
  /// down — shutdown ordering belongs to the catalog.
  ~EngineSupervisor();

  void start();
  void stop();
  bool running() const;

  /// One supervision pass over every tenant.  The poll thread's body;
  /// tests drive it directly for deterministic transitions.
  void sweep() { sweepAt(std::chrono::steady_clock::now()); }
  void sweepAt(std::chrono::steady_clock::time_point now);

  SupervisorStats stats() const;

 private:
  struct TenantState {
    std::size_t failed_restarts = 0;
    /// Set by a successful swap; the next sweep that finds the engine
    /// running clears failed_restarts (the restart "took").
    bool awaiting_health = false;
    std::chrono::steady_clock::time_point next_attempt;
    std::chrono::steady_clock::time_point last_checkpoint;
  };

  /// Requires mutex_; engine construction happens under it — restarts
  /// are rare and the only contenders are stats() and the poll thread.
  void superviseLocked(DatasetCatalog::Tenant& tenant, TenantState& state,
                       std::chrono::steady_clock::time_point now);
  void loop();

  DatasetCatalog& catalog_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  bool running_ = false;
  std::map<std::string, TenantState> states_;
  SupervisorStats stats_;
  std::thread thread_;
};

}  // namespace rap::svc
