#include "svc/tenant_config.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "io/dataset_io.h"
#include "util/strings.h"

namespace rap::svc {

namespace {

util::Status badField(const std::string& field, const std::string& why) {
  return util::Status::invalidArgument("tenant spec field '" + field + "': " +
                                       why);
}

/// Finite-number member or error; integers additionally round-trip.
util::Result<double> numberField(const JsonValue& value,
                                 const std::string& field) {
  if (!value.isNumber() || !std::isfinite(value.number_value)) {
    return badField(field, "expected a finite number");
  }
  return value.number_value;
}

util::Result<std::int64_t> intField(const JsonValue& value,
                                    const std::string& field,
                                    std::int64_t min_value,
                                    std::int64_t max_value) {
  const auto number = numberField(value, field);
  RAP_RETURN_IF_ERROR(number.status());
  const double d = number.value();
  if (d != std::floor(d) || d < static_cast<double>(min_value) ||
      d > static_cast<double>(max_value)) {
    return badField(field, util::strFormat("expected an integer in [%lld, %lld]",
                                           static_cast<long long>(min_value),
                                           static_cast<long long>(max_value)));
  }
  return static_cast<std::int64_t>(d);
}

util::Result<dataset::Schema> parseSchemaField(const JsonValue& value,
                                               const std::string& base_dir) {
  if (!value.isObject()) {
    return badField("schema", "expected an object");
  }
  if (const JsonValue* builtin = value.find("builtin")) {
    if (!builtin->isString()) return badField("schema.builtin", "expected a string");
    if (builtin->string_value == "tiny") return dataset::Schema::tiny();
    if (builtin->string_value == "cdn") return dataset::Schema::cdn();
    return badField("schema.builtin",
                    "'" + builtin->string_value + "' is not one of tiny|cdn");
  }
  if (const JsonValue* path = value.find("path")) {
    if (!path->isString()) return badField("schema.path", "expected a string");
    std::string resolved = path->string_value;
    if (!base_dir.empty() && !resolved.empty() && resolved.front() != '/') {
      resolved = base_dir + "/" + resolved;
    }
    return io::loadSchema(resolved);
  }
  if (const JsonValue* attrs = value.find("attributes")) {
    if (!attrs->isArray() || attrs->array_value.empty()) {
      return badField("schema.attributes", "expected a non-empty array");
    }
    std::vector<dataset::Attribute> attributes;
    attributes.reserve(attrs->array_value.size());
    for (const JsonValue& attr : attrs->array_value) {
      const JsonValue* name = attr.find("name");
      const JsonValue* elements = attr.find("elements");
      if (name == nullptr || !name->isString() || elements == nullptr ||
          !elements->isArray() || elements->array_value.empty()) {
        return badField("schema.attributes",
                        "each entry needs \"name\" and a non-empty "
                        "\"elements\" array");
      }
      std::vector<std::string> names;
      names.reserve(elements->array_value.size());
      for (const JsonValue& element : elements->array_value) {
        if (!element.isString()) {
          return badField("schema.attributes", "elements must be strings");
        }
        names.push_back(element.string_value);
      }
      attributes.emplace_back(name->string_value, std::move(names));
    }
    return dataset::Schema(std::move(attributes));
  }
  return badField("schema",
                  "expected one of \"builtin\", \"path\", \"attributes\"");
}

util::Status parseOverloadField(const JsonValue& value, TenantSpec& spec) {
  if (!value.isObject()) return badField("overload", "expected an object");
  for (const auto& [key, field] : value.object_value) {
    const std::string path = "overload." + key;
    if (key == "target_delay_seconds") {
      const auto v = numberField(field, path);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(path, "must be >= 0");
      spec.service.jobs.overload.target_delay_seconds = v.value();
    } else if (key == "interval_seconds") {
      const auto v = numberField(field, path);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() <= 0.0) return badField(path, "must be > 0");
      spec.service.jobs.overload.interval_seconds = v.value();
    } else {
      return badField(path, "unknown field");
    }
  }
  return util::Status::ok();
}

util::Status parseBreakerField(const JsonValue& value, TenantSpec& spec) {
  if (!value.isObject()) return badField("breaker", "expected an object");
  for (const auto& [key, field] : value.object_value) {
    const std::string path = "breaker." + key;
    if (key == "failure_threshold") {
      const auto v = intField(field, path, 0, 1 << 20);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.breaker.failure_threshold =
          static_cast<std::size_t>(v.value());
    } else if (key == "open_seconds") {
      const auto v = numberField(field, path);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() <= 0.0) return badField(path, "must be > 0");
      spec.service.breaker.open_seconds = v.value();
    } else if (key == "half_open_probes") {
      const auto v = intField(field, path, 1, 1 << 20);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.breaker.half_open_probes =
          static_cast<std::size_t>(v.value());
    } else {
      return badField(path, "unknown field");
    }
  }
  return util::Status::ok();
}

util::Status parseStreamingField(const JsonValue& value,
                                 TenantSpec& spec) {
  if (!value.isObject()) return badField("streaming", "expected an object");
  spec.streaming = true;
  // Streaming tenants default to localizing every non-empty window —
  // the ingest API's natural contract — unless the spec asks for the
  // alarm-gated paper workflow.
  spec.stream.trigger = stream::TriggerPolicy::kEveryWindow;
  for (const auto& [key, field] : value.object_value) {
    const std::string path = "streaming." + key;
    if (key == "shards") {
      const auto v = intField(field, path, 1, 1024);
      RAP_RETURN_IF_ERROR(v.status());
      spec.stream.shards = static_cast<std::int32_t>(v.value());
    } else if (key == "queue_capacity") {
      const auto v = intField(field, path, 1, 1 << 28);
      RAP_RETURN_IF_ERROR(v.status());
      spec.stream.queue_capacity = static_cast<std::size_t>(v.value());
    } else if (key == "window_width") {
      const auto v = intField(field, path, 1, INT64_MAX / 4);
      RAP_RETURN_IF_ERROR(v.status());
      spec.stream.window_width = v.value();
    } else if (key == "allowed_lateness") {
      const auto v = intField(field, path, 0, INT64_MAX / 4);
      RAP_RETURN_IF_ERROR(v.status());
      spec.stream.allowed_lateness = v.value();
    } else if (key == "trigger") {
      if (!field.isString()) return badField(path, "expected a string");
      if (field.string_value == "on-alarm") {
        spec.stream.trigger = stream::TriggerPolicy::kOnAlarm;
      } else if (field.string_value == "anomalous-window") {
        spec.stream.trigger = stream::TriggerPolicy::kAnomalousWindow;
      } else if (field.string_value == "every-window") {
        spec.stream.trigger = stream::TriggerPolicy::kEveryWindow;
      } else {
        return badField(path,
                        "'" + field.string_value +
                            "' is not one of on-alarm|anomalous-window|"
                            "every-window");
      }
    } else if (key == "top_k") {
      const auto v = intField(field, path, 1, 1 << 20);
      RAP_RETURN_IF_ERROR(v.status());
      spec.stream.top_k = static_cast<std::int32_t>(v.value());
    } else if (key == "localize_threads") {
      const auto v = intField(field, path, 1, 1024);
      RAP_RETURN_IF_ERROR(v.status());
      spec.stream.localize_threads = static_cast<std::size_t>(v.value());
    } else if (key == "detect_threshold") {
      const auto v = numberField(field, path);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(path, "must be >= 0");
      spec.stream.detect_threshold = v.value();
    } else if (key == "localize_deadline_seconds") {
      const auto v = numberField(field, path);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(path, "must be >= 0");
      spec.stream.localize_deadline_seconds = v.value();
    } else if (key == "lag_sample_interval_seconds") {
      const auto v = numberField(field, path);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(path, "must be >= 0");
      spec.stream.lag_sample_interval_seconds = v.value();
    } else if (key == "checkpoint_path") {
      if (!field.isString()) return badField(path, "expected a string");
      spec.checkpoint_path = field.string_value;
    } else if (key == "checkpoint_interval_seconds") {
      const auto v = numberField(field, path);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(path, "must be >= 0");
      spec.checkpoint_interval_seconds = v.value();
    } else {
      return badField(path, "unknown field");
    }
  }
  return util::Status::ok();
}

}  // namespace

util::Status validateTenantName(const std::string& name) {
  if (name.empty() || name.size() > 64) {
    return util::Status::invalidArgument(
        "tenant name must be 1-64 characters");
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      return util::Status::invalidArgument(
          "tenant name '" + name +
          "' may only contain letters, digits, '_' and '-'");
    }
  }
  return util::Status::ok();
}

util::Result<TenantSpec> parseTenantSpec(const JsonValue& doc,
                                         std::string name,
                                         const std::string& base_dir) {
  RAP_RETURN_IF_ERROR(validateTenantName(name));
  if (!doc.isObject()) {
    return util::Status::invalidArgument("tenant spec must be a JSON object");
  }

  TenantSpec spec;
  spec.name = std::move(name);
  bool have_schema = false;

  for (const auto& [key, field] : doc.object_value) {
    if (key == "name") {
      // Allowed (the sidecar carries it); the URL/entry name wins and a
      // mismatch is an error so a copy-paste slip never renames a tenant.
      if (!field.isString() || field.string_value != spec.name) {
        return badField("name", "does not match tenant name '" + spec.name +
                                    "'");
      }
    } else if (key == "schema") {
      auto schema = parseSchemaField(field, base_dir);
      RAP_RETURN_IF_ERROR(schema.status());
      spec.schema = std::move(schema.value());
      have_schema = true;
    } else if (key == "k") {
      const auto v = intField(field, key, 1, 1 << 20);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.default_k = static_cast<std::int32_t>(v.value());
    } else if (key == "t_cp") {
      const auto v = numberField(field, key);
      RAP_RETURN_IF_ERROR(v.status());
      spec.miner.cp.t_cp = v.value();
    } else if (key == "t_conf") {
      const auto v = numberField(field, key);
      RAP_RETURN_IF_ERROR(v.status());
      spec.miner.search.t_conf = v.value();
    } else if (key == "deadline") {
      const auto v = numberField(field, key);
      RAP_RETURN_IF_ERROR(v.status());
      spec.miner.search.deadline_seconds = v.value();
    } else if (key == "detect_threshold") {
      const auto v = numberField(field, key);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(key, "must be >= 0");
      spec.service.default_detect_threshold = v.value();
    } else if (key == "sync_row_limit") {
      const auto v = intField(field, key, 0, 1 << 30);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.sync_row_limit = static_cast<std::size_t>(v.value());
    } else if (key == "queue_capacity") {
      const auto v = intField(field, key, 0, 1 << 24);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.jobs.queue_capacity = static_cast<std::size_t>(v.value());
    } else if (key == "workers") {
      const auto v = intField(field, key, 1, 1024);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.jobs.workers = static_cast<std::size_t>(v.value());
    } else if (key == "max_active") {
      const auto v = intField(field, key, 0, 1024);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.jobs.max_active = static_cast<std::size_t>(v.value());
    } else if (key == "retry_after_seconds") {
      const auto v = numberField(field, key);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(key, "must be >= 0");
      spec.service.jobs.retry_after_seconds = v.value();
    } else if (key == "max_finished_jobs") {
      const auto v = intField(field, key, 1, 1 << 24);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.jobs.max_finished_jobs =
          static_cast<std::size_t>(v.value());
    } else if (key == "cache_capacity") {
      const auto v = intField(field, key, 0, 1 << 24);
      RAP_RETURN_IF_ERROR(v.status());
      spec.service.cache.capacity = static_cast<std::size_t>(v.value());
    } else if (key == "cache_ttl_seconds") {
      const auto v = numberField(field, key);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(key, "must be >= 0");
      spec.service.cache.ttl_seconds = v.value();
    } else if (key == "max_deadline_seconds") {
      const auto v = numberField(field, key);
      RAP_RETURN_IF_ERROR(v.status());
      if (v.value() < 0.0) return badField(key, "must be >= 0");
      spec.service.max_deadline_seconds = v.value();
    } else if (key == "overload") {
      RAP_RETURN_IF_ERROR(parseOverloadField(field, spec));
    } else if (key == "breaker") {
      RAP_RETURN_IF_ERROR(parseBreakerField(field, spec));
    } else if (key == "streaming") {
      RAP_RETURN_IF_ERROR(parseStreamingField(field, spec));
    } else {
      return badField(key, "unknown field");
    }
  }

  if (!have_schema) {
    return util::Status::invalidArgument(
        "tenant spec is missing the \"schema\" field");
  }
  // One validation gate for the miner config, same as the localize
  // handler's override path.
  RAP_RETURN_IF_ERROR(
      core::RapMiner::Builder().config(spec.miner).validate());
  if (spec.streaming) {
    spec.stream.miner = spec.miner;
    spec.stream.detect_threshold =
        spec.stream.detect_threshold == 0.095
            ? spec.service.default_detect_threshold
            : spec.stream.detect_threshold;
    spec.stream.top_k = spec.stream.top_k == 5 ? spec.service.default_k
                                               : spec.stream.top_k;
  }
  return spec;
}

util::Result<std::vector<TenantSpec>> loadTenantSidecar(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::notFound("cannot open tenant sidecar '" + path +
                                  "'");
  }
  std::ostringstream text;
  text << in.rdbuf();

  auto doc = JsonValue::parse(text.str());
  if (!doc.isOk()) {
    return util::Status::invalidArgument("tenant sidecar '" + path +
                                         "': " + doc.status().message());
  }
  const JsonValue* tenants = doc->find("tenants");
  if (!doc->isObject() || tenants == nullptr || !tenants->isArray()) {
    return util::Status::invalidArgument(
        "tenant sidecar '" + path +
        "' must be {\"tenants\": [{...}, ...]}");
  }

  // Relative schema paths resolve next to the sidecar file.
  std::string base_dir;
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) base_dir = path.substr(0, slash);

  std::vector<TenantSpec> specs;
  specs.reserve(tenants->array_value.size());
  for (const JsonValue& entry : tenants->array_value) {
    const JsonValue* name = entry.isObject() ? entry.find("name") : nullptr;
    if (name == nullptr || !name->isString()) {
      return util::Status::invalidArgument(
          "tenant sidecar '" + path +
          "': every tenant entry needs a string \"name\"");
    }
    auto spec = parseTenantSpec(entry, name->string_value, base_dir);
    if (!spec.isOk()) {
      return util::Status::invalidArgument("tenant '" + name->string_value +
                                           "': " + spec.status().message());
    }
    for (const TenantSpec& seen : specs) {
      if (seen.name == spec->name) {
        return util::Status::invalidArgument("tenant sidecar '" + path +
                                             "': duplicate tenant '" +
                                             spec->name + "'");
      }
    }
    specs.push_back(std::move(spec.value()));
  }
  return specs;
}

}  // namespace rap::svc
