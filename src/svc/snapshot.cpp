#include "svc/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "io/csv.h"
#include "io/dataset_io.h"
#include "svc/json_value.h"
#include "util/strings.h"

namespace rap::svc {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Renders a JSON number the way the CSV reader expects a KPI field, with
/// enough digits to round-trip a double exactly.
std::string numberToField(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

}  // namespace

util::Result<dataset::LeafTable> parseCsvSnapshot(
    const dataset::Schema& schema, const std::string& body) {
  auto rows = io::parseCsv(body);
  if (!rows.isOk()) return rows.status();
  return io::leafTableFromCsvRows(schema, rows.value(), "request body");
}

util::Result<dataset::LeafTable> parseJsonSnapshot(
    const dataset::Schema& schema, const std::string& body) {
  auto doc = JsonValue::parse(body);
  if (!doc.isOk()) return doc.status();
  const JsonValue* rows = doc.value().find("rows");
  if (rows == nullptr || !rows->isArray()) {
    return util::Status::invalidArgument(
        "request body: JSON snapshot must be an object with a \"rows\" "
        "array");
  }

  // Re-shape into the CSV row layout and funnel through the shared
  // validator so JSON and CSV bodies hit identical schema/finite checks.
  const auto attr_count = static_cast<std::size_t>(schema.attributeCount());
  std::vector<io::CsvRow> csv_rows;
  csv_rows.reserve(rows->array_value.size() + 1);
  io::CsvRow header;
  header.reserve(attr_count + 3);
  for (std::size_t a = 0; a < attr_count; ++a) {
    header.push_back(schema.attribute(static_cast<dataset::AttrId>(a)).name());
  }
  header.push_back("real");
  header.push_back("predict");
  header.push_back("label");
  csv_rows.push_back(std::move(header));

  for (std::size_t i = 0; i < rows->array_value.size(); ++i) {
    const JsonValue& row = rows->array_value[i];
    if (!row.isArray()) {
      return util::Status::invalidArgument(util::strFormat(
          "request body: rows[%zu] is not an array", i));
    }
    const std::size_t n = row.array_value.size();
    if (n != attr_count + 2 && n != attr_count + 3) {
      return util::Status::invalidArgument(util::strFormat(
          "request body: rows[%zu] has %zu fields, expected %zu or %zu", i,
          n, attr_count + 2, attr_count + 3));
    }
    io::CsvRow out;
    out.reserve(attr_count + 3);
    for (std::size_t c = 0; c < n; ++c) {
      const JsonValue& cell = row.array_value[c];
      if (c < attr_count) {
        if (!cell.isString()) {
          return util::Status::invalidArgument(util::strFormat(
              "request body: rows[%zu][%zu] must be an element-name string",
              i, c));
        }
        out.push_back(cell.string_value);
      } else if (cell.isNumber()) {
        out.push_back(numberToField(cell.number_value));
      } else if (cell.isString()) {
        // Numeric strings are accepted so a proxy can forward CSV fields
        // without re-typing them; the CSV validator rejects non-numeric
        // content downstream.
        out.push_back(cell.string_value);
      } else {
        return util::Status::invalidArgument(util::strFormat(
            "request body: rows[%zu][%zu] must be a number", i, c));
      }
    }
    if (n == attr_count + 2) out.push_back("0");
    csv_rows.push_back(std::move(out));
  }
  return io::leafTableFromCsvRows(schema, csv_rows, "request body");
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t contentHash(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  // One multiply per 8 bytes instead of per byte; the request bodies
  // this keys are megabytes, and the byte-wise chain would dominate the
  // cache-hit fast path the throughput floor depends on.
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    h = (h ^ word) * kFnvPrime;
    p += sizeof(word);
    n -= sizeof(word);
  }
  for (; n > 0; --n, ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * kFnvPrime;
  }
  return hashMix(h, static_cast<std::uint64_t>(bytes.size()));
}

std::uint64_t hashMix(std::uint64_t h, std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t snapshotHash(const dataset::LeafTable& table) noexcept {
  std::uint64_t h = kFnvOffset;
  h = hashMix(h, static_cast<std::uint64_t>(table.schema().attributeCount()));
  for (const dataset::LeafRow& row : table.rows()) {
    for (const dataset::ElemId slot : row.ac.slots()) {
      h = hashMix(h, static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(slot)));
    }
    h = hashMix(h, std::bit_cast<std::uint64_t>(row.v));
    h = hashMix(h, std::bit_cast<std::uint64_t>(row.f));
    h = hashMix(h, row.anomalous ? 1u : 0u);
  }
  return h;
}

}  // namespace rap::svc
