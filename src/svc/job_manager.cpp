#include "svc/job_manager.h"

#include <algorithm>
#include <utility>

#include "detect/detector.h"
#include "fault/fault.h"
#include "io/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/breaker.h"

namespace rap::svc {

namespace {

double secondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* jobStateName(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

obs::Labels JobManager::labelsWith(const char* key, const char* value) const {
  obs::Labels labels = options_.metric_labels;
  if (key != nullptr) labels.emplace_back(key, value);
  return labels;
}

JobManager::JobManager(Options options, ResultCache* cache)
    : options_(std::move(options)),
      cache_(cache),
      overload_(options_.overload) {
  if (options_.workers == 0) options_.workers = 1;
  if (obs::metricsEnabled()) {
    auto& reg = obs::defaultRegistry();
    const obs::Labels base = labelsWith(nullptr, nullptr);
    jobs_submitted_ = &reg.counter("rap_svc_jobs_submitted_total", base);
    jobs_done_ =
        &reg.counter("rap_svc_jobs_total", labelsWith("state", "done"));
    jobs_failed_ =
        &reg.counter("rap_svc_jobs_total", labelsWith("state", "failed"));
    admission_rejected_ =
        &reg.counter("rap_svc_admission_rejected_total", base);
    cache_hits_ = &reg.counter("rap_svc_cache_hits_total", base);
    cache_misses_ = &reg.counter("rap_svc_cache_misses_total", base);
    queue_depth_ = &reg.gauge("rap_svc_queue_depth", base);
    jobs_running_ = &reg.gauge("rap_svc_jobs_running", base);
    job_seconds_ = &reg.histogram(
        "rap_svc_job_seconds", obs::exponentialBuckets(0.001, 2.0, 16), base);
    queue_delay_ = &reg.histogram("rap_svc_queue_delay_seconds",
                                  obs::exponentialBuckets(0.001, 2.0, 16),
                                  base);
  }
  if (options_.shared_pool == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(options_.workers);
  }
}

JobManager::~JobManager() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // Owned pool: workers run every queued drainOne closure (each bounces
  // off stopping_) and join.
  pool_.reset();
  // Shared pool: the closures this manager dispatched still reference
  // `this` — wait until the last one has left the pool before the
  // members they touch are destroyed.
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return tasks_outstanding_ == 0 && active_ == 0; });
}

void JobManager::dispatchLocked(std::size_t n) {
  util::ThreadPool* pool =
      options_.shared_pool != nullptr ? options_.shared_pool : pool_.get();
  for (std::size_t i = 0; i < n; ++i) {
    ++tasks_outstanding_;
    pool->submit([this] { drainOne(); });
  }
}

util::Result<std::uint64_t> JobManager::submit(JobRequest request) {
  {
    const util::Status injected = RAP_FAULT_STATUS("svc.submit");
    if (!injected.isOk()) {
      if (admission_rejected_ != nullptr) admission_rejected_->increment();
      return injected;
    }
  }
  return admit(std::move(request), /*privileged=*/false);
}

util::Result<std::uint64_t> JobManager::resubmit(JobRequest request) {
  return admit(std::move(request), /*privileged=*/true);
}

util::Result<std::uint64_t> JobManager::admit(JobRequest request,
                                              bool privileged) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return util::Status::failedPrecondition("job manager is shut down");
    }
    if (!privileged) {
      if (pending_.size() >= options_.queue_capacity) {
        if (admission_rejected_ != nullptr) admission_rejected_->increment();
        return util::Status::outOfRange("job queue full");
      }
      // CoDel-style delay shedding: the queue may have free slots, but
      // if the NEXT job to run has already waited past target for a
      // full interval, admitting more work only deepens the lie.
      if (overload_.enabled()) {
        const auto now = std::chrono::steady_clock::now();
        const double head_delay =
            pending_.empty()
                ? 0.0
                : secondsBetween(pending_.begin()->second->admitted, now);
        if (overload_.shouldShedAt(head_delay, now)) {
          if (admission_rejected_ != nullptr) {
            admission_rejected_->increment();
          }
          return util::Status::unavailable(
              "queue delay above target (overloaded)");
        }
      }
    }
    id = next_id_++;
    auto job = std::make_shared<Job>(id, std::move(request));
    job->admitted = std::chrono::steady_clock::now();
    pending_.emplace(
        std::make_pair(-static_cast<std::int64_t>(job->request.priority),
                       next_seq_++),
        job);
    jobs_.emplace(id, std::move(job));
    if (jobs_submitted_ != nullptr) jobs_submitted_->increment();
    if (queue_depth_ != nullptr) {
      queue_depth_->set(static_cast<double>(pending_.size()));
    }
    dispatchLocked(1);
  }
  obs::traceFlow('s', "svc/job", id);
  return id;
}

util::Result<std::string> JobManager::executeInline(JobRequest request) {
  const auto start = std::chrono::steady_clock::now();
  ExecOutcome outcome = execute(request, 0);
  if (job_seconds_ != nullptr) {
    job_seconds_->observe(
        secondsBetween(start, std::chrono::steady_clock::now()));
  }
  if (jobs_done_ != nullptr && outcome.ok) jobs_done_->increment();
  if (jobs_failed_ != nullptr && !outcome.ok) jobs_failed_->increment();
  if (!outcome.ok) return util::Status::internal(outcome.error);
  return std::move(outcome.result_json);
}

void JobManager::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void JobManager::resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  if (stopping_) return;
  // Re-dispatch one closure per pending job (bounded by the quota);
  // the paused-era dispatches already bounced and are gone.
  std::size_t n = pending_.size();
  if (options_.max_active != 0) {
    n = std::min(n, options_.max_active > active_
                        ? options_.max_active - active_
                        : std::size_t{0});
  }
  dispatchLocked(n);
}

bool JobManager::paused() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return paused_;
}

std::optional<JobStatus> JobManager::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshotLocked(*it->second);
}

std::vector<JobStatus> JobManager::list() const {
  std::vector<JobStatus> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) out.push_back(snapshotLocked(*job));
  }
  std::sort(out.begin(), out.end(),
            [](const JobStatus& a, const JobStatus& b) { return a.id > b.id; });
  return out;
}

std::size_t JobManager::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void JobManager::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return pending_.empty() && active_ == 0; });
}

void JobManager::drainOne() {
  // Non-blocking by design: on a shared pool a parked closure would pin
  // a worker every other tenant needs.  Not runnable right now (paused,
  // quota-saturated, stopping, nothing pending) -> bounce; resume() and
  // finishJob() re-dispatch when the state changes.
  std::shared_ptr<Job> job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool runnable =
        !stopping_ && !paused_ && !pending_.empty() &&
        (options_.max_active == 0 || active_ < options_.max_active);
    if (!runnable) {
      --tasks_outstanding_;
      idle_.notify_all();
      return;
    }
    job = pending_.begin()->second;
    pending_.erase(pending_.begin());
    job->state = JobState::kRunning;
    job->started = std::chrono::steady_clock::now();
    ++active_;
    if (queue_delay_ != nullptr) {
      queue_delay_->observe(secondsBetween(job->admitted, job->started));
    }
    if (queue_depth_ != nullptr) {
      queue_depth_->set(static_cast<double>(pending_.size()));
    }
    if (jobs_running_ != nullptr) {
      jobs_running_->set(static_cast<double>(active_));
    }
  }
  ExecOutcome outcome = execute(job->request, job->id);
  finishJob(std::move(job), std::move(outcome));
  std::lock_guard<std::mutex> lock(mutex_);
  --tasks_outstanding_;
  idle_.notify_all();
}

void JobManager::finishJob(std::shared_ptr<Job> job, ExecOutcome outcome) {
  const std::uint64_t id = job->id;
  // The journal hook runs BEFORE the job turns terminal (and before any
  // manager lock — it takes its own mutex and fsyncs): the completion
  // marker must be durable by the time drain()/status() can observe the
  // terminal state, and a crash in between merely replays a finished
  // job into a cache hit.
  if (options_.on_terminal) {
    options_.on_terminal(id, job->request.journal_record, outcome.ok);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->state = outcome.ok ? JobState::kDone : JobState::kFailed;
    job->cache_hit = outcome.cache_hit;
    job->result_json = std::move(outcome.result_json);
    job->error = std::move(outcome.error);
    job->finished = std::chrono::steady_clock::now();
    --active_;
    if (jobs_running_ != nullptr) {
      jobs_running_->set(static_cast<double>(active_));
    }
    if (job_seconds_ != nullptr) {
      job_seconds_->observe(secondsBetween(job->admitted, job->finished));
    }
    if (jobs_done_ != nullptr && outcome.ok) jobs_done_->increment();
    if (jobs_failed_ != nullptr && !outcome.ok) jobs_failed_->increment();
    finished_order_.push_back(id);
    while (finished_order_.size() > options_.max_finished_jobs) {
      jobs_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
    // A quota-bounced closure may have been the only one watching the
    // queue — hand the freed slot to the next pending job.
    if (!stopping_ && !paused_ && !pending_.empty() &&
        (options_.max_active == 0 || active_ < options_.max_active)) {
      dispatchLocked(1);
    }
  }
  obs::traceFlow('f', "svc/job", id);
  idle_.notify_all();
}

JobManager::ExecOutcome JobManager::execute(const JobRequest& request,
                                            std::uint64_t id) {
  ExecOutcome outcome = executeImpl(request, id);
  if (options_.breaker != nullptr) {
    // Every execute outcome — sync or queued, cache hit or full search —
    // feeds the tenant's failure budget.
    if (outcome.ok) {
      options_.breaker->recordSuccess();
    } else {
      options_.breaker->recordFailure();
    }
  }
  return outcome;
}

JobManager::ExecOutcome JobManager::executeImpl(const JobRequest& request,
                                                std::uint64_t id) {
  RAP_TRACE_SPAN("svc/execute", {{"job", id}, {"rows", request.table.size()}});
  if (id != 0) obs::traceFlow('t', "svc/job", id);
  ExecOutcome outcome;

  try {
    const util::Status injected = RAP_FAULT_STATUS("svc.execute");
    if (!injected.isOk()) {
      outcome.error = injected.message();
      return outcome;
    }
  } catch (const fault::InjectedFault& fault) {
    // Pool tasks must not throw; a kThrow fault becomes a failed job.
    outcome.error = fault.what();
    return outcome;
  }

  if (cache_ != nullptr && request.cache_key != 0) {
    if (auto hit = cache_->get(request.cache_key)) {
      if (cache_hits_ != nullptr) cache_hits_->increment();
      outcome.ok = true;
      outcome.cache_hit = true;
      outcome.result_json = std::move(*hit);
      return outcome;
    }
    if (cache_misses_ != nullptr) cache_misses_->increment();
  }

  auto miner =
      core::RapMiner::Builder().config(request.miner).build();
  if (!miner.isOk()) {
    outcome.error = miner.status().toString();
    return outcome;
  }

  // A raw real/predict upload carries no verdicts; run the default
  // leaf-level detector so the pipeline is end-to-end, like csv_localize.
  dataset::LeafTable table = request.table;
  if (table.anomalousCount() == 0) {
    detect::RelativeDeviationDetector(request.detect_threshold).run(table);
  }

  const core::LocalizationResult result = miner.value().localize(
      table, request.k, miner.value().searchPool(), &localize_workspaces_);
  outcome.ok = true;
  outcome.result_json = io::resultToJson(table.schema(), result);
  if (cache_ != nullptr && request.cache_key != 0) {
    cache_->put(request.cache_key, outcome.result_json);
  }
  return outcome;
}

JobStatus JobManager::snapshotLocked(const Job& job) const {
  const auto now = std::chrono::steady_clock::now();
  JobStatus out;
  out.id = job.id;
  out.state = job.state;
  out.priority = job.request.priority;
  out.cache_hit = job.cache_hit;
  out.deadline_seconds = job.request.miner.search.deadline_seconds;
  switch (job.state) {
    case JobState::kQueued:
      out.queued_seconds = secondsBetween(job.admitted, now);
      break;
    case JobState::kRunning:
      out.queued_seconds = secondsBetween(job.admitted, job.started);
      out.run_seconds = secondsBetween(job.started, now);
      break;
    case JobState::kDone:
    case JobState::kFailed:
      out.queued_seconds = secondsBetween(job.admitted, job.started);
      out.run_seconds = secondsBetween(job.started, job.finished);
      break;
  }
  out.result_json = job.result_json;
  out.error = job.error;
  return out;
}

}  // namespace rap::svc
