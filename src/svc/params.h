// svc::parseParams — the one query-string parser behind every service
// handler (localize knob overrides, jobs listing, /tracez).
//
// The implementation lives in obs (obs/query_params.h) because /tracez
// is registered by obs and the CMake layering is svc -> obs; this
// header re-exports it under the svc namespace so service code reads
// naturally and there is exactly one parser to maintain.
#pragma once

#include "obs/query_params.h"

namespace rap::svc {

using ParamSpec = obs::ParamSpec;
using ParsedParams = obs::ParsedParams;
using obs::parseParams;

}  // namespace rap::svc
