// LocalizeService (src/svc) — the HTTP face of the localization
// pipeline: request decoding, per-request config overrides, sync/async
// mode selection, and the JSON job API, wired onto an obs::AdminServer.
//
// Endpoints (docs/service.md has the full contract):
//
//   POST /api/v1/localize[?k=&t_cp=&t_conf=&deadline=&detect_threshold=
//                          &mode=&priority=]
//     Body: a leaf-table snapshot, CSV (default) or JSON
//     (Content-Type: application/json).  Small snapshots (or
//     mode=sync) run on the worker serving the request -> 200 with the
//     localization result document; larger ones (or mode=async) are
//     admitted to the JobManager -> 202 {"job_id", "status_url"};
//     a full queue -> 429 with Retry-After.
//
//   GET /api/v1/jobs            all known jobs + queue state
//   GET /api/v1/jobs/<id>       one job, result document inlined when done
//
// Caching: the cache key is hashed over the RAW body bytes plus the
// effective overrides, so an idempotent resubmission is recognized
// before any parsing happens; cache state is reported in the
// X-Rap-Cache response header (hit|miss), never in the body — cached
// replies stay bit-identical to the original.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/rapminer.h"
#include "dataset/schema.h"
#include "obs/admin_server.h"
#include "svc/breaker.h"
#include "svc/job_journal.h"
#include "svc/job_manager.h"
#include "svc/result_cache.h"

namespace rap::svc {

class LocalizeService {
 public:
  struct Options {
    /// Top-k patterns returned when the request does not say.
    std::int32_t default_k = 5;
    /// Relative-deviation threshold for unlabeled snapshots.
    double default_detect_threshold = 0.095;
    /// Auto mode: snapshots with at most this many rows run
    /// synchronously; larger ones become queued jobs.
    std::size_t sync_row_limit = 4096;
    /// Tenant this service instance serves.  Stamped as the
    /// {tenant="..."} label on every rap_svc_* series (unless
    /// jobs.metric_labels is set explicitly) — the single-tenant daemon
    /// is simply the catalog's "default" tenant.
    std::string tenant = "default";
    /// Path prefix job detail URLs live under; the catalog rebases it
    /// to "/api/v1/tenants/<name>/jobs/" per tenant.  Used both to
    /// render status_url and to parse GET <prefix><id>.
    std::string jobs_path_prefix = "/api/v1/jobs/";
    /// Upper bound on the per-request `deadline` override; 0 means no
    /// cap.  When set, every request (including deadline=0 "no
    /// deadline") is clamped to it — the tenant's search budget always
    /// applies.  Negative or non-finite deadlines are a 400 regardless.
    double max_deadline_seconds = 0.0;
    /// Per-tenant circuit breaker (svc/breaker.h); failure_threshold 0
    /// (the default) disables it and keeps the fast path breaker-free.
    CircuitBreaker::Options breaker;
    /// Durable job journal (svc/job_journal.h); not owned, may be null
    /// (async admissions are then memory-only, as before).  Shared by
    /// every tenant of a catalog.
    JobJournal* journal = nullptr;
    JobManager::Options jobs;
    ResultCache::Options cache;
  };

  /// Default options overload: a `= {}` default argument would need the
  /// nested struct's member initializers before the enclosing class is
  /// complete (same shape as obs::AdminServer).
  LocalizeService(dataset::Schema schema, core::RapMinerConfig base_config);
  LocalizeService(dataset::Schema schema, core::RapMinerConfig base_config,
                  Options options);

  LocalizeService(const LocalizeService&) = delete;
  LocalizeService& operator=(const LocalizeService&) = delete;

  /// Registers /api/v1/localize and <jobs_path_prefix>* on `server`.
  /// Call before server.start(); the service must outlive the server.
  /// (The multi-tenant catalog routes through handleLocalize/handleJob*
  /// directly instead — see svc::TenantRouter.)
  void installEndpoints(obs::AdminServer& server);

  // Direct handler access (tests drive these without sockets).
  obs::HttpResponse handleLocalize(const obs::HttpRequest& request);
  obs::HttpResponse handleJobGet(const obs::HttpRequest& request);
  obs::HttpResponse handleJobsList(const obs::HttpRequest& request);

  /// Re-derives and resubmits one journaled admission through the
  /// admission-free replay path (svc/job_journal.h); kInvalidArgument
  /// when the recorded request no longer parses under the current spec.
  util::Result<std::uint64_t> replayJob(const JobJournal::Record& record);

  JobManager& jobs() noexcept { return *jobs_; }
  ResultCache& cache() noexcept { return *cache_; }
  CircuitBreaker& breaker() noexcept { return *breaker_; }
  const dataset::Schema& schema() const noexcept { return schema_; }
  const Options& options() const noexcept { return options_; }

 private:
  /// Effective per-request knobs after query-string overrides.
  struct RequestKnobs {
    core::RapMinerConfig miner;
    std::int32_t k = 5;
    double detect_threshold = 0.095;
    std::int32_t priority = 0;
    std::string mode;  ///< "", "sync" or "async"
  };

  /// Applies query overrides onto the base config; kInvalidArgument on
  /// a malformed or out-of-range value (-> 400).
  util::Result<RequestKnobs> resolveKnobs(
      const obs::HttpRequest& request) const;

  /// Content hash of (raw body bytes, effective overrides).
  std::uint64_t requestKey(const std::string& body,
                           const RequestKnobs& knobs) const;

  /// Integral Retry-After value, jittered uniformly over
  /// [base, 2*base) so a synchronized client fleet desynchronizes
  /// instead of retrying in lockstep (base = jobs.retry_after_seconds,
  /// floored at 1s).
  std::string retryAfterJittered();
  /// 429/503 envelope with the jittered Retry-After header +
  /// retry_after_seconds field.
  obs::HttpResponse retryableError(int status, const char* code,
                                   const std::string& message);

  dataset::Schema schema_;
  core::RapMinerConfig base_config_;
  Options options_;
  std::unique_ptr<ResultCache> cache_;
  /// Declared before jobs_: the manager holds a raw pointer to it.
  std::unique_ptr<CircuitBreaker> breaker_;
  std::unique_ptr<JobManager> jobs_;
  std::atomic<std::uint64_t> jitter_state_;
  obs::Counter* cache_hits_ = nullptr;  ///< shared rap_svc_cache_hits_total
  obs::Counter* degraded_served_ = nullptr;
};

}  // namespace rap::svc
