// Per-tenant circuit breaker (src/svc) — failure containment for the
// serving plane.
//
// A tenant whose localizations fail consecutively (bad data feeding the
// detector, an injected fault storm, a sick downstream dependency) must
// stop consuming shared-pool workers and start answering fast: the
// breaker counts consecutive execute failures and, once the configured
// budget is exhausted, OPENS — the service answers 503
// `tenant_unavailable` (or a degraded stale-cache hit, see service.cpp)
// without admitting work.  After `open_seconds` the breaker turns
// HALF-OPEN and lets `half_open_probes` requests through; if they all
// succeed it closes, one failure re-opens it.
//
// The classic three-state machine:
//
//        failure x threshold            open_seconds elapsed
//   closed ────────────────────> open ────────────────────> half-open
//     ^                            ^                            │
//     │        any probe failure   │                            │
//     │<───────────────────────────┴──── (from half-open) <─────┤
//     └──────────── half_open_probes consecutive successes ─────┘
//
// `failure_threshold == 0` disables the breaker entirely: allow()
// returns true without touching any state, so the default config adds
// zero cost to the sync fast path.
//
// Thread-safe (one mutex; transitions are rare and the per-request
// check is one short critical section).  The *At variants take an
// explicit steady_clock time so tests drive the state machine without
// sleeping.  Fault point "svc.breaker" (docs/robustness.md) trips the
// breaker open deterministically from chaos tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "obs/metrics.h"

namespace rap::svc {

enum class BreakerState : std::uint8_t {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

const char* breakerStateName(BreakerState state) noexcept;

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Consecutive execute failures that open the breaker; 0 disables
    /// the breaker (allow() is unconditionally true).
    std::size_t failure_threshold = 0;
    /// Seconds the breaker stays open before probing.
    double open_seconds = 5.0;
    /// Consecutive half-open successes required to close again.  Also
    /// bounds how many requests may probe concurrently while half-open.
    std::size_t half_open_probes = 1;
    /// Labels stamped on the rap_svc_breaker_state gauge (the catalog
    /// passes {{"tenant", name}}).
    obs::Labels metric_labels;
  };

  explicit CircuitBreaker(Options options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  bool enabled() const noexcept { return options_.failure_threshold > 0; }

  /// May this request proceed?  Open -> false (until open_seconds
  /// elapse, which flips to half-open); half-open -> true for at most
  /// half_open_probes in-flight probes.
  bool allow() { return allowAt(Clock::now()); }
  bool allowAt(Clock::time_point now);

  /// Reports one execute outcome.  Successes reset the consecutive
  /// failure count (and close a half-open breaker once enough probes
  /// succeed); failures count toward the budget (and re-open a
  /// half-open breaker immediately).
  void recordSuccess();
  void recordFailure() { recordFailureAt(Clock::now()); }
  void recordFailureAt(Clock::time_point now);

  /// Forces the breaker open (the "svc.breaker" fault point and tests).
  void trip() { tripAt(Clock::now()); }
  void tripAt(Clock::time_point now);

  BreakerState state() const;
  std::uint64_t consecutiveFailures() const;
  /// Seconds until an open breaker starts probing (0 when not open).
  double secondsUntilProbeAt(Clock::time_point now) const;

  const Options& options() const noexcept { return options_; }

 private:
  void setStateLocked(BreakerState state);

  Options options_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  std::uint64_t consecutive_failures_ = 0;
  Clock::time_point opened_at_{};
  /// Half-open bookkeeping: probes admitted since entering half-open
  /// and how many of them succeeded.
  std::size_t probes_admitted_ = 0;
  std::size_t probes_succeeded_ = 0;
  obs::Gauge* state_gauge_ = nullptr;  ///< rap_svc_breaker_state
};

}  // namespace rap::svc
