// DatasetCatalog (src/svc) — the tenant registry of the multi-tenant
// serving plane.
//
// One catalog owns:
//   * a shared util::ThreadPool that every tenant's JobManager draws
//     workers from (per-tenant `max_active` quotas bound how much of it
//     one tenant may hold at once), and
//   * a name -> Tenant map, where each Tenant bundles the
//     LocalizeService (jobs + result cache, labeled {tenant="<name>"})
//     and, for streaming tenants, a running StreamEngine fed by
//     POST /api/v1/tenants/<name>/ingest.
//
// Lifecycle: tenants register at startup from a sidecar file
// (svc::loadTenantSidecar) or dynamically via PUT — put() is
// create-only (kFailedPrecondition on a live name, -> 409), remove() hands
// the Tenant back to the caller so the HTTP layer can finish the
// response before the drain (stop the engine, run down in-flight jobs)
// happens.  Handlers hold the shared_ptr returned by find() for the
// duration of a request, so deleting a tenant never invalidates a
// request already executing against it.
//
// The pool is declared before the tenant map and the destructor clears
// the map first, so tenant teardown (which waits for its outstanding
// pool closures) always runs against a live pool.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "stream/engine.h"
#include "svc/service.h"
#include "svc/tenant_config.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rap::svc {

class DatasetCatalog {
 public:
  struct Options {
    /// Workers of the shared job pool all tenants draw from.
    std::size_t pool_threads = 4;
    /// Durable job journal shared by every tenant's service; not owned,
    /// may be null (async admissions are then memory-only).
    JobJournal* journal = nullptr;
  };

  /// One live tenant.  The spec and service are immutable after
  /// registration (tenant updates are delete + re-put); the engine slot
  /// is mutable behind a mutex so the supervisor can swap a crashed
  /// engine for a restored one without re-registering the tenant.
  struct Tenant {
    TenantSpec spec;
    std::unique_ptr<LocalizeService> service;

    /// Running engine (or null for batch-only tenants).  Handlers take
    /// the shared_ptr once and use it for the whole request, so a
    /// supervisor swap mid-request never yanks the engine out from
    /// under them.
    std::shared_ptr<stream::StreamEngine> engine() const {
      std::lock_guard<std::mutex> lock(engine_mutex_);
      return engine_;
    }
    /// Supervisor-only: installs a freshly restored engine (or null).
    void replaceEngine(std::shared_ptr<stream::StreamEngine> engine) {
      std::lock_guard<std::mutex> lock(engine_mutex_);
      engine_ = std::move(engine);
    }

    /// Quarantined = the supervisor gave up restarting this tenant's
    /// engine; sub-resources answer 503 tenant_unavailable until a
    /// delete + re-put.
    bool quarantined() const {
      std::lock_guard<std::mutex> lock(engine_mutex_);
      return quarantined_;
    }
    void setQuarantined(bool value) {
      std::lock_guard<std::mutex> lock(engine_mutex_);
      quarantined_ = value;
    }

   private:
    friend class DatasetCatalog;
    mutable std::mutex engine_mutex_;
    std::shared_ptr<stream::StreamEngine> engine_;
    bool quarantined_ = false;
  };

  DatasetCatalog();
  explicit DatasetCatalog(Options options);

  DatasetCatalog(const DatasetCatalog&) = delete;
  DatasetCatalog& operator=(const DatasetCatalog&) = delete;

  /// Drains and destroys every remaining tenant (engines stopped, jobs
  /// run down), then the shared pool.
  ~DatasetCatalog();

  /// Registers a tenant: wires the spec's service options to this
  /// catalog (tenant label, jobs path prefix, shared pool), constructs
  /// the LocalizeService, and starts the StreamEngine for streaming
  /// specs.  Create-only: kFailedPrecondition if the name is live.
  util::Status put(TenantSpec spec);

  /// Unregisters `name` and returns the Tenant so the caller controls
  /// when the drain runs (destroying the returned pointer stops the
  /// engine and waits out in-flight jobs).  kNotFound if absent.
  util::Result<std::shared_ptr<Tenant>> remove(const std::string& name);

  /// The live tenant named `name`, or null.  The returned pointer keeps
  /// the tenant alive across a concurrent remove().
  std::shared_ptr<Tenant> find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// Snapshot of every live tenant (for /statusz and tenant listing).
  std::vector<std::shared_ptr<Tenant>> list() const;

  std::size_t size() const;

  util::ThreadPool& pool() noexcept { return pool_; }

 private:
  Options options_;
  /// Shared by every tenant's JobManager; declared before tenants_ so
  /// it outlives their teardown waits.
  util::ThreadPool pool_;
  obs::Gauge* tenants_gauge_ = nullptr;  ///< rap_svc_tenants

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace rap::svc
