// TenantRouter (src/svc) — the resource-oriented v1 HTTP surface over a
// DatasetCatalog.
//
// Resource tree (docs/service.md is the document of record):
//
//   GET    /api/v1/tenants                 registered tenants
//   PUT    /api/v1/tenants/<t>             create (body: tenant spec JSON)
//   GET    /api/v1/tenants/<t>             tenant detail + live stats
//   DELETE /api/v1/tenants/<t>             drain + unregister
//   POST   /api/v1/tenants/<t>/localize    same contract as /api/v1/localize
//   POST   /api/v1/tenants/<t>/ingest      CSV rows -> the tenant's engine
//   GET    /api/v1/tenants/<t>/jobs        the tenant's job list
//   GET    /api/v1/tenants/<t>/jobs/<id>   one job
//   GET    /statusz                        per-tenant sections + build info
//
// The pre-catalog endpoints stay as thin aliases onto the "default"
// tenant — POST /api/v1/localize and GET /api/v1/jobs[/<id>] resolve
// "default" at request time and delegate to its LocalizeService, so a
// single-tenant deployment upgrades without breaking a single client.
//
// Tenant names come out of the URL, not the route table: the routes are
// four method-scoped prefix handlers under /api/v1/tenants/, so tenants
// created dynamically via PUT are routable immediately (the AdminServer
// route table is immutable after start()).
//
// Every non-2xx body is the obs error envelope
// {"error":{"code","status","message"}}.  Fault point "svc.tenant"
// (docs/robustness.md) fails tenant resolution -> 503, exercising
// client retry paths.
#pragma once

#include <string>

#include "obs/admin_server.h"
#include "svc/catalog.h"

namespace rap::svc {

class TenantRouter {
 public:
  struct Options {
    /// Resolves relative schema {"path": ...} in PUT bodies.
    std::string schema_base_dir;
  };

  explicit TenantRouter(DatasetCatalog& catalog);
  TenantRouter(DatasetCatalog& catalog, Options options);

  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  /// Registers the resource tree, the legacy aliases, and /statusz on
  /// `server`.  Call before server.start(); the router (and catalog)
  /// must outlive the server.
  void installEndpoints(obs::AdminServer& server);

  // Direct handlers (tests drive these without sockets).

  /// Dispatches one /api/v1/tenants[/...] request by method + path.
  obs::HttpResponse route(const obs::HttpRequest& request);

  /// GET /api/v1/tenants.
  obs::HttpResponse handleTenantsList(const obs::HttpRequest& request);

  /// GET /statusz — build identity + one section per tenant.
  obs::HttpResponse handleStatusz(const obs::HttpRequest& request);

  DatasetCatalog& catalog() noexcept { return catalog_; }

 private:
  obs::HttpResponse handleTenantGet(const DatasetCatalog::Tenant& tenant);
  obs::HttpResponse handleTenantPut(const std::string& name,
                                    const obs::HttpRequest& request);
  obs::HttpResponse handleTenantDelete(const std::string& name);
  obs::HttpResponse handleIngest(DatasetCatalog::Tenant& tenant,
                                 const obs::HttpRequest& request);

  DatasetCatalog& catalog_;
  Options options_;
};

}  // namespace rap::svc
