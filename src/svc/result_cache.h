// Localization result cache (src/svc) — LRU + TTL over rendered result
// documents, keyed by a snapshot content hash.
//
// The CDN deployment shape the service targets makes resubmission the
// common case: several upstream detectors watch the same KPI window and
// each asks "what broke?" about the identical snapshot, and operators
// re-run the same query while an incident is open.  The cache serves
// those idempotent resubmissions the bit-identical stored document
// without re-running Algorithm 1/2.
//
// Semantics:
//   * capacity-bounded, least-recently-USED eviction (a get refreshes
//     recency, so a hot entry survives capacity pressure);
//   * per-entry TTL from insertion time (a refresh on get does NOT
//     extend life: localization results describe a time window, and a
//     stale window must eventually fall out no matter how popular);
//   * capacity 0 disables the cache entirely; ttl_seconds 0 disables
//     expiry.
//
// Thread-safe (one mutex — entries are small strings and the service's
// request path hits the cache once per request).  The *At variants take
// an explicit steady_clock time so tests can drive TTL without
// sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace rap::svc {

class ResultCache {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Maximum cached entries; 0 disables caching (every get misses).
    std::size_t capacity = 128;
    /// Seconds an entry stays valid after insertion; 0 = never expires.
    double ttl_seconds = 300.0;
  };

  /// Monotonic counters (all-time, not per-window).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;    ///< dropped for capacity
    std::uint64_t expirations = 0;  ///< dropped for age on lookup
  };

  ResultCache() : ResultCache(Options{}) {}
  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the stored document and refreshes recency, or nullopt on
  /// miss / expiry.
  std::optional<std::string> get(std::uint64_t key) {
    return getAt(key, Clock::now());
  }
  std::optional<std::string> getAt(std::uint64_t key, Clock::time_point now);

  /// Degraded-serving lookup: returns the stored document even past its
  /// TTL, without refreshing recency or touching hit/miss/expiry stats.
  /// The circuit-breaker path uses this — a stale localization beats a
  /// 503 while the tenant engine is down (docs/service.md).
  std::optional<std::string> peekStale(std::uint64_t key) const;

  /// Inserts (or overwrites, resetting the TTL of) `key`.
  void put(std::uint64_t key, std::string value) {
    putAt(key, std::move(value), Clock::now());
  }
  void putAt(std::uint64_t key, std::string value, Clock::time_point now);

  std::size_t size() const;
  CacheStats stats() const;
  const Options& options() const noexcept { return options_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::string value;
    Clock::time_point inserted;
  };

  bool expired(const Entry& entry, Clock::time_point now) const {
    return options_.ttl_seconds > 0.0 &&
           std::chrono::duration<double>(now - entry.inserted).count() >
               options_.ttl_seconds;
  }

  Options options_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace rap::svc
