#include "svc/service.h"

#include <bit>
#include <cstdlib>

#include "io/json.h"
#include "obs/metrics.h"
#include "svc/snapshot.h"
#include "util/strings.h"

namespace rap::svc {

namespace {

constexpr const char* kJsonType = "application/json; charset=utf-8";
constexpr const char* kJobsPrefix = "/api/v1/jobs/";

obs::HttpResponse textResponse(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

obs::HttpResponse jsonResponse(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = kJsonType;
  response.body = std::move(body);
  return response;
}

/// Full-consumption double parse; nullopt on garbage or trailing junk.
std::optional<double> parseDouble(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

std::string formatSeconds(double seconds) {
  return util::strFormat("%.6f", seconds);
}

/// The job fields shared by the list and detail documents (no result).
void appendJobFields(std::string& out, const JobStatus& job) {
  out += "\"job_id\":";
  out += std::to_string(job.id);
  out += ",\"state\":\"";
  out += jobStateName(job.state);
  out += "\",\"priority\":";
  out += std::to_string(job.priority);
  out += ",\"cache_hit\":";
  out += job.cache_hit ? "true" : "false";
  out += ",\"queued_seconds\":";
  out += formatSeconds(job.queued_seconds);
  out += ",\"run_seconds\":";
  out += formatSeconds(job.run_seconds);
}

}  // namespace

LocalizeService::LocalizeService(dataset::Schema schema,
                                 core::RapMinerConfig base_config)
    : LocalizeService(std::move(schema), base_config, Options{}) {}

LocalizeService::LocalizeService(dataset::Schema schema,
                                 core::RapMinerConfig base_config,
                                 Options options)
    : schema_(std::move(schema)),
      base_config_(base_config),
      options_(options),
      cache_(std::make_unique<ResultCache>(options.cache)),
      jobs_(std::make_unique<JobManager>(options.jobs, cache_.get())) {
  if (obs::metricsEnabled()) {
    // Same series the JobManager publishes to — the pre-parse fast path
    // below must count as a hit just like one inside a worker.
    cache_hits_ = &obs::defaultRegistry().counter("rap_svc_cache_hits_total");
  }
}

void LocalizeService::installEndpoints(obs::AdminServer& server) {
  server.handlePost("/api/v1/localize", [this](const obs::HttpRequest& req) {
    return handleLocalize(req);
  });
  server.handle("/api/v1/jobs", [this](const obs::HttpRequest& req) {
    return handleJobsList(req);
  });
  server.handlePrefix(kJobsPrefix, [this](const obs::HttpRequest& req) {
    return handleJobGet(req);
  });
}

util::Result<LocalizeService::RequestKnobs> LocalizeService::resolveKnobs(
    const obs::HttpRequest& request) const {
  RequestKnobs knobs;
  knobs.miner = base_config_;
  knobs.k = options_.default_k;
  knobs.detect_threshold = options_.default_detect_threshold;

  std::int64_t value = 0;
  switch (request.queryIntStrict("k", &value)) {
    case obs::HttpRequest::QueryIntResult::kInvalid:
      return util::Status::invalidArgument("bad k parameter");
    case obs::HttpRequest::QueryIntResult::kValid:
      knobs.k = static_cast<std::int32_t>(value);
      break;
    case obs::HttpRequest::QueryIntResult::kAbsent:
      break;
  }
  switch (request.queryIntStrict("priority", &value)) {
    case obs::HttpRequest::QueryIntResult::kInvalid:
      return util::Status::invalidArgument("bad priority parameter");
    case obs::HttpRequest::QueryIntResult::kValid:
      knobs.priority = static_cast<std::int32_t>(value);
      break;
    case obs::HttpRequest::QueryIntResult::kAbsent:
      break;
  }

  if (const auto raw = request.queryParam("t_cp")) {
    const auto parsed = parseDouble(*raw);
    if (!parsed) return util::Status::invalidArgument("bad t_cp parameter");
    knobs.miner.cp.t_cp = *parsed;
  }
  if (const auto raw = request.queryParam("t_conf")) {
    const auto parsed = parseDouble(*raw);
    if (!parsed) return util::Status::invalidArgument("bad t_conf parameter");
    knobs.miner.search.t_conf = *parsed;
  }
  if (const auto raw = request.queryParam("deadline")) {
    const auto parsed = parseDouble(*raw);
    if (!parsed) {
      return util::Status::invalidArgument("bad deadline parameter");
    }
    knobs.miner.search.deadline_seconds = *parsed;
  }
  if (const auto raw = request.queryParam("detect_threshold")) {
    const auto parsed = parseDouble(*raw);
    if (!parsed || !(*parsed >= 0.0) || *parsed > 1e9) {
      return util::Status::invalidArgument("bad detect_threshold parameter");
    }
    knobs.detect_threshold = *parsed;
  }
  if (const auto raw = request.queryParam("mode")) {
    if (*raw == "sync" || *raw == "async") {
      knobs.mode = *raw;
    } else if (*raw != "auto") {
      return util::Status::invalidArgument(
          "bad mode parameter (sync|async|auto)");
    }
  }

  // One validation gate for everything user-supplied: a bad override is
  // a 400 here, never a RAP_CHECK abort in a worker.
  RAP_RETURN_IF_ERROR(
      core::RapMiner::Builder().config(knobs.miner).validate());
  return knobs;
}

std::uint64_t LocalizeService::requestKey(const std::string& body,
                                          const RequestKnobs& knobs) const {
  // Raw body bytes first — an idempotent resubmission is recognized
  // without parsing — then every override that changes the result.
  // (priority only changes scheduling, so it stays out of the key.)
  std::uint64_t h = contentHash(body);
  h = hashMix(h, static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(knobs.k)));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.miner.cp.t_cp));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.miner.search.t_conf));
  h = hashMix(h,
              std::bit_cast<std::uint64_t>(knobs.miner.search.deadline_seconds));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.detect_threshold));
  // Key 0 means "uncached" to the JobManager; remap the unlucky hash.
  return h == 0 ? 1 : h;
}

obs::HttpResponse LocalizeService::handleLocalize(
    const obs::HttpRequest& request) {
  auto knobs = resolveKnobs(request);
  if (!knobs.isOk()) {
    return textResponse(400, knobs.status().message() + "\n");
  }
  const std::uint64_t key = requestKey(request.body, *knobs);

  // Pre-parse fast path: an identical resubmission (unless the caller
  // insists on a job record with mode=async) skips decoding entirely and
  // returns the stored document bit-identical.
  if (knobs->mode != "async") {
    if (auto hit = cache_->get(key)) {
      if (cache_hits_ != nullptr) cache_hits_->increment();
      obs::HttpResponse response = jsonResponse(200, std::move(*hit));
      response.headers.emplace_back("X-Rap-Cache", "hit");
      return response;
    }
  }

  const std::string* content_type = request.header("content-type");
  const bool is_json = content_type != nullptr &&
                       content_type->find("json") != std::string::npos;
  auto table = is_json ? parseJsonSnapshot(schema_, request.body)
                       : parseCsvSnapshot(schema_, request.body);
  if (!table.isOk()) {
    return textResponse(400, table.status().message() + "\n");
  }

  const bool sync =
      knobs->mode == "sync" ||
      (knobs->mode.empty() && table->size() <= options_.sync_row_limit);

  JobRequest job(std::move(*table));
  job.miner = knobs->miner;
  job.k = knobs->k;
  job.detect_threshold = knobs->detect_threshold;
  job.priority = knobs->priority;
  job.cache_key = key;

  if (sync) {
    auto result = jobs_->executeInline(std::move(job));
    if (!result.isOk()) {
      return textResponse(500, result.status().message() + "\n");
    }
    obs::HttpResponse response = jsonResponse(200, std::move(*result));
    response.headers.emplace_back("X-Rap-Cache", "miss");
    return response;
  }

  auto id = jobs_->submit(std::move(job));
  if (!id.isOk()) {
    switch (id.status().code()) {
      case util::StatusCode::kOutOfRange: {
        const std::string retry = util::strFormat(
            "%.0f", options_.jobs.retry_after_seconds < 1.0
                        ? 1.0
                        : options_.jobs.retry_after_seconds);
        obs::HttpResponse response = jsonResponse(
            429, util::strFormat(
                     "{\"error\":\"job queue full\","
                     "\"retry_after_seconds\":%s}\n",
                     retry.c_str()));
        response.headers.emplace_back("Retry-After", retry);
        return response;
      }
      case util::StatusCode::kFailedPrecondition:
        return textResponse(503, id.status().message() + "\n");
      default:
        return textResponse(500, id.status().message() + "\n");
    }
  }
  return jsonResponse(
      202, util::strFormat("{\"job_id\":%llu,\"status_url\":\"%s%llu\"}\n",
                           static_cast<unsigned long long>(*id), kJobsPrefix,
                           static_cast<unsigned long long>(*id)));
}

obs::HttpResponse LocalizeService::handleJobGet(
    const obs::HttpRequest& request) {
  const std::string suffix = request.path.substr(std::string(kJobsPrefix).size());
  if (suffix.empty() ||
      suffix.find_first_not_of("0123456789") != std::string::npos) {
    return textResponse(400, "bad job id\n");
  }
  const std::uint64_t id = std::strtoull(suffix.c_str(), nullptr, 10);
  const auto status = jobs_->status(id);
  if (!status.has_value()) return textResponse(404, "no such job\n");

  std::string out = "{";
  appendJobFields(out, *status);
  if (status->state == JobState::kDone) {
    out += ",\"result\":";
    out += status->result_json;
  } else if (status->state == JobState::kFailed) {
    out += ",\"error\":\"";
    out += io::escapeJson(status->error);
    out += "\"";
  }
  out += "}\n";
  return jsonResponse(200, std::move(out));
}

obs::HttpResponse LocalizeService::handleJobsList(
    const obs::HttpRequest& request) {
  (void)request;
  std::string out = "{\"jobs\":[";
  bool first = true;
  for (const JobStatus& job : jobs_->list()) {
    if (!first) out += ",";
    first = false;
    out += "{";
    appendJobFields(out, job);
    out += "}";
  }
  out += "],\"queue_depth\":";
  out += std::to_string(jobs_->queueDepth());
  out += ",\"paused\":";
  out += jobs_->paused() ? "true" : "false";
  out += "}\n";
  return jsonResponse(200, std::move(out));
}

}  // namespace rap::svc
