#include "svc/service.h"

#include <bit>
#include <cstdlib>
#include <limits>
#include <vector>

#include "io/json.h"
#include "obs/metrics.h"
#include "svc/params.h"
#include "svc/snapshot.h"
#include "util/strings.h"

namespace rap::svc {

namespace {

constexpr const char* kJsonType = "application/json; charset=utf-8";

obs::HttpResponse jsonResponse(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = kJsonType;
  response.body = std::move(body);
  return response;
}

/// The parameter table for POST .../localize — the single source of
/// truth the shared parser enforces (unknown key / bad number /
/// out-of-range all become uniform 400 diagnostics).
const std::vector<ParamSpec>& localizeParamSpecs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"k", ParamSpec::Kind::kInt, -2e9, 2e9, {}},
      {"priority", ParamSpec::Kind::kInt, -2e9, 2e9, {}},
      {"t_cp", ParamSpec::Kind::kDouble, -1e300, 1e300, {}},
      {"t_conf", ParamSpec::Kind::kDouble, -1e300, 1e300, {}},
      {"deadline", ParamSpec::Kind::kDouble, -1e300, 1e300, {}},
      {"detect_threshold", ParamSpec::Kind::kDouble, 0.0, 1e9, {}},
      {"mode", ParamSpec::Kind::kEnum, 0.0, 0.0, {"sync", "async", "auto"}},
  };
  return kSpecs;
}

std::string formatSeconds(double seconds) {
  return util::strFormat("%.6f", seconds);
}

/// The job fields shared by the list and detail documents (no result).
void appendJobFields(std::string& out, const JobStatus& job) {
  out += "\"job_id\":";
  out += std::to_string(job.id);
  out += ",\"state\":\"";
  out += jobStateName(job.state);
  out += "\",\"priority\":";
  out += std::to_string(job.priority);
  out += ",\"cache_hit\":";
  out += job.cache_hit ? "true" : "false";
  out += ",\"queued_seconds\":";
  out += formatSeconds(job.queued_seconds);
  out += ",\"run_seconds\":";
  out += formatSeconds(job.run_seconds);
}

}  // namespace

LocalizeService::LocalizeService(dataset::Schema schema,
                                 core::RapMinerConfig base_config)
    : LocalizeService(std::move(schema), base_config, Options{}) {}

LocalizeService::LocalizeService(dataset::Schema schema,
                                 core::RapMinerConfig base_config,
                                 Options options)
    : schema_(std::move(schema)),
      base_config_(base_config),
      options_(std::move(options)) {
  if (options_.jobs.metric_labels.empty() && !options_.tenant.empty()) {
    options_.jobs.metric_labels = {{"tenant", options_.tenant}};
  }
  cache_ = std::make_unique<ResultCache>(options_.cache);
  jobs_ = std::make_unique<JobManager>(options_.jobs, cache_.get());
  if (obs::metricsEnabled()) {
    // Same series the JobManager publishes to — the pre-parse fast path
    // below must count as a hit just like one inside a worker.
    cache_hits_ = &obs::defaultRegistry().counter("rap_svc_cache_hits_total",
                                                  options_.jobs.metric_labels);
  }
}

void LocalizeService::installEndpoints(obs::AdminServer& server) {
  server.handlePost("/api/v1/localize", [this](const obs::HttpRequest& req) {
    return handleLocalize(req);
  });
  std::string jobs_path = options_.jobs_path_prefix;
  if (!jobs_path.empty() && jobs_path.back() == '/') jobs_path.pop_back();
  server.handle(jobs_path, [this](const obs::HttpRequest& req) {
    return handleJobsList(req);
  });
  server.handlePrefix(options_.jobs_path_prefix,
                      [this](const obs::HttpRequest& req) {
                        return handleJobGet(req);
                      });
}

util::Result<LocalizeService::RequestKnobs> LocalizeService::resolveKnobs(
    const obs::HttpRequest& request) const {
  const auto params = parseParams(request.query, localizeParamSpecs());
  RAP_RETURN_IF_ERROR(params.status());

  RequestKnobs knobs;
  knobs.miner = base_config_;
  knobs.k = static_cast<std::int32_t>(
      params->intOr("k", options_.default_k));
  knobs.priority = static_cast<std::int32_t>(params->intOr("priority", 0));
  knobs.miner.cp.t_cp = params->doubleOr("t_cp", knobs.miner.cp.t_cp);
  knobs.miner.search.t_conf =
      params->doubleOr("t_conf", knobs.miner.search.t_conf);
  knobs.miner.search.deadline_seconds =
      params->doubleOr("deadline", knobs.miner.search.deadline_seconds);
  knobs.detect_threshold =
      params->doubleOr("detect_threshold", options_.default_detect_threshold);
  knobs.mode = params->stringOr("mode", std::string());
  if (knobs.mode == "auto") knobs.mode.clear();

  // One validation gate for everything user-supplied: a bad override is
  // a 400 here, never a RAP_CHECK abort in a worker.
  RAP_RETURN_IF_ERROR(
      core::RapMiner::Builder().config(knobs.miner).validate());
  return knobs;
}

std::uint64_t LocalizeService::requestKey(const std::string& body,
                                          const RequestKnobs& knobs) const {
  // Raw body bytes first — an idempotent resubmission is recognized
  // without parsing — then every override that changes the result.
  // (priority only changes scheduling, so it stays out of the key.)
  std::uint64_t h = contentHash(body);
  h = hashMix(h, static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(knobs.k)));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.miner.cp.t_cp));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.miner.search.t_conf));
  h = hashMix(h,
              std::bit_cast<std::uint64_t>(knobs.miner.search.deadline_seconds));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.detect_threshold));
  // Key 0 means "uncached" to the JobManager; remap the unlucky hash.
  return h == 0 ? 1 : h;
}

obs::HttpResponse LocalizeService::handleLocalize(
    const obs::HttpRequest& request) {
  auto knobs = resolveKnobs(request);
  if (!knobs.isOk()) {
    return obs::errorResponse(400, "bad_parameter", knobs.status().message());
  }
  const std::uint64_t key = requestKey(request.body, *knobs);

  // Pre-parse fast path: an identical resubmission (unless the caller
  // insists on a job record with mode=async) skips decoding entirely and
  // returns the stored document bit-identical.
  if (knobs->mode != "async") {
    if (auto hit = cache_->get(key)) {
      if (cache_hits_ != nullptr) cache_hits_->increment();
      obs::HttpResponse response = jsonResponse(200, std::move(*hit));
      response.headers.emplace_back("X-Rap-Cache", "hit");
      return response;
    }
  }

  const std::string* content_type = request.header("content-type");
  const bool is_json = content_type != nullptr &&
                       content_type->find("json") != std::string::npos;
  auto table = is_json ? parseJsonSnapshot(schema_, request.body)
                       : parseCsvSnapshot(schema_, request.body);
  if (!table.isOk()) {
    return obs::errorResponse(400, "bad_snapshot", table.status().message());
  }

  const bool sync =
      knobs->mode == "sync" ||
      (knobs->mode.empty() && table->size() <= options_.sync_row_limit);

  JobRequest job(std::move(*table));
  job.miner = knobs->miner;
  job.k = knobs->k;
  job.detect_threshold = knobs->detect_threshold;
  job.priority = knobs->priority;
  job.cache_key = key;

  if (sync) {
    auto result = jobs_->executeInline(std::move(job));
    if (!result.isOk()) {
      return obs::errorResponse(500, "internal", result.status().message());
    }
    obs::HttpResponse response = jsonResponse(200, std::move(*result));
    response.headers.emplace_back("X-Rap-Cache", "miss");
    return response;
  }

  auto id = jobs_->submit(std::move(job));
  if (!id.isOk()) {
    switch (id.status().code()) {
      case util::StatusCode::kOutOfRange: {
        const std::string retry = util::strFormat(
            "%.0f", options_.jobs.retry_after_seconds < 1.0
                        ? 1.0
                        : options_.jobs.retry_after_seconds);
        obs::HttpResponse response = jsonResponse(
            429,
            obs::errorEnvelope(429, "queue_full", id.status().message(),
                               "\"retry_after_seconds\":" + retry));
        response.headers.emplace_back("Retry-After", retry);
        return response;
      }
      case util::StatusCode::kFailedPrecondition:
        return obs::errorResponse(503, "shutting_down",
                                  id.status().message());
      default:
        return obs::errorResponse(500, "internal", id.status().message());
    }
  }
  return jsonResponse(
      202, util::strFormat("{\"job_id\":%llu,\"status_url\":\"%s%llu\"}\n",
                           static_cast<unsigned long long>(*id),
                           options_.jobs_path_prefix.c_str(),
                           static_cast<unsigned long long>(*id)));
}

obs::HttpResponse LocalizeService::handleJobGet(
    const obs::HttpRequest& request) {
  const std::size_t prefix_len = options_.jobs_path_prefix.size();
  const std::string suffix = request.path.size() > prefix_len
                                 ? request.path.substr(prefix_len)
                                 : std::string();
  if (suffix.empty() ||
      suffix.find_first_not_of("0123456789") != std::string::npos) {
    return obs::errorResponse(400, "bad_parameter", "bad job id");
  }
  const std::uint64_t id = std::strtoull(suffix.c_str(), nullptr, 10);
  const auto status = jobs_->status(id);
  if (!status.has_value()) {
    return obs::errorResponse(404, "not_found", "no such job");
  }

  std::string out = "{";
  appendJobFields(out, *status);
  if (status->state == JobState::kDone) {
    out += ",\"result\":";
    out += status->result_json;
  } else if (status->state == JobState::kFailed) {
    out += ",\"error\":\"";
    out += io::escapeJson(status->error);
    out += "\"";
  }
  out += "}\n";
  return jsonResponse(200, std::move(out));
}

obs::HttpResponse LocalizeService::handleJobsList(
    const obs::HttpRequest& request) {
  static const std::vector<ParamSpec> kSpecs = {
      {"limit", ParamSpec::Kind::kInt, 0.0, 9e18, {}},
  };
  const auto params = parseParams(request.query, kSpecs);
  if (!params.isOk()) {
    return obs::errorResponse(400, "bad_parameter",
                              params.status().message());
  }
  const auto limit = static_cast<std::size_t>(
      params->intOr("limit", std::numeric_limits<std::int64_t>::max()));
  std::string out = "{\"jobs\":[";
  bool first = true;
  std::size_t emitted = 0;
  for (const JobStatus& job : jobs_->list()) {
    if (emitted++ == limit) break;
    if (!first) out += ",";
    first = false;
    out += "{";
    appendJobFields(out, job);
    out += "}";
  }
  out += "],\"queue_depth\":";
  out += std::to_string(jobs_->queueDepth());
  out += ",\"paused\":";
  out += jobs_->paused() ? "true" : "false";
  out += "}\n";
  return jsonResponse(200, std::move(out));
}

}  // namespace rap::svc
