#include "svc/service.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "io/json.h"
#include "obs/metrics.h"
#include "svc/params.h"
#include "svc/snapshot.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rap::svc {

namespace {

constexpr const char* kJsonType = "application/json; charset=utf-8";

obs::HttpResponse jsonResponse(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = kJsonType;
  response.body = std::move(body);
  return response;
}

/// The parameter table for POST .../localize — the single source of
/// truth the shared parser enforces (unknown key / bad number /
/// out-of-range all become uniform 400 diagnostics).
const std::vector<ParamSpec>& localizeParamSpecs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"k", ParamSpec::Kind::kInt, -2e9, 2e9, {}},
      {"priority", ParamSpec::Kind::kInt, -2e9, 2e9, {}},
      {"t_cp", ParamSpec::Kind::kDouble, -1e300, 1e300, {}},
      {"t_conf", ParamSpec::Kind::kDouble, -1e300, 1e300, {}},
      {"deadline", ParamSpec::Kind::kDouble, -1e300, 1e300, {}},
      {"detect_threshold", ParamSpec::Kind::kDouble, 0.0, 1e9, {}},
      {"mode", ParamSpec::Kind::kEnum, 0.0, 0.0, {"sync", "async", "auto"}},
  };
  return kSpecs;
}

std::string formatSeconds(double seconds) {
  return util::strFormat("%.6f", seconds);
}

/// The job fields shared by the list and detail documents (no result).
void appendJobFields(std::string& out, const JobStatus& job) {
  out += "\"job_id\":";
  out += std::to_string(job.id);
  out += ",\"state\":\"";
  out += jobStateName(job.state);
  out += "\",\"priority\":";
  out += std::to_string(job.priority);
  out += ",\"cache_hit\":";
  out += job.cache_hit ? "true" : "false";
  out += ",\"deadline_seconds\":";
  out += formatSeconds(job.deadline_seconds);
  out += ",\"queued_seconds\":";
  out += formatSeconds(job.queued_seconds);
  out += ",\"run_seconds\":";
  out += formatSeconds(job.run_seconds);
}

}  // namespace

LocalizeService::LocalizeService(dataset::Schema schema,
                                 core::RapMinerConfig base_config)
    : LocalizeService(std::move(schema), base_config, Options{}) {}

LocalizeService::LocalizeService(dataset::Schema schema,
                                 core::RapMinerConfig base_config,
                                 Options options)
    : schema_(std::move(schema)),
      base_config_(base_config),
      options_(std::move(options)) {
  if (options_.jobs.metric_labels.empty() && !options_.tenant.empty()) {
    options_.jobs.metric_labels = {{"tenant", options_.tenant}};
  }
  cache_ = std::make_unique<ResultCache>(options_.cache);
  if (options_.breaker.metric_labels.empty()) {
    options_.breaker.metric_labels = options_.jobs.metric_labels;
  }
  breaker_ = std::make_unique<CircuitBreaker>(options_.breaker);
  // A disabled breaker stays entirely off the manager's execute path.
  options_.jobs.breaker = breaker_->enabled() ? breaker_.get() : nullptr;
  if (options_.journal != nullptr) {
    JobJournal* journal = options_.journal;
    options_.jobs.on_terminal = [journal](std::uint64_t /*id*/,
                                          std::uint64_t record, bool ok) {
      if (record != 0) journal->complete(record, ok ? "done" : "failed");
    };
  }
  jobs_ = std::make_unique<JobManager>(options_.jobs, cache_.get());
  // Deterministic per-instance jitter stream; only the [base, 2*base)
  // envelope matters, not the sequence.
  jitter_state_.store(contentHash(options_.tenant) | 1u);
  if (obs::metricsEnabled()) {
    // Same series the JobManager publishes to — the pre-parse fast path
    // below must count as a hit just like one inside a worker.
    cache_hits_ = &obs::defaultRegistry().counter("rap_svc_cache_hits_total",
                                                  options_.jobs.metric_labels);
    degraded_served_ = &obs::defaultRegistry().counter(
        "rap_svc_degraded_served_total", options_.jobs.metric_labels);
  }
}

void LocalizeService::installEndpoints(obs::AdminServer& server) {
  server.handlePost("/api/v1/localize", [this](const obs::HttpRequest& req) {
    return handleLocalize(req);
  });
  std::string jobs_path = options_.jobs_path_prefix;
  if (!jobs_path.empty() && jobs_path.back() == '/') jobs_path.pop_back();
  server.handle(jobs_path, [this](const obs::HttpRequest& req) {
    return handleJobsList(req);
  });
  server.handlePrefix(options_.jobs_path_prefix,
                      [this](const obs::HttpRequest& req) {
                        return handleJobGet(req);
                      });
}

util::Result<LocalizeService::RequestKnobs> LocalizeService::resolveKnobs(
    const obs::HttpRequest& request) const {
  const auto params = parseParams(request.query, localizeParamSpecs());
  RAP_RETURN_IF_ERROR(params.status());

  RequestKnobs knobs;
  knobs.miner = base_config_;
  knobs.k = static_cast<std::int32_t>(
      params->intOr("k", options_.default_k));
  knobs.priority = static_cast<std::int32_t>(params->intOr("priority", 0));
  knobs.miner.cp.t_cp = params->doubleOr("t_cp", knobs.miner.cp.t_cp);
  knobs.miner.search.t_conf =
      params->doubleOr("t_conf", knobs.miner.search.t_conf);
  double deadline =
      params->doubleOr("deadline", knobs.miner.search.deadline_seconds);
  if (!std::isfinite(deadline) || deadline < 0.0) {
    return util::Status::invalidArgument(
        "deadline must be a finite, non-negative number of seconds");
  }
  if (options_.max_deadline_seconds > 0.0 &&
      (deadline == 0.0 || deadline > options_.max_deadline_seconds)) {
    // The tenant budget always applies: deadline=0 ("unbounded") clamps
    // too, so no request outlives max_deadline_seconds.
    deadline = options_.max_deadline_seconds;
  }
  knobs.miner.search.deadline_seconds = deadline;
  knobs.detect_threshold =
      params->doubleOr("detect_threshold", options_.default_detect_threshold);
  knobs.mode = params->stringOr("mode", std::string());
  if (knobs.mode == "auto") knobs.mode.clear();

  // One validation gate for everything user-supplied: a bad override is
  // a 400 here, never a RAP_CHECK abort in a worker.
  RAP_RETURN_IF_ERROR(
      core::RapMiner::Builder().config(knobs.miner).validate());
  return knobs;
}

std::uint64_t LocalizeService::requestKey(const std::string& body,
                                          const RequestKnobs& knobs) const {
  // Raw body bytes first — an idempotent resubmission is recognized
  // without parsing — then every override that changes the result.
  // (priority only changes scheduling, so it stays out of the key.)
  std::uint64_t h = contentHash(body);
  h = hashMix(h, static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(knobs.k)));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.miner.cp.t_cp));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.miner.search.t_conf));
  h = hashMix(h,
              std::bit_cast<std::uint64_t>(knobs.miner.search.deadline_seconds));
  h = hashMix(h, std::bit_cast<std::uint64_t>(knobs.detect_threshold));
  // Key 0 means "uncached" to the JobManager; remap the unlucky hash.
  return h == 0 ? 1 : h;
}

std::string LocalizeService::retryAfterJittered() {
  const double base = std::max(1.0, options_.jobs.retry_after_seconds);
  std::uint64_t s = jitter_state_.fetch_add(1, std::memory_order_relaxed);
  const double u =
      static_cast<double>(util::splitmix64(s) >> 11) * 0x1.0p-53;  // [0,1)
  return util::strFormat("%.0f", base * (1.0 + u));
}

obs::HttpResponse LocalizeService::retryableError(int status, const char* code,
                                                  const std::string& message) {
  const std::string retry = retryAfterJittered();
  obs::HttpResponse response = jsonResponse(
      status, obs::errorEnvelope(status, code, message,
                                 "\"retry_after_seconds\":" + retry));
  response.headers.emplace_back("Retry-After", retry);
  return response;
}

obs::HttpResponse LocalizeService::handleLocalize(
    const obs::HttpRequest& request) {
  auto knobs = resolveKnobs(request);
  if (!knobs.isOk()) {
    return obs::errorResponse(400, "bad_parameter", knobs.status().message());
  }
  const std::uint64_t key = requestKey(request.body, *knobs);

  // Circuit-breaker gate, ahead of even the cache fast path: while the
  // tenant's breaker is open the service answers from the result cache
  // (stale entries included — a TTL-expired localization beats a 503
  // during an incident) with X-Rap-Degraded, or sheds with 503
  // tenant_unavailable and a jittered Retry-After.  allow() admits the
  // half-open probes that eventually close the breaker.
  if (breaker_->enabled() && !breaker_->allow()) {
    if (auto stale = cache_->peekStale(key)) {
      if (degraded_served_ != nullptr) degraded_served_->increment();
      obs::HttpResponse response = jsonResponse(200, std::move(*stale));
      response.headers.emplace_back("X-Rap-Cache", "hit");
      response.headers.emplace_back("X-Rap-Degraded", "stale");
      return response;
    }
    return retryableError(503, "tenant_unavailable",
                          "tenant circuit breaker is open");
  }

  // Pre-parse fast path: an identical resubmission (unless the caller
  // insists on a job record with mode=async) skips decoding entirely and
  // returns the stored document bit-identical.
  if (knobs->mode != "async") {
    if (auto hit = cache_->get(key)) {
      if (cache_hits_ != nullptr) cache_hits_->increment();
      obs::HttpResponse response = jsonResponse(200, std::move(*hit));
      response.headers.emplace_back("X-Rap-Cache", "hit");
      return response;
    }
  }

  const std::string* content_type = request.header("content-type");
  const bool is_json = content_type != nullptr &&
                       content_type->find("json") != std::string::npos;
  auto table = is_json ? parseJsonSnapshot(schema_, request.body)
                       : parseCsvSnapshot(schema_, request.body);
  if (!table.isOk()) {
    return obs::errorResponse(400, "bad_snapshot", table.status().message());
  }

  const bool sync =
      knobs->mode == "sync" ||
      (knobs->mode.empty() && table->size() <= options_.sync_row_limit);

  JobRequest job(std::move(*table));
  job.miner = knobs->miner;
  job.k = knobs->k;
  job.detect_threshold = knobs->detect_threshold;
  job.priority = knobs->priority;
  job.cache_key = key;

  if (sync) {
    auto result = jobs_->executeInline(std::move(job));
    if (!result.isOk()) {
      return obs::errorResponse(500, "internal", result.status().message());
    }
    obs::HttpResponse response = jsonResponse(200, std::move(*result));
    response.headers.emplace_back("X-Rap-Cache", "miss");
    return response;
  }

  // Durability before acknowledgement: the A record is appended (and
  // fsync'd) BEFORE admission, so every 202 this handler returns
  // survives kill -9.  An append failure is honest backpressure.
  if (options_.journal != nullptr) {
    JobJournal::Record record;
    record.tenant = options_.tenant;
    record.priority = knobs->priority;
    record.content_type = is_json ? "json" : "csv";
    record.query = request.query;
    record.body = request.body;
    auto record_id = options_.journal->append(std::move(record));
    if (!record_id.isOk()) {
      return retryableError(503, "journal_unavailable",
                            record_id.status().message());
    }
    job.journal_record = *record_id;
  }
  const std::uint64_t journal_record = job.journal_record;

  auto id = jobs_->submit(std::move(job));
  if (!id.isOk()) {
    if (journal_record != 0) {
      options_.journal->complete(journal_record, "shed");
    }
    switch (id.status().code()) {
      case util::StatusCode::kOutOfRange:
        return retryableError(429, "queue_full", id.status().message());
      case util::StatusCode::kUnavailable:
        return retryableError(429, "overloaded", id.status().message());
      case util::StatusCode::kFailedPrecondition:
        return obs::errorResponse(503, "shutting_down",
                                  id.status().message());
      default:
        return obs::errorResponse(500, "internal", id.status().message());
    }
  }
  return jsonResponse(
      202, util::strFormat("{\"job_id\":%llu,\"status_url\":\"%s%llu\"}\n",
                           static_cast<unsigned long long>(*id),
                           options_.jobs_path_prefix.c_str(),
                           static_cast<unsigned long long>(*id)));
}

util::Result<std::uint64_t> LocalizeService::replayJob(
    const JobJournal::Record& record) {
  // Rebuild the admission exactly as the HTTP layer saw it, then run
  // the same decode pipeline — a replayed job carries the same cache
  // key as the original, so one that completed (C record lost to the
  // crash) re-renders bit-identical from the cache without a search.
  obs::HttpRequest request;
  request.method = "POST";
  request.path = "/api/v1/localize";
  request.query = record.query;
  request.body = record.body;
  request.headers.emplace_back(
      "content-type",
      record.content_type == "json" ? "application/json" : "text/csv");

  auto knobs = resolveKnobs(request);
  RAP_RETURN_IF_ERROR(knobs.status());
  const std::uint64_t key = requestKey(record.body, *knobs);
  auto table = record.content_type == "json"
                   ? parseJsonSnapshot(schema_, record.body)
                   : parseCsvSnapshot(schema_, record.body);
  RAP_RETURN_IF_ERROR(table.status());

  JobRequest job(std::move(*table));
  job.miner = knobs->miner;
  job.k = knobs->k;
  job.detect_threshold = knobs->detect_threshold;
  job.priority = knobs->priority;
  job.cache_key = key;
  job.journal_record = record.id;
  return jobs_->resubmit(std::move(job));
}

obs::HttpResponse LocalizeService::handleJobGet(
    const obs::HttpRequest& request) {
  const std::size_t prefix_len = options_.jobs_path_prefix.size();
  const std::string suffix = request.path.size() > prefix_len
                                 ? request.path.substr(prefix_len)
                                 : std::string();
  if (suffix.empty() ||
      suffix.find_first_not_of("0123456789") != std::string::npos) {
    return obs::errorResponse(400, "bad_parameter", "bad job id");
  }
  const std::uint64_t id = std::strtoull(suffix.c_str(), nullptr, 10);
  const auto status = jobs_->status(id);
  if (!status.has_value()) {
    return obs::errorResponse(404, "not_found", "no such job");
  }

  std::string out = "{";
  appendJobFields(out, *status);
  if (status->state == JobState::kDone) {
    out += ",\"result\":";
    out += status->result_json;
  } else if (status->state == JobState::kFailed) {
    out += ",\"error\":\"";
    out += io::escapeJson(status->error);
    out += "\"";
  }
  out += "}\n";
  return jsonResponse(200, std::move(out));
}

obs::HttpResponse LocalizeService::handleJobsList(
    const obs::HttpRequest& request) {
  static const std::vector<ParamSpec> kSpecs = {
      {"limit", ParamSpec::Kind::kInt, 0.0, 9e18, {}},
  };
  const auto params = parseParams(request.query, kSpecs);
  if (!params.isOk()) {
    return obs::errorResponse(400, "bad_parameter",
                              params.status().message());
  }
  const auto limit = static_cast<std::size_t>(
      params->intOr("limit", std::numeric_limits<std::int64_t>::max()));
  std::string out = "{\"jobs\":[";
  bool first = true;
  std::size_t emitted = 0;
  for (const JobStatus& job : jobs_->list()) {
    if (emitted++ == limit) break;
    if (!first) out += ",";
    first = false;
    out += "{";
    appendJobFields(out, job);
    out += "}";
  }
  out += "],\"queue_depth\":";
  out += std::to_string(jobs_->queueDepth());
  out += ",\"paused\":";
  out += jobs_->paused() ? "true" : "false";
  out += "}\n";
  return jsonResponse(200, std::move(out));
}

}  // namespace rap::svc
