// Adaptive admission control (src/svc) — CoDel-style queue-delay
// shedding for the JobManager.
//
// A bounded queue sheds only when it is FULL, which is the wrong signal
// under a sustained overload: a queue of 64 slow localizations is
// "accepting" work it will not finish for minutes, so callers learn the
// truth only after their job has aged out of usefulness.  Following
// CoDel's insight, the right signal is sustained queue DELAY: when the
// job at the head of the queue (the next to run) has already waited
// longer than `target_delay_seconds`, and that condition has persisted
// for `interval_seconds`, new admissions are shed with
// Status::unavailable (-> HTTP 429 `overloaded` + jittered Retry-After)
// even though slots remain.
//
// The guard is deliberately stateless beyond one timestamp: admission
// calls shouldShedAt() with the current head-of-line delay; the first
// over-target observation starts the interval clock, an under-target
// observation resets it, and shedding begins once the clock has run for
// a full interval.  Sampling happens only at admission time — an idle
// tenant pays nothing, and a tenant that stops receiving requests
// cannot shed anybody.
//
// Caveat (documented in docs/robustness.md): the head of the queue is
// the highest-PRIORITY pending job, so a starved low-priority backlog
// behind a fast high-priority stream does not trip the guard — priority
// starvation is the operator's policy choice, not an overload.
//
// `target_delay_seconds == 0` disables the guard entirely (the default:
// zero cost on the fast path).  Not thread-safe by itself — the
// JobManager calls it under its own admission mutex.
#pragma once

#include <chrono>

namespace rap::svc {

class OverloadGuard {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Head-of-line queue delay above which the queue counts as
    /// overloaded; 0 disables the guard.
    double target_delay_seconds = 0.0;
    /// How long the delay must stay above target before shedding.
    double interval_seconds = 1.0;
  };

  OverloadGuard() = default;
  explicit OverloadGuard(Options options) : options_(options) {}

  bool enabled() const noexcept { return options_.target_delay_seconds > 0.0; }

  /// One admission-time sample: `head_delay_seconds` is how long the
  /// next-to-run job has been queued (0 when the queue is empty).
  /// Returns true when the admission should be shed.
  bool shouldShed(double head_delay_seconds) {
    return shouldShedAt(head_delay_seconds, Clock::now());
  }
  bool shouldShedAt(double head_delay_seconds, Clock::time_point now);

  /// True while the guard is currently shedding (for /statusz).
  bool shedding() const noexcept { return shedding_; }

  void reset() {
    over_target_ = false;
    shedding_ = false;
  }

  const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  bool over_target_ = false;
  bool shedding_ = false;
  Clock::time_point over_target_since_{};
};

}  // namespace rap::svc
