#include "svc/json_value.h"

#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace rap::svc {

namespace {

// Local shorthand: propagate a Status out of the recursive descent.
#define RAP_JSON_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::rap::util::Status rap_json_s_ = (expr);     \
    if (!rap_json_s_.isOk()) return rap_json_s_;  \
  } while (0)

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Result<JsonValue> run() {
    skipWhitespace();
    JsonValue value;
    RAP_JSON_RETURN_IF_ERROR(parseValue(value, 0));
    skipWhitespace();
    if (pos_ != text_.size()) {
      return error("trailing garbage after JSON document");
    }
    return value;
  }

 private:
  util::Status error(const std::string& what) const {
    return util::Status::invalidArgument(
        util::strFormat("JSON parse error at byte %zu: %s", pos_,
                        what.c_str()));
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  util::Status parseValue(JsonValue& out, int depth) {
    if (depth > JsonValue::kMaxDepth) {
      return error("nesting too deep");
    }
    skipWhitespace();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parseObject(out, depth);
      case '[':
        return parseArray(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parseString(out.string_value);
      case 't':
        if (consumeLiteral("true")) {
          out.kind = JsonValue::Kind::kBool;
          out.bool_value = true;
          return util::Status::ok();
        }
        return error("bad literal");
      case 'f':
        if (consumeLiteral("false")) {
          out.kind = JsonValue::Kind::kBool;
          out.bool_value = false;
          return util::Status::ok();
        }
        return error("bad literal");
      case 'n':
        if (consumeLiteral("null")) {
          out.kind = JsonValue::Kind::kNull;
          return util::Status::ok();
        }
        return error("bad literal");
      default:
        return parseNumber(out);
    }
  }

  util::Status parseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    skipWhitespace();
    if (consume('}')) return util::Status::ok();
    for (;;) {
      skipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key string");
      }
      std::string key;
      RAP_JSON_RETURN_IF_ERROR(parseString(key));
      skipWhitespace();
      if (!consume(':')) return error("expected ':' after object key");
      JsonValue value;
      RAP_JSON_RETURN_IF_ERROR(parseValue(value, depth + 1));
      out.object_value.emplace_back(std::move(key), std::move(value));
      skipWhitespace();
      if (consume(',')) continue;
      if (consume('}')) return util::Status::ok();
      return error("expected ',' or '}' in object");
    }
  }

  util::Status parseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    skipWhitespace();
    if (consume(']')) return util::Status::ok();
    for (;;) {
      JsonValue value;
      RAP_JSON_RETURN_IF_ERROR(parseValue(value, depth + 1));
      out.array_value.push_back(std::move(value));
      skipWhitespace();
      if (consume(',')) continue;
      if (consume(']')) return util::Status::ok();
      return error("expected ',' or ']' in array");
    }
  }

  util::Status parseHex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return error("bad \\u escape digit");
      }
    }
    pos_ += 4;
    return util::Status::ok();
  }

  static void appendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  util::Status parseString(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    for (;;) {
      if (pos_ >= text_.size()) return error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return util::Status::ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::uint32_t cp = 0;
          RAP_JSON_RETURN_IF_ERROR(parseHex4(cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!consumeLiteral("\\u")) {
              return error("unpaired high surrogate");
            }
            std::uint32_t low = 0;
            RAP_JSON_RETURN_IF_ERROR(parseHex4(low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return error("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return error("unpaired low surrogate");
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          return error("bad escape character");
      }
    }
  }

  util::Status parseNumber(JsonValue& out) {
    const std::size_t begin = pos_;
    if (consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return error("bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return error("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return error("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(begin, pos_ - begin));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return error("number out of range");
    out.kind = JsonValue::Kind::kNumber;
    out.number_value = value;
    return util::Status::ok();
  }

#undef RAP_JSON_RETURN_IF_ERROR

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_value) {
    if (name == key) return &value;
  }
  return nullptr;
}

util::Result<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace rap::svc
