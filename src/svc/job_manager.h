// Localization job manager (src/svc) — a bounded priority queue of
// localization requests feeding a util::ThreadPool, with admission
// control, per-job config overrides, and a shared ResultCache.
//
// Why a queue in front of the pool: a CDN incident fans the same alarm
// out to many upstream detectors at once, so the service sees bursts far
// above its sustainable localization rate.  The pool alone would accept
// every burst and grow an invisible backlog; the bounded queue instead
// SHEDS load at admission time (submit() returns kOutOfRange -> HTTP 429
// with Retry-After) so callers get immediate, honest backpressure —
// the same philosophy as the stream engine's drop-oldest shard queues,
// but caller-visible because here the caller is a remote client that can
// retry.
//
// Priorities are small integers (higher = sooner); within a priority,
// FIFO by submission order.  Each admission dispatches a non-blocking
// drainOne closure through ThreadPool::submit; the closure pops and
// executes at most one job (bouncing off pause/quota/shutdown instead
// of parking a pool thread), so many managers can safely draw from one
// shared pool — the multi-tenant catalog gives every tenant its own
// manager, quota (`max_active`), and metric labels over a process-wide
// pool.  Each job runs under its own RapMiner built from the job's
// config (validated at admission — a bad override is a 400 at submit
// time, never a RAP_CHECK abort in a worker).
//
// Every execution consults the ResultCache first (keyed by the request's
// content hash) and stores its rendered result document on completion,
// so identical resubmissions — sync or async — are served bit-identical
// without re-running the search.
//
// Observability: rap_svc_* metrics (docs/observability.md), one
// "svc/execute" span per job, and a "svc/job" trace flow linking
// admission to execution across threads.  Fault points "svc.submit" and
// "svc.execute" (docs/robustness.md) let chaos tests fail admission and
// execution deterministically.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rapminer.h"
#include "dataset/leaf_table.h"
#include "obs/metrics.h"
#include "svc/overload.h"
#include "svc/result_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rap::svc {

class CircuitBreaker;

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
};

const char* jobStateName(JobState state) noexcept;

/// One admitted localization request.
struct JobRequest {
  explicit JobRequest(dataset::LeafTable snapshot)
      : table(std::move(snapshot)) {}

  dataset::LeafTable table;
  core::RapMinerConfig miner;  ///< validated by the caller (Builder)
  std::int32_t k = 5;
  /// Applied (relative-deviation detector) when the table carries no
  /// anomalous verdicts — a raw real/predict upload without labels.
  double detect_threshold = 0.095;
  std::int32_t priority = 0;  ///< higher runs sooner
  /// Content hash of the originating request (cache key); 0 = uncached.
  std::uint64_t cache_key = 0;
  /// Durable journal record backing this job; 0 = not journaled.  The
  /// on_terminal callback hands it back so the service can write the
  /// completion marker.
  std::uint64_t journal_record = 0;
};

/// Snapshot of one job's lifecycle, safe to serialize.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::int32_t priority = 0;
  bool cache_hit = false;
  /// Effective search deadline after clamping (0 = none) — surfaced in
  /// the job JSON so callers see the budget their job actually ran with.
  double deadline_seconds = 0.0;
  double queued_seconds = 0.0;  ///< admission -> start (or now)
  double run_seconds = 0.0;     ///< start -> finish (or now)
  std::string result_json;      ///< kDone only: rendered result document
  std::string error;            ///< kFailed only
};

class JobManager {
 public:
  struct Options {
    /// Queued (not yet running) jobs beyond which submit() sheds load.
    std::size_t queue_capacity = 64;
    /// Pool workers executing localizations.
    std::size_t workers = 2;
    /// Advisory Retry-After the service returns on shed load.
    double retry_after_seconds = 1.0;
    /// Finished jobs retained for GET /api/v1/jobs/<id>; older finished
    /// jobs are forgotten FIFO.
    std::size_t max_finished_jobs = 256;
    /// Jobs from this manager allowed to execute concurrently; 0 means
    /// bounded only by the pool.  This is the per-tenant admission
    /// quota when many managers draw from one shared pool — a burst on
    /// one tenant queues behind its own quota instead of starving the
    /// others' workers.
    std::size_t max_active = 0;
    /// Labels stamped on every rap_svc_* series this manager creates
    /// (the catalog passes {{"tenant", name}}); empty keeps the
    /// unlabeled legacy series.
    obs::Labels metric_labels;
    /// Execute on this externally owned pool instead of spawning
    /// `workers` dedicated threads.  The pool must outlive the manager;
    /// the destructor returns only after every closure this manager
    /// dispatched has left the pool, so tearing down one tenant never
    /// leaves a dangling task behind.
    util::ThreadPool* shared_pool = nullptr;
    /// CoDel-style queue-delay shedding (svc/overload.h): disabled by
    /// default (target 0), submit() sheds with Status::unavailable
    /// (-> 429 `overloaded`) when the head-of-line delay stays above
    /// target for a full interval.
    OverloadGuard::Options overload;
    /// Per-tenant circuit breaker recording execute outcomes; not
    /// owned, may be null (the LocalizeService wires its own).
    CircuitBreaker* breaker = nullptr;
    /// Fired (outside all manager locks) each time a QUEUED job reaches
    /// a terminal state — the journal's completion-marker hook.
    /// (id, journal_record, ok); not called for executeInline.
    std::function<void(std::uint64_t, std::uint64_t, bool)> on_terminal;
  };

  /// `cache` may be nullptr (no caching); it must outlive the manager.
  explicit JobManager(Options options, ResultCache* cache = nullptr);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Admits a job: the id on success, kOutOfRange when the queue is full
  /// (shed load — the HTTP layer maps this to 429), kUnavailable when
  /// the overload guard sheds on sustained queue delay (429 with the
  /// `overloaded` code), kFailedPrecondition after shutdown began.
  util::Result<std::uint64_t> submit(JobRequest request);

  /// The journal-replay admission path: the work was accepted (and
  /// answered 202) before the crash, so capacity and overload checks do
  /// not apply — only the shutdown check.  No "svc.submit" fault point.
  util::Result<std::uint64_t> resubmit(JobRequest request);

  /// Runs a request synchronously on the calling thread (the service's
  /// sync mode) — same cache/execute path as queued jobs, no admission
  /// control.  Returns the rendered result document.
  util::Result<std::string> executeInline(JobRequest request);

  /// While paused, admitted jobs stay queued (workers idle); tests use
  /// this to fill the bounded queue deterministically.
  void pause();
  void resume();
  bool paused() const;

  std::optional<JobStatus> status(std::uint64_t id) const;
  /// All known jobs (queued, running, retained finished), newest first.
  std::vector<JobStatus> list() const;

  std::size_t queueDepth() const;
  const Options& options() const noexcept { return options_; }

  /// Blocks until every admitted job has finished (test helper).
  void drain();

 private:
  struct Job {
    Job(std::uint64_t job_id, JobRequest job_request)
        : id(job_id), request(std::move(job_request)) {}

    std::uint64_t id = 0;
    JobRequest request;
    JobState state = JobState::kQueued;
    bool cache_hit = false;
    std::string result_json;
    std::string error;
    std::chrono::steady_clock::time_point admitted;
    std::chrono::steady_clock::time_point started;
    std::chrono::steady_clock::time_point finished;
  };

  /// Executes one request outside any lock; fills result/error/cache_hit.
  struct ExecOutcome {
    bool ok = false;
    bool cache_hit = false;
    std::string result_json;
    std::string error;
  };
  /// executeImpl + circuit-breaker outcome recording.
  ExecOutcome execute(const JobRequest& request, std::uint64_t id);
  ExecOutcome executeImpl(const JobRequest& request, std::uint64_t id);

  /// Shared admission tail of submit()/resubmit(); `privileged` skips
  /// the capacity and overload gates.
  util::Result<std::uint64_t> admit(JobRequest request, bool privileged);
  void drainOne();
  void finishJob(std::shared_ptr<Job> job, ExecOutcome outcome);
  JobStatus snapshotLocked(const Job& job) const;
  /// Submits `n` drainOne closures to the executing pool.  Must run
  /// under mutex_ with stopping_ false: holding the lock serializes
  /// dispatch against the destructor's stopping_ flip, so a closure is
  /// never pushed into a pool that is (or is about to be) torn down.
  void dispatchLocked(std::size_t n);
  obs::Labels labelsWith(const char* key, const char* value) const;

  Options options_;
  ResultCache* cache_;  ///< not owned; may be null

  /// Search workspaces retained across jobs.  Each execute() builds a
  /// fresh per-request RapMiner (the config is per-job), but the kernel
  /// transpose + aggregation scratch are shape-keyed, not config-keyed,
  /// so leasing them from a manager-wide pool makes the steady-state
  /// localize path allocation-free even though the miner is ephemeral.
  core::WorkspacePool localize_workspaces_;

  mutable std::mutex mutex_;
  OverloadGuard overload_;  ///< guarded by mutex_ (admission path only)
  std::condition_variable idle_;
  bool paused_ = false;
  bool stopping_ = false;
  /// drainOne closures dispatched to the pool and not yet returned —
  /// the destructor's safe-teardown barrier on a shared pool.
  std::size_t tasks_outstanding_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  /// Queued jobs ordered (-priority, admission seq) so begin() is the
  /// next job to run.
  std::map<std::pair<std::int64_t, std::uint64_t>, std::shared_ptr<Job>>
      pending_;
  std::size_t active_ = 0;  ///< jobs currently executing
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::uint64_t> finished_order_;  ///< retention FIFO

  // Metrics (null when the obs gate is off at construction).
  obs::Counter* jobs_submitted_ = nullptr;
  obs::Counter* jobs_done_ = nullptr;
  obs::Counter* jobs_failed_ = nullptr;
  obs::Counter* admission_rejected_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* jobs_running_ = nullptr;
  obs::Histogram* job_seconds_ = nullptr;
  obs::Histogram* queue_delay_ = nullptr;  ///< rap_svc_queue_delay_seconds

  /// Last member: joins its workers first on destruction, while the
  /// members above are still alive for in-flight drainOne() calls.
  /// Null when options_.shared_pool supplies the workers.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace rap::svc
