#include "svc/result_cache.h"

#include <utility>

namespace rap::svc {

ResultCache::ResultCache(Options options) : options_(options) {}

std::optional<std::string> ResultCache::getAt(std::uint64_t key,
                                              Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (expired(*it->second, now)) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  // Refresh recency (TTL stays anchored at insertion time).
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return lru_.front().value;
}

std::optional<std::string> ResultCache::peekStale(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  // Deliberately no expiry check, no recency refresh, no stat counters:
  // this is a read-only last-resort peek, not a cache access.
  return it->second->value;
}

void ResultCache::putAt(std::uint64_t key, std::string value,
                        Clock::time_point now) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    it->second->inserted = now;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value), now});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ResultCache::CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace rap::svc
