#include "svc/job_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "svc/catalog.h"
#include "svc/snapshot.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rap::svc {

namespace {

constexpr char kHeader[] = "RAPJRNL 1\n";

util::Status errnoStatus(const std::string& what, const std::string& path) {
  return util::Status::internal(what + " '" + path +
                                "': " + std::strerror(errno));
}

/// Full write with EINTR/partial-write handling.
bool writeAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

JobJournal::JobJournal(Options options) : options_(std::move(options)) {
  if (obs::metricsEnabled()) {
    auto& reg = obs::defaultRegistry();
    appended_ = &reg.counter("rap_svc_journal_appended_total");
    dropped_ = &reg.counter("rap_svc_journal_dropped_total");
  }
}

JobJournal::~JobJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
}

util::Result<std::unique_ptr<JobJournal>> JobJournal::open(Options options) {
  if (options.path.empty()) {
    return util::Status::invalidArgument("journal path is empty");
  }
  std::unique_ptr<JobJournal> journal(new JobJournal(std::move(options)));
  std::lock_guard<std::mutex> lock(journal->mutex_);

  std::string text;
  {
    std::ifstream in(journal->options_.path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  if (!text.empty() &&
      !util::startsWith(text, std::string_view(kHeader, sizeof(kHeader) - 2))) {
    // Refuse to adopt (and later overwrite) a file that was never ours.
    return util::Status::invalidArgument("'" + journal->options_.path +
                                         "' is not a RAPJRNL journal");
  }
  if (!text.empty()) {
    const std::size_t damaged = journal->recoverLocked(text);
    if (damaged > 0) {
      RAP_LOG_KV(Warn, {"path", journal->options_.path},
                 {"damaged_bytes", damaged})
          << "journal tail damaged (crash mid-append); truncating";
    }
  }
  // Rewriting live records heals any damaged tail and drops completed
  // history, so the append fd below always starts from a clean file.
  RAP_RETURN_IF_ERROR(journal->compactLocked());
  if (journal->dropped_ != nullptr && journal->recovery_dropped_ > 0) {
    journal->dropped_->increment(journal->recovery_dropped_);
  }
  return journal;
}

std::size_t JobJournal::recoverLocked(const std::string& text) {
  std::size_t pos = sizeof(kHeader) - 1;  // past "RAPJRNL 1\n"
  if (text.size() < pos || text.compare(0, pos, kHeader) != 0) {
    recovery_dropped_ += 1;
    return text.size();
  }
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // unterminated line: damaged tail
    const std::string line = text.substr(pos, nl - pos);
    std::size_t next = nl + 1;

    if (util::startsWith(line, "A ")) {
      const auto fields = util::split(line, ' ');
      if (fields.size() != 8) break;
      const auto id = util::parseInt(fields[1]);
      const auto priority = util::parseInt(fields[3]);
      const auto qlen = util::parseInt(fields[6]);
      const auto blen = util::parseInt(fields[7]);
      // The body hash is a full 64-bit value (can exceed INT64_MAX), so
      // it travels as fixed-width hex rather than through parseInt.
      char* hash_end = nullptr;
      const std::uint64_t hash =
          std::strtoull(fields[5].c_str(), &hash_end, 16);
      if (!id || !priority || !qlen || !blen || *id <= 0 || *qlen < 0 ||
          *blen < 0 || fields[5].empty() || hash_end == nullptr ||
          *hash_end != '\0' || (fields[4] != "csv" && fields[4] != "json")) {
        break;
      }
      // Both byte runs are length-prefixed and '\n'-framed; anything
      // short of that is the torn tail of a crashed append.
      const auto query_len = static_cast<std::size_t>(*qlen);
      const auto body_len = static_cast<std::size_t>(*blen);
      if (next + query_len >= text.size() || text[next + query_len] != '\n') {
        break;
      }
      std::string query = text.substr(next, query_len);
      next += query_len + 1;
      if (next + body_len >= text.size() || text[next + body_len] != '\n') {
        break;
      }
      std::string body = text.substr(next, body_len);
      next += body_len + 1;

      const auto record_id = static_cast<std::uint64_t>(*id);
      next_id_ = std::max(next_id_, record_id + 1);
      if (contentHash(body) != hash) {
        // Torn or bit-rotted storage: never replay a body we cannot
        // prove is the one that was accepted.
        recovery_dropped_ += 1;
        RAP_LOG_KV(Warn, {"record", record_id})
            << "journal record body hash mismatch; dropped";
      } else {
        Record record;
        record.id = record_id;
        record.tenant = fields[2];
        record.priority = static_cast<std::int32_t>(*priority);
        record.content_type = fields[4];
        record.query = std::move(query);
        record.body = std::move(body);
        live_.emplace(record_id, std::move(record));
      }
    } else if (util::startsWith(line, "C ")) {
      const auto fields = util::split(line, ' ');
      if (fields.size() != 3) break;
      const auto id = util::parseInt(fields[1]);
      if (!id || *id <= 0) break;
      live_.erase(static_cast<std::uint64_t>(*id));
    } else if (!util::trim(line).empty()) {
      break;  // unknown record type: stop before misinterpreting bytes
    }
    pos = next;
  }
  if (pos < text.size()) {
    recovery_dropped_ += 1;
    return text.size() - pos;
  }
  return 0;
}

std::string JobJournal::renderLocked(const Record& record) const {
  std::string out = util::strFormat(
      "A %llu %s %d %s %016llx %zu %zu\n",
      static_cast<unsigned long long>(record.id), record.tenant.c_str(),
      record.priority, record.content_type.c_str(),
      static_cast<unsigned long long>(contentHash(record.body)),
      record.query.size(), record.body.size());
  out += record.query;
  out += '\n';
  out += record.body;
  out += '\n';
  return out;
}

util::Status JobJournal::compactLocked() {
  std::string content = kHeader;
  for (const auto& [id, record] : live_) content += renderLocked(record);

  const std::string tmp = options_.path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errnoStatus("cannot create", tmp);
  if (!writeAll(fd, content.data(), content.size())) {
    ::close(fd);
    return errnoStatus("cannot write", tmp);
  }
  if (options_.fsync && ::fsync(fd) != 0) {
    ::close(fd);
    return errnoStatus("cannot fsync", tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    return errnoStatus("cannot rename into", options_.path);
  }

  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(options_.path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) return errnoStatus("cannot reopen", options_.path);
  file_bytes_ = content.size();
  return util::Status::ok();
}

util::Status JobJournal::writeLocked(const std::string& bytes) {
  if (fd_ < 0) return util::Status::internal("journal file is not open");
  if (!writeAll(fd_, bytes.data(), bytes.size())) {
    return errnoStatus("cannot append to", options_.path);
  }
  if (options_.fsync && ::fsync(fd_) != 0) {
    return errnoStatus("cannot fsync", options_.path);
  }
  file_bytes_ += bytes.size();
  if (options_.compact_bytes > 0 && file_bytes_ > options_.compact_bytes) {
    // Best effort: a failed compaction leaves the (valid, just large)
    // append-only file in place.
    const util::Status compacted = compactLocked();
    if (!compacted.isOk()) {
      RAP_LOG_KV(Warn, {"path", options_.path})
          << "journal compaction failed: " << compacted.toString();
    }
  }
  return util::Status::ok();
}

util::Result<std::uint64_t> JobJournal::append(Record record) {
  RAP_RETURN_IF_ERROR(RAP_FAULT_STATUS("svc.journal.append"));
  std::lock_guard<std::mutex> lock(mutex_);
  record.id = next_id_++;
  const std::uint64_t id = record.id;
  RAP_RETURN_IF_ERROR(writeLocked(renderLocked(record)));
  live_.emplace(id, std::move(record));
  if (appended_ != nullptr) appended_->increment();
  return id;
}

void JobJournal::complete(std::uint64_t record_id, const char* state) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (live_.erase(record_id) == 0) return;
  const util::Status written = writeLocked(util::strFormat(
      "C %llu %s\n", static_cast<unsigned long long>(record_id), state));
  if (!written.isOk()) {
    // Losing a completion marker is safe (the record replays, the
    // cache serves the stored document); losing the job would not be.
    RAP_LOG_KV(Warn, {"record", record_id})
        << "journal completion not recorded: " << written.toString();
  }
}

std::vector<JobJournal::Record> JobJournal::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Record> out;
  out.reserve(live_.size());
  for (const auto& [id, record] : live_) out.push_back(record);
  return out;
}

std::size_t JobJournal::liveCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

ReplaySummary replayJournal(JobJournal& journal, DatasetCatalog& catalog) {
  ReplaySummary summary;
  obs::Counter* replayed = nullptr;
  obs::Counter* dropped = nullptr;
  if (obs::metricsEnabled()) {
    auto& reg = obs::defaultRegistry();
    replayed = &reg.counter("rap_svc_journal_replayed_total");
    dropped = &reg.counter("rap_svc_journal_dropped_total");
  }

  for (const JobJournal::Record& record : journal.pending()) {
    const char* drop_reason = nullptr;
    if (const util::Status injected = RAP_FAULT_STATUS("svc.journal.replay");
        !injected.isOk()) {
      drop_reason = "injected fault";
    } else if (auto tenant = catalog.find(record.tenant); tenant == nullptr) {
      drop_reason = "unknown tenant";
    } else if (auto job = tenant->service->replayJob(record); !job.isOk()) {
      // A spec change since the crash (schema swap, knob bounds) can
      // invalidate a recorded request; dropping beats aborting startup.
      drop_reason = "not replayable";
    }

    if (drop_reason != nullptr) {
      RAP_LOG_KV(Warn, {"record", record.id}, {"tenant", record.tenant},
                 {"reason", drop_reason})
          << "journal record dropped on replay";
      journal.complete(record.id, "dropped");
      ++summary.dropped;
      if (dropped != nullptr) dropped->increment();
      continue;
    }
    ++summary.replayed;
    if (replayed != nullptr) replayed->increment();
  }
  return summary;
}

}  // namespace rap::svc
