#include "svc/router.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "obs/build_info.h"
#include "stream/event.h"
#include "stream/queue.h"
#include "svc/tenant_config.h"
#include "util/strings.h"

namespace rap::svc {

namespace {

constexpr char kTenantsPrefix[] = "/api/v1/tenants/";

obs::HttpResponse jsonResponse(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json; charset=utf-8";
  response.body = std::move(body);
  return response;
}

/// One tenant's JSON section (shared by GET detail, the list, and
/// /statusz).  Tenant names are [A-Za-z0-9_-], so they embed verbatim.
std::string tenantJson(const DatasetCatalog::Tenant& tenant) {
  std::string out = "{";
  out += "\"name\":\"" + tenant.spec.name + "\",";

  const dataset::Schema& schema = tenant.spec.schema;
  out += "\"schema\":{\"attributes\":[";
  for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
    if (a > 0) out += ",";
    out += util::strFormat("{\"name\":\"%s\",\"cardinality\":%d}",
                           schema.attribute(a).name().c_str(),
                           schema.cardinality(a));
  }
  out += util::strFormat("],\"leaves\":%llu},",
                         static_cast<unsigned long long>(schema.leafCount()));

  const LocalizeService::Options& options = tenant.service->options();
  out += util::strFormat(
      "\"config\":{\"k\":%d,\"t_cp\":%.9g,\"t_conf\":%.9g,"
      "\"detect_threshold\":%.9g,\"sync_row_limit\":%llu},",
      options.default_k, tenant.spec.miner.cp.t_cp,
      tenant.spec.miner.search.t_conf, options.default_detect_threshold,
      static_cast<unsigned long long>(options.sync_row_limit));

  out += util::strFormat(
      "\"jobs\":{\"queue_depth\":%llu,\"queue_capacity\":%llu,"
      "\"max_active\":%llu},",
      static_cast<unsigned long long>(tenant.service->jobs().queueDepth()),
      static_cast<unsigned long long>(options.jobs.queue_capacity),
      static_cast<unsigned long long>(options.jobs.max_active));

  const ResultCache::CacheStats cache = tenant.service->cache().stats();
  out += util::strFormat(
      "\"cache\":{\"size\":%llu,\"hits\":%llu,\"misses\":%llu},",
      static_cast<unsigned long long>(tenant.service->cache().size()),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses));

  const CircuitBreaker& breaker = tenant.service->breaker();
  out += util::strFormat(
      "\"breaker\":{\"enabled\":%s,\"state\":\"%s\","
      "\"consecutive_failures\":%llu},",
      breaker.enabled() ? "true" : "false",
      breakerStateName(breaker.state()),
      static_cast<unsigned long long>(breaker.consecutiveFailures()));
  out += util::strFormat("\"quarantined\":%s,",
                         tenant.quarantined() ? "true" : "false");

  const auto engine = tenant.engine();
  out += util::strFormat("\"streaming\":%s",
                         engine != nullptr ? "true" : "false");
  if (engine != nullptr) {
    const stream::StreamStats stats = engine->stats();
    out += util::strFormat(
        ",\"stream\":{\"running\":%s,\"ingested\":%llu,\"rejected\":%llu,"
        "\"windows_sealed\":%llu,\"localizations\":%llu,"
        "\"queue_depth\":%lld}",
        engine->running() ? "true" : "false",
        static_cast<unsigned long long>(stats.ingested),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.windows_sealed),
        static_cast<unsigned long long>(stats.localizations),
        static_cast<long long>(stats.queue_depth));
  }
  out += "}";
  return out;
}

/// Parses one ingest CSV row: ts,elem1,...,elemN,real,predict.
util::Result<stream::StreamEvent> parseIngestRow(
    const dataset::Schema& schema, const std::string& line) {
  const std::vector<std::string> fields = util::split(line, ',');
  const std::size_t expected =
      static_cast<std::size_t>(schema.attributeCount()) + 3;
  if (fields.size() != expected) {
    return util::Status::invalidArgument(util::strFormat(
        "expected %zu fields (ts,attrs...,real,predict), got %zu", expected,
        fields.size()));
  }
  stream::StreamEvent event;
  const auto ts = util::parseInt(util::trim(fields[0]));
  RAP_RETURN_IF_ERROR(ts.status());
  event.ts = ts.value();

  std::vector<dataset::ElemId> slots;
  slots.reserve(static_cast<std::size_t>(schema.attributeCount()));
  for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
    const auto elem = schema.attribute(a).elementId(
        std::string(util::trim(fields[static_cast<std::size_t>(a) + 1])));
    RAP_RETURN_IF_ERROR(elem.status());
    slots.push_back(elem.value());
  }
  event.leaf = dataset::AttributeCombination(std::move(slots));

  const auto v = util::parseDouble(util::trim(fields[expected - 2]));
  RAP_RETURN_IF_ERROR(v.status());
  const auto f = util::parseDouble(util::trim(fields[expected - 1]));
  RAP_RETURN_IF_ERROR(f.status());
  event.v = v.value();
  event.f = f.value();
  return event;
}

}  // namespace

TenantRouter::TenantRouter(DatasetCatalog& catalog)
    : TenantRouter(catalog, Options{}) {}

TenantRouter::TenantRouter(DatasetCatalog& catalog, Options options)
    : catalog_(catalog), options_(std::move(options)) {}

void TenantRouter::installEndpoints(obs::AdminServer& server) {
  server.handle("/api/v1/tenants",
                [this](const obs::HttpRequest& request) {
                  return handleTenantsList(request);
                });
  // One method-scoped prefix route per verb; the tenant name is parsed
  // from the path at request time, so PUT-created tenants are routable
  // without touching the (immutable) route table.
  for (const obs::HttpMethod method :
       {obs::HttpMethod::kGet, obs::HttpMethod::kPost, obs::HttpMethod::kPut,
        obs::HttpMethod::kDelete}) {
    server.handleMethod(method, kTenantsPrefix, /*prefix=*/true,
                        [this](const obs::HttpRequest& request) {
                          return route(request);
                        });
  }

  // Legacy single-tenant aliases: resolve "default" per request.
  server.handlePost("/api/v1/localize", [this](const obs::HttpRequest& r) {
    auto tenant = catalog_.find("default");
    if (tenant == nullptr) {
      return obs::errorResponse(404, "not_found", "no default tenant");
    }
    return tenant->service->handleLocalize(r);
  });
  server.handle("/api/v1/jobs", [this](const obs::HttpRequest& r) {
    auto tenant = catalog_.find("default");
    if (tenant == nullptr) {
      return obs::errorResponse(404, "not_found", "no default tenant");
    }
    return tenant->service->handleJobsList(r);
  });
  server.handlePrefix("/api/v1/jobs/", [this](const obs::HttpRequest& r) {
    auto tenant = catalog_.find("default");
    if (tenant == nullptr) {
      return obs::errorResponse(404, "not_found", "no default tenant");
    }
    return tenant->service->handleJobGet(r);
  });

  server.handle("/statusz", [this](const obs::HttpRequest& request) {
    return handleStatusz(request);
  });
}

obs::HttpResponse TenantRouter::route(const obs::HttpRequest& request) {
  // Fault point "svc.tenant": tenant resolution is the seam every
  // resource request crosses; kError/kDrop shed the request with a 503
  // (clients retry), kThrow propagates to the server's 500 path.
  if (const util::Status injected = RAP_FAULT_STATUS("svc.tenant");
      !injected.isOk()) {
    return obs::errorResponse(503, "tenant_unavailable", injected.message());
  }

  std::string rest = request.path.substr(sizeof(kTenantsPrefix) - 1);
  std::string name;
  std::string sub;
  const std::size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    name = std::move(rest);
  } else {
    name = rest.substr(0, slash);
    sub = rest.substr(slash + 1);
  }
  if (const util::Status valid = validateTenantName(name); !valid.isOk()) {
    return obs::errorResponse(400, "bad_parameter", valid.message());
  }

  if (sub.empty()) {
    if (request.method == "PUT") return handleTenantPut(name, request);
    if (request.method == "DELETE") return handleTenantDelete(name);
    if (request.method == "GET" || request.method == "HEAD") {
      auto tenant = catalog_.find(name);
      if (tenant == nullptr) {
        return obs::errorResponse(404, "not_found",
                                  "no such tenant '" + name + "'");
      }
      return handleTenantGet(*tenant);
    }
    return obs::errorResponse(405, "method_not_allowed",
                              "unsupported method on tenant resource");
  }

  // Sub-resources require a live tenant; holding the shared_ptr keeps
  // it alive across a concurrent DELETE.
  auto tenant = catalog_.find(name);
  if (tenant == nullptr) {
    return obs::errorResponse(404, "not_found",
                              "no such tenant '" + name + "'");
  }
  if (tenant->quarantined()) {
    // The supervisor gave up restarting this tenant's engine; only
    // delete + re-put revives it (docs/robustness.md).
    return obs::errorResponse(503, "tenant_unavailable",
                              "tenant '" + name +
                                  "' is quarantined (engine restarts "
                                  "exhausted)");
  }

  if (sub == "localize") {
    if (request.method != "POST") {
      return obs::errorResponse(405, "method_not_allowed",
                                "localize requires POST");
    }
    return tenant->service->handleLocalize(request);
  }
  if (sub == "ingest") {
    if (request.method != "POST") {
      return obs::errorResponse(405, "method_not_allowed",
                                "ingest requires POST");
    }
    return handleIngest(*tenant, request);
  }
  if (sub == "jobs") {
    if (request.method != "GET" && request.method != "HEAD") {
      return obs::errorResponse(405, "method_not_allowed",
                                "jobs listing requires GET");
    }
    return tenant->service->handleJobsList(request);
  }
  if (util::startsWith(sub, "jobs/")) {
    if (request.method != "GET" && request.method != "HEAD") {
      return obs::errorResponse(405, "method_not_allowed",
                                "job detail requires GET");
    }
    // Rebase onto the service's own prefix so the default tenant (whose
    // canonical job URLs are the legacy un-prefixed ones) parses too.
    obs::HttpRequest rebased = request;
    rebased.path = tenant->service->options().jobs_path_prefix +
                   sub.substr(sizeof("jobs/") - 1);
    return tenant->service->handleJobGet(rebased);
  }
  return obs::errorResponse(404, "not_found",
                            "unknown tenant resource '" + sub + "'");
}

obs::HttpResponse TenantRouter::handleTenantsList(
    const obs::HttpRequest& request) {
  (void)request;
  std::string body = "{\"tenants\":[";
  bool first = true;
  for (const auto& tenant : catalog_.list()) {
    if (!first) body += ",";
    first = false;
    body += util::strFormat(
        "{\"name\":\"%s\",\"streaming\":%s,\"queue_depth\":%llu}",
        tenant->spec.name.c_str(),
        tenant->engine() != nullptr ? "true" : "false",
        static_cast<unsigned long long>(tenant->service->jobs().queueDepth()));
  }
  body += "]}\n";
  return jsonResponse(200, std::move(body));
}

obs::HttpResponse TenantRouter::handleTenantGet(
    const DatasetCatalog::Tenant& tenant) {
  return jsonResponse(200, tenantJson(tenant) + "\n");
}

obs::HttpResponse TenantRouter::handleTenantPut(
    const std::string& name, const obs::HttpRequest& request) {
  const auto doc = JsonValue::parse(request.body);
  if (!doc.isOk()) {
    return obs::errorResponse(400, "bad_request", doc.status().message());
  }
  auto spec = parseTenantSpec(*doc, name, options_.schema_base_dir);
  if (!spec.isOk()) {
    return obs::errorResponse(400, "bad_parameter", spec.status().message());
  }
  const util::Status put = catalog_.put(std::move(spec.value()));
  if (!put.isOk()) {
    if (put.code() == util::StatusCode::kFailedPrecondition) {
      return obs::errorResponse(409, "already_exists", put.message());
    }
    return obs::errorResponse(400, "bad_parameter", put.message());
  }
  return jsonResponse(
      201, "{\"tenant\":\"" + name + "\",\"status\":\"created\"}\n");
}

obs::HttpResponse TenantRouter::handleTenantDelete(const std::string& name) {
  if (name == "default") {
    // The legacy aliases route through it; a deployment that wants it
    // gone should not be running the compatibility surface at all.
    return obs::errorResponse(403, "protected",
                              "the default tenant cannot be deleted");
  }
  auto removed = catalog_.remove(name);
  if (!removed.isOk()) {
    return obs::errorResponse(404, "not_found", removed.status().message());
  }
  // Drain before answering: stop the engine (seals + localizes whatever
  // is buffered), then destroy the service, whose JobManager runs down
  // in-flight jobs.  A 200 means the tenant is GONE, not going.
  if (auto engine = removed.value()->engine()) engine->stop();
  removed.value().reset();
  return jsonResponse(
      200, "{\"tenant\":\"" + name + "\",\"status\":\"deleted\"}\n");
}

obs::HttpResponse TenantRouter::handleIngest(DatasetCatalog::Tenant& tenant,
                                             const obs::HttpRequest& request) {
  const auto engine = tenant.engine();
  if (engine == nullptr) {
    return obs::errorResponse(409, "not_streaming",
                              "tenant '" + tenant.spec.name +
                                  "' has no stream engine (set "
                                  "\"streaming\" in its spec)");
  }
  if (request.body.empty()) {
    return obs::errorResponse(400, "bad_request", "empty ingest body");
  }

  // Parse the whole batch before touching the engine: a malformed row is
  // a 400 with its line number and NOTHING ingested, so a client can fix
  // and resubmit without double-counting the good rows.
  std::vector<stream::StreamEvent> events;
  std::size_t line_no = 0;
  for (const std::string& line : util::split(request.body, '\n')) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (line_no == 1 && util::startsWith(trimmed, "ts,")) continue;  // header
    auto event = parseIngestRow(tenant.spec.schema, line);
    if (!event.isOk()) {
      return obs::errorResponse(
          400, "bad_request",
          util::strFormat("row %zu: ", line_no) + event.status().message());
    }
    events.push_back(std::move(event.value()));
  }
  if (events.empty()) {
    return obs::errorResponse(400, "bad_request", "no data rows in body");
  }

  const stream::PushResult result = engine->ingestBatch(std::move(events));
  std::string body = util::strFormat(
      "{\"accepted\":%llu,\"dropped_oldest\":%llu,\"dropped_newest\":%llu",
      static_cast<unsigned long long>(result.accepted),
      static_cast<unsigned long long>(result.dropped_oldest),
      static_cast<unsigned long long>(result.dropped_newest));
  if (result.max_accepted_ts != stream::PushResult::kNoTimestamp) {
    body += util::strFormat(",\"max_accepted_ts\":%lld",
                            static_cast<long long>(result.max_accepted_ts));
  }
  body += "}\n";
  return jsonResponse(200, std::move(body));
}

obs::HttpResponse TenantRouter::handleStatusz(
    const obs::HttpRequest& request) {
  (void)request;
  std::string out = "{";
  out += "\"build\":" + obs::buildInfoJson() + ",";
  out += util::strFormat("\"tenant_count\":%llu,",
                         static_cast<unsigned long long>(catalog_.size()));
  out += "\"tenants\":[";
  bool first = true;
  for (const auto& tenant : catalog_.list()) {
    if (!first) out += ",";
    first = false;
    out += tenantJson(*tenant);
  }
  out += "]}\n";
  return jsonResponse(200, std::move(out));
}

}  // namespace rap::svc
