// Durable job journal (src/svc) — a write-ahead log of accepted async
// localization jobs, so `kill -9` mid-queue loses no accepted work.
//
// The serving plane answers 202 the moment a job is admitted; without a
// journal that acknowledgement is a lie across a crash — the queue is
// process memory.  The journal makes the 202 durable: the service
// appends (and fsyncs) an A record BEFORE the job enters the queue, and
// a C record when the job reaches a terminal state.  On restart,
// replayJournal() resubmits every A record without a matching C through
// the same admission-free path; because localization is deterministic
// and the ResultCache key is a content hash over the recorded raw body
// bytes, a replayed job renders the bit-identical result document the
// original admission would have.
//
// Crash-ordering contract: append -> fsync -> admit -> answer 202.  A
// crash between append and admit replays a job the client never got a
// 202 for (harmless at-least-once); a crash after the C record is a
// clean no-op on replay.  An append FAILURE is honest backpressure —
// the service answers 503 `journal_unavailable` instead of accepting
// work it cannot promise to keep.
//
// ## Format (`RAPJRNL 1`, versioned line-based text + raw byte runs)
//
//   RAPJRNL 1
//   A <id> <tenant> <priority> <csv|json> <body_hash> <qlen> <blen>
//   <qlen raw query bytes>\n
//   <blen raw body bytes>\n
//   C <id> <done|failed|shed|dropped>
//
// Bodies contain newlines, so both byte runs are length-prefixed by the
// A line and terminated by one framing '\n'.  `body_hash` is
// svc::contentHash over the body bytes; a mismatch on replay means
// torn/corrupt storage and drops the record (counted, never served).
// A truncated tail — the signature of a crash mid-append — is
// tolerated: parsing stops at the damage and every record before it
// survives.
//
// open() always rewrites the file to live records only via the
// tmp+rename idiom (same as io/checkpoint.cpp), which both compacts
// the completed history and heals any truncated tail; at runtime the
// file is compacted again whenever it outgrows `compact_bytes`.
//
// Thread-safe (one mutex; appends are rare next to localizations).
// Metrics: rap_svc_journal_appended_total / _replayed_total /
// _dropped_total (process-wide — the journal is shared by every
// tenant; record ids are unique across the process).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace rap::obs {
class Counter;
}  // namespace rap::obs

namespace rap::svc {

class DatasetCatalog;

class JobJournal {
 public:
  struct Options {
    /// Journal file path; the directory must exist.
    std::string path;
    /// Rewrite live records (tmp+rename) when the file exceeds this
    /// many bytes; 0 never compacts at runtime.
    std::size_t compact_bytes = 8u << 20;
    /// fsync after every append/complete.  Tests may disable it; the
    /// durability contract requires it on.
    bool fsync = true;
  };

  /// One accepted-but-not-terminal job, exactly as admitted.
  struct Record {
    std::uint64_t id = 0;
    std::string tenant;
    std::int32_t priority = 0;
    std::string content_type;  ///< "csv" or "json"
    std::string query;         ///< raw query string of the admission
    std::string body;          ///< raw request body bytes
  };

  /// Opens (creating if absent) the journal at options.path, recovers
  /// its live records, and compacts the file.  Records whose body hash
  /// does not verify are dropped and counted.
  static util::Result<std::unique_ptr<JobJournal>> open(Options options);

  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Appends one accepted job (record.id is assigned, the file is
  /// fsync'd) and returns the record id.  Fault point
  /// "svc.journal.append" fails the append -> the service sheds the
  /// request instead of accepting non-durable work.
  util::Result<std::uint64_t> append(Record record);

  /// Marks a record terminal ("done", "failed", "shed", "dropped").
  /// Unknown ids are ignored (a compaction may have raced a late
  /// completion).
  void complete(std::uint64_t record_id, const char* state);

  /// Live (appended, not completed) records in id order — the replay
  /// set at open() time, plus anything appended since.
  std::vector<Record> pending() const;

  std::size_t liveCount() const;
  /// Records dropped during recovery (hash mismatch / damaged tail).
  std::uint64_t recoveryDropped() const noexcept { return recovery_dropped_; }
  const Options& options() const noexcept { return options_; }

 private:
  explicit JobJournal(Options options);

  util::Status openFileLocked();
  util::Status writeLocked(const std::string& bytes);
  std::string renderLocked(const Record& record) const;
  util::Status compactLocked();
  /// Parses `text` into live_/next_id_; returns bytes of damaged tail
  /// dropped (0 = clean file).
  std::size_t recoverLocked(const std::string& text);

  Options options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::size_t file_bytes_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t recovery_dropped_ = 0;
  std::map<std::uint64_t, Record> live_;

  obs::Counter* appended_ = nullptr;  ///< rap_svc_journal_appended_total
  obs::Counter* dropped_ = nullptr;   ///< rap_svc_journal_dropped_total
};

/// Replays every pending record of `journal` into `catalog`: resolves
/// the tenant, re-derives the job from the recorded query + body, and
/// resubmits it through the admission-free replay path (capacity and
/// overload checks do not apply — the work was already accepted).
/// Records that cannot be replayed (unknown tenant, malformed after a
/// config change, "svc.journal.replay" fault) are completed as
/// "dropped" and counted.  Returns (replayed, dropped).
struct ReplaySummary {
  std::size_t replayed = 0;
  std::size_t dropped = 0;
};
ReplaySummary replayJournal(JobJournal& journal, DatasetCatalog& catalog);

}  // namespace rap::svc
