#include "svc/breaker.h"

#include <utility>

#include "fault/fault.h"
#include "util/logging.h"

namespace rap::svc {

const char* breakerStateName(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(Options options) : options_(std::move(options)) {
  if (enabled() && obs::metricsEnabled()) {
    state_gauge_ = &obs::defaultRegistry().gauge("rap_svc_breaker_state",
                                                 options_.metric_labels);
  }
}

void CircuitBreaker::setStateLocked(BreakerState state) {
  if (state == state_) return;
  RAP_LOG_KV(Warn, {"from", breakerStateName(state_)},
             {"to", breakerStateName(state)})
      << "circuit breaker transition";
  state_ = state;
  if (state_gauge_ != nullptr) {
    state_gauge_->set(static_cast<double>(state));
  }
  if (state == BreakerState::kHalfOpen) {
    probes_admitted_ = 0;
    probes_succeeded_ = 0;
  }
}

bool CircuitBreaker::allowAt(Clock::time_point now) {
  if (!enabled()) return true;
  // Fault point "svc.breaker": a kError/kDrop fire trips the breaker
  // open, so chaos tests exercise the open/half-open machinery without
  // needing `failure_threshold` real failures first.
  if (const util::Status injected = RAP_FAULT_STATUS("svc.breaker");
      !injected.isOk()) {
    tripAt(now);
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const double waited =
          std::chrono::duration<double>(now - opened_at_).count();
      if (waited < options_.open_seconds) return false;
      setStateLocked(BreakerState::kHalfOpen);
      [[fallthrough]];
    }
    case BreakerState::kHalfOpen:
      if (probes_admitted_ >= options_.half_open_probes) return false;
      ++probes_admitted_;
      return true;
  }
  return true;
}

void CircuitBreaker::recordSuccess() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    if (++probes_succeeded_ >= options_.half_open_probes) {
      setStateLocked(BreakerState::kClosed);
    }
  }
}

void CircuitBreaker::recordFailureAt(Clock::time_point now) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen ||
      (state_ == BreakerState::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    opened_at_ = now;
    setStateLocked(BreakerState::kOpen);
  }
}

void CircuitBreaker::tripAt(Clock::time_point now) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  opened_at_ = now;
  setStateLocked(BreakerState::kOpen);
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::consecutiveFailures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

double CircuitBreaker::secondsUntilProbeAt(Clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BreakerState::kOpen) return 0.0;
  const double waited = std::chrono::duration<double>(now - opened_at_).count();
  return waited >= options_.open_seconds ? 0.0
                                         : options_.open_seconds - waited;
}

}  // namespace rap::svc
