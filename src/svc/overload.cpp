#include "svc/overload.h"

namespace rap::svc {

bool OverloadGuard::shouldShedAt(double head_delay_seconds,
                                 Clock::time_point now) {
  if (!enabled()) return false;
  if (head_delay_seconds < options_.target_delay_seconds) {
    // The queue drained below target: leave the shedding regime and
    // forget the interval clock.
    over_target_ = false;
    shedding_ = false;
    return false;
  }
  if (!over_target_) {
    // First over-target observation starts the interval clock; this
    // admission is still accepted (a single slow job is not overload).
    over_target_ = true;
    over_target_since_ = now;
    return false;
  }
  const double over_for =
      std::chrono::duration<double>(now - over_target_since_).count();
  shedding_ = over_for >= options_.interval_seconds;
  return shedding_;
}

}  // namespace rap::svc
