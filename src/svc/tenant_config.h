// Tenant specifications (src/svc) — the JSON dialect that describes
// one tenant of the multi-tenant serving plane, shared by the startup
// sidecar file (`rap_server --tenants catalog.json`) and the dynamic
// PUT /api/v1/tenants/<name> body.
//
// One tenant spec:
//
//   {
//     "schema": {"builtin": "tiny"}            // or {"path": "schema.csv"}
//            // or {"attributes": [{"name": "A", "elements": ["a1", ...]}]}
//     "k": 5, "t_cp": 0.0005, "t_conf": 0.8,   // RapMiner knobs
//     "detect_threshold": 0.095,
//     "sync_row_limit": 4096,                  // service routing
//     "max_deadline_seconds": 0,               // per-request deadline cap
//     "queue_capacity": 64, "workers": 2,      // job manager
//     "max_active": 0, "retry_after_seconds": 1.0,
//     "cache_capacity": 128, "cache_ttl_seconds": 300,
//     "overload": {                            // CoDel-style shedding
//       "target_delay_seconds": 0, "interval_seconds": 1.0
//     },
//     "breaker": {                             // circuit breaker
//       "failure_threshold": 0, "open_seconds": 5.0, "half_open_probes": 1
//     },
//     "streaming": {                           // optional StreamEngine
//       "shards": 4, "window_width": 60,
//       "trigger": "on-alarm" | "anomalous-window" | "every-window",
//       "top_k": 5, "localize_threads": 2, "allowed_lateness": 0,
//       "checkpoint_path": "",                 // supervisor restore source
//       "checkpoint_interval_seconds": 0       // periodic checkpoint cadence
//     }
//   }
//
// Every field is optional except "schema"; defaults mirror the
// single-tenant flag defaults of rap_server.  The sidecar file is
// {"tenants": [{"name": "...", ...spec...}, ...]}.
//
// Validation philosophy matches the localize handler: everything
// user-supplied is checked here (unknown field -> error, so a typo'd
// knob never silently serves defaults) and the miner config goes
// through RapMiner::Builder::validate, so a bad spec is a 400 at PUT
// time or a startup error — never a RAP_CHECK abort later.
#pragma once

#include <string>
#include <vector>

#include "core/rapminer.h"
#include "dataset/schema.h"
#include "stream/config.h"
#include "svc/json_value.h"
#include "svc/service.h"
#include "util/status.h"

namespace rap::svc {

/// Everything needed to register one tenant with the DatasetCatalog.
struct TenantSpec {
  std::string name;
  /// Placeholder default (Schema has no empty state); parseTenantSpec
  /// rejects specs that do not set it explicitly.
  dataset::Schema schema = dataset::Schema::tiny();
  core::RapMinerConfig miner;
  /// Service options (jobs + cache + routing); tenant/jobs_path_prefix
  /// and the shared-pool wiring are overwritten by the catalog.
  LocalizeService::Options service;
  /// When true the tenant also runs a StreamEngine fed by
  /// POST /api/v1/tenants/<name>/ingest.
  bool streaming = false;
  stream::StreamConfig stream;
  /// RAPCHKPT-1 file the supervisor restores a crashed engine from (and,
  /// with a positive interval, periodically checkpoints a healthy one
  /// to).  Empty disables both — a crashed engine restarts fresh.
  std::string checkpoint_path;
  double checkpoint_interval_seconds = 0.0;
};

/// Valid tenant names: [A-Za-z0-9_-]{1,64} (they appear in URL paths
/// and metric label values).
util::Status validateTenantName(const std::string& name);

/// Parses one tenant spec object.  `name` is the tenant name from the
/// URL (PUT) or the sidecar entry; `base_dir` resolves relative schema
/// paths (empty = process CWD).
util::Result<TenantSpec> parseTenantSpec(const JsonValue& doc,
                                         std::string name,
                                         const std::string& base_dir = {});

/// Loads a sidecar file: {"tenants":[{"name":...,...}, ...]}.
/// Duplicate names are an error.
util::Result<std::vector<TenantSpec>> loadTenantSidecar(
    const std::string& path);

}  // namespace rap::svc
