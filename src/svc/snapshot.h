// Snapshot decoding + content hashing for the localization service.
//
// A "snapshot" is one labeled leaf-KPI window — exactly what
// csv_localize consumes from disk — delivered as an HTTP body in one of
// two encodings:
//
//   * CSV (text/csv, the default): the saveLeafTable layout,
//       attr1,...,attrN,real,predict[,label]
//     with a header row, parsed through the hardened io CSV path
//     (field-size caps, NUL rejection, finite-KPI checks);
//
//   * JSON (application/json): {"rows": [[...], ...]} where each inner
//     array mirrors one CSV data row — N element-name strings followed
//     by real and predict numbers and an optional 0/1 label.
//
// Content hashes key the ResultCache:
//   * contentHash(body) hashes the raw request bytes — the service's
//     fast path, computed before any parsing so an idempotent
//     resubmission never pays the decode;
//   * snapshotHash(table) hashes the decoded table (slots + KPI bit
//     patterns + verdicts) — encoding-independent, used by tests to
//     assert CSV/JSON equivalence.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dataset/leaf_table.h"
#include "util/status.h"

namespace rap::svc {

/// Decodes a CSV request body (header + rows) against `schema`.
util::Result<dataset::LeafTable> parseCsvSnapshot(
    const dataset::Schema& schema, const std::string& body);

/// Decodes a {"rows": [[...]]} JSON request body against `schema`.
util::Result<dataset::LeafTable> parseJsonSnapshot(
    const dataset::Schema& schema, const std::string& body);

/// 64-bit FNV-1a over raw bytes (reference byte-at-a-time form).
std::uint64_t fnv1a(std::string_view bytes) noexcept;

/// Content hash for large request bodies: FNV-style mixing over 8-byte
/// words (tail bytes and the length folded in), ~8x the byte-wise rate.
/// NOT FNV-1a-compatible — use only where both writer and reader call
/// this function (the service's cache key does).
std::uint64_t contentHash(std::string_view bytes) noexcept;

/// Mixes one more 64-bit word into a running FNV-1a hash.
std::uint64_t hashMix(std::uint64_t h, std::uint64_t word) noexcept;

/// Encoding-independent content hash of a decoded snapshot: attribute
/// count, then per row the element slots, the KPI bit patterns, and the
/// verdict, in row order.
std::uint64_t snapshotHash(const dataset::LeafTable& table) noexcept;

}  // namespace rap::svc
