#include "svc/supervisor.h"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace rap::svc {

namespace {

bool fileExists(const std::string& path) {
  struct stat st{};
  return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

/// initial * 2^(failures-1), capped at max.
std::chrono::steady_clock::duration backoffAfter(
    std::size_t failures, const EngineSupervisor::Options& options) {
  const double backoff =
      std::min(options.backoff_max_seconds,
               options.backoff_initial_seconds *
                   static_cast<double>(
                       1ull << std::min<std::size_t>(
                           failures == 0 ? 0 : failures - 1, 30)));
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(backoff));
}

}  // namespace

EngineSupervisor::EngineSupervisor(DatasetCatalog& catalog, Options options)
    : catalog_(catalog), options_(std::move(options)) {}

EngineSupervisor::~EngineSupervisor() { stop(); }

void EngineSupervisor::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void EngineSupervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  wake_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool EngineSupervisor::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

EngineSupervisor::SupervisorStats EngineSupervisor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void EngineSupervisor::loop() {
  const auto interval = std::chrono::duration<double>(
      options_.poll_interval_seconds <= 0.0 ? 0.5
                                            : options_.poll_interval_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    lock.unlock();
    sweep();
    lock.lock();
    wake_.wait_for(
        lock, std::chrono::duration_cast<std::chrono::milliseconds>(interval),
        [this] { return stop_; });
  }
}

void EngineSupervisor::sweepAt(std::chrono::steady_clock::time_point now) {
  // Snapshot outside the lock — catalog_.list() takes the catalog mutex
  // and handlers hold tenant shared_ptrs of their own.
  const auto tenants = catalog_.list();

  std::lock_guard<std::mutex> lock(mutex_);
  // Forget state for removed tenants so a delete + re-put starts with a
  // clean failure budget.
  for (auto it = states_.begin(); it != states_.end();) {
    const std::string& name = it->first;
    const bool live =
        std::any_of(tenants.begin(), tenants.end(),
                    [&name](const auto& t) { return t->spec.name == name; });
    it = live ? std::next(it) : states_.erase(it);
  }
  for (const auto& tenant : tenants) {
    if (!tenant->spec.streaming || tenant->quarantined()) continue;
    superviseLocked(*tenant, states_[tenant->spec.name], now);
  }
}

void EngineSupervisor::superviseLocked(
    DatasetCatalog::Tenant& tenant, TenantState& state,
    std::chrono::steady_clock::time_point now) {
  const TenantSpec& spec = tenant.spec;
  const auto engine = tenant.engine();

  if (engine != nullptr && engine->running()) {
    if (state.awaiting_health) {
      // The last restart survived a full poll interval: the engine is
      // genuinely back, so the failure budget resets.
      state.awaiting_health = false;
      state.failed_restarts = 0;
    }
    if (spec.checkpoint_interval_seconds > 0.0 &&
        !spec.checkpoint_path.empty()) {
      const double since =
          std::chrono::duration<double>(now - state.last_checkpoint).count();
      if (state.last_checkpoint.time_since_epoch().count() == 0 ||
          since >= spec.checkpoint_interval_seconds) {
        const util::Status written = engine->checkpoint(spec.checkpoint_path);
        state.last_checkpoint = now;
        if (written.isOk()) {
          ++stats_.checkpoints;
        } else {
          RAP_LOG_KV(Warn, {"tenant", spec.name})
              << "periodic checkpoint failed: " << written.toString();
        }
      }
    }
    return;
  }

  // Engine is missing or dead.  A swap that did not survive to this
  // sweep counts against the failure budget too — a crash-looping
  // engine must converge on quarantine, not restart forever.
  if (state.awaiting_health) {
    state.awaiting_health = false;
    ++state.failed_restarts;
    ++stats_.failures;
    if (state.failed_restarts >= options_.max_restarts) {
      tenant.setQuarantined(true);
      ++stats_.quarantines;
      RAP_LOG_KV(Error, {"tenant", spec.name},
                 {"failed_restarts", state.failed_restarts})
          << "engine restarts exhausted; tenant quarantined";
      return;
    }
    state.next_attempt = now + backoffAfter(state.failed_restarts, options_);
  }
  // Respect the backoff clock.
  if (state.failed_restarts > 0 && now < state.next_attempt) return;

  std::shared_ptr<stream::StreamEngine> replacement;
  bool restored = false;
  stream::StreamConfig config = spec.stream;
  config.metric_tenant = spec.name;  // the catalog stamps this on put()
  if (fileExists(spec.checkpoint_path)) {
    auto result =
        stream::StreamEngine::restore(spec.schema, config, spec.checkpoint_path);
    if (result.isOk()) {
      replacement = std::shared_ptr<stream::StreamEngine>(
          std::move(result.value()));
      restored = true;
    } else {
      RAP_LOG_KV(Warn, {"tenant", spec.name}, {"path", spec.checkpoint_path})
          << "checkpoint restore failed, engine stays down: "
          << result.status().toString();
    }
  } else {
    // No checkpoint to resume from: a fresh engine loses buffered
    // window state but revives ingest.
    replacement =
        std::make_shared<stream::StreamEngine>(spec.schema, config);
  }

  if (replacement != nullptr) {
    replacement->start();
    tenant.replaceEngine(replacement);
    state.awaiting_health = true;
    ++stats_.restarts;
    if (restored) ++stats_.restores;
    RAP_LOG_KV(Info, {"tenant", spec.name},
               {"from_checkpoint", restored ? "true" : "false"},
               {"attempt", state.failed_restarts + 1})
        << "stream engine restarted";
    return;
  }

  ++state.failed_restarts;
  ++stats_.failures;
  if (state.failed_restarts >= options_.max_restarts) {
    tenant.setQuarantined(true);
    ++stats_.quarantines;
    RAP_LOG_KV(Error, {"tenant", spec.name},
               {"failed_restarts", state.failed_restarts})
        << "engine restarts exhausted; tenant quarantined";
    return;
  }
  state.next_attempt = now + backoffAfter(state.failed_restarts, options_);
}

}  // namespace rap::svc
