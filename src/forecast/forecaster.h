// Per-KPI one-step-ahead forecasters.
//
// The paper's pipeline needs a predicted value f for every leaf KPI
// before localization can run ("we can get the corresponding predicted
// values via some prediction methods", §III-C — prediction itself is
// delegated to prior work).  This module provides the standard
// statistical forecasters that IT-operations pipelines use, so the
// repository's end-to-end path (history -> forecast -> detect ->
// localize) is runnable without external models:
//
//   * MovingAverageForecaster — mean of the last w observations;
//   * EwmaForecaster          — exponentially weighted moving average;
//   * HoltWintersForecaster   — additive level/trend/seasonality, the
//     classic fit for diurnal CDN traffic.
//
// All forecasters consume a history vector (oldest first) and return
// the one-step-ahead prediction.  They are deterministic and stateless
// across calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rap::forecast {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// One-step-ahead forecast from `history` (oldest first).  An empty
  /// history forecasts 0.  Implementations must tolerate short
  /// histories (fewer points than their window/season).
  virtual double forecastNext(const std::vector<double>& history) const = 0;

  virtual std::string name() const = 0;
};

/// Mean of the trailing `window` observations.
class MovingAverageForecaster final : public Forecaster {
 public:
  explicit MovingAverageForecaster(std::int32_t window);

  double forecastNext(const std::vector<double>& history) const override;
  std::string name() const override { return "moving-average"; }

 private:
  std::int32_t window_;
};

/// Exponentially weighted moving average with smoothing factor alpha.
class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha);

  double forecastNext(const std::vector<double>& history) const override;
  std::string name() const override { return "ewma"; }

 private:
  double alpha_;
};

/// Additive Holt-Winters (triple exponential smoothing): level + trend +
/// additive seasonal component of the given period.  Falls back to EWMA
/// behaviour while the history is shorter than two seasons.
class HoltWintersForecaster final : public Forecaster {
 public:
  struct Params {
    double alpha = 0.3;  ///< level smoothing
    double beta = 0.05;  ///< trend smoothing
    double gamma = 0.2;  ///< seasonal smoothing
  };

  explicit HoltWintersForecaster(std::int32_t season_length)
      : HoltWintersForecaster(season_length, Params{}) {}
  HoltWintersForecaster(std::int32_t season_length, Params params);

  double forecastNext(const std::vector<double>& history) const override;
  std::string name() const override { return "holt-winters"; }

  std::int32_t seasonLength() const noexcept { return season_length_; }

 private:
  std::int32_t season_length_;
  Params params_;
};

}  // namespace rap::forecast
