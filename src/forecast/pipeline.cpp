#include "forecast/pipeline.h"

#include <algorithm>
#include <cmath>

namespace rap::forecast {

dataset::LeafTable buildDetectedTable(const dataset::Schema& schema,
                                      const std::vector<LeafSeries>& series,
                                      const Forecaster& forecaster,
                                      const PipelineConfig& config) {
  dataset::LeafTable table(schema);
  for (const auto& s : series) {
    const bool dead_history =
        std::all_of(s.history.begin(), s.history.end(),
                    [](double x) { return x == 0.0; });
    if (dead_history && s.current == 0.0) continue;  // no traffic at all

    const double f = forecaster.forecastNext(s.history);
    const double v = s.current;
    const double dev = (f - v) / std::max(std::fabs(f), 1e-9);
    const bool anomalous = config.two_sided
                               ? std::fabs(dev) > config.detect_threshold
                               : dev > config.detect_threshold;
    table.addRow(s.leaf, v, f, anomalous);
  }
  return table;
}

}  // namespace rap::forecast
