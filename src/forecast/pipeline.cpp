#include "forecast/pipeline.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rap::forecast {

dataset::LeafTable buildDetectedTable(const dataset::Schema& schema,
                                      const std::vector<LeafSeries>& series,
                                      const Forecaster& forecaster,
                                      const PipelineConfig& config) {
  RAP_TRACE_SPAN("forecast/build_table",
                 {{"leaves", static_cast<std::int64_t>(series.size())}});
  dataset::LeafTable table(schema);
  std::uint64_t skipped = 0;
  std::uint64_t anomalous_leaves = 0;
  for (const auto& s : series) {
    const bool dead_history =
        std::all_of(s.history.begin(), s.history.end(),
                    [](double x) { return x == 0.0; });
    if (dead_history && s.current == 0.0) {  // no traffic at all
      skipped += 1;
      continue;
    }

    const double f = forecaster.forecastNext(s.history);
    const double v = s.current;
    const double dev = (f - v) / std::max(std::fabs(f), 1e-9);
    const bool anomalous = config.two_sided
                               ? std::fabs(dev) > config.detect_threshold
                               : dev > config.detect_threshold;
    anomalous_leaves += anomalous ? 1 : 0;
    table.addRow(s.leaf, v, f, anomalous);
  }
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry& registry = obs::defaultRegistry();
    const obs::Labels labels{{"forecaster", forecaster.name()}};
    registry.counter("rap_forecast_leaves_total", labels)
        .increment(table.size());
    registry.counter("rap_forecast_leaves_skipped_total", labels)
        .increment(skipped);
    registry.counter("rap_forecast_anomalous_leaves_total", labels)
        .increment(anomalous_leaves);
  }
  return table;
}

}  // namespace rap::forecast
