#include "forecast/forecaster.h"

#include <algorithm>
#include <numeric>

#include "util/status.h"

namespace rap::forecast {

MovingAverageForecaster::MovingAverageForecaster(std::int32_t window)
    : window_(window) {
  RAP_CHECK_MSG(window_ >= 1, "window must be positive, got " << window_);
}

double MovingAverageForecaster::forecastNext(
    const std::vector<double>& history) const {
  if (history.empty()) return 0.0;
  const auto n = std::min<std::size_t>(history.size(),
                                       static_cast<std::size_t>(window_));
  const double sum =
      std::accumulate(history.end() - static_cast<std::ptrdiff_t>(n),
                      history.end(), 0.0);
  return sum / static_cast<double>(n);
}

EwmaForecaster::EwmaForecaster(double alpha) : alpha_(alpha) {
  RAP_CHECK_MSG(alpha_ > 0.0 && alpha_ <= 1.0,
                "alpha must be in (0,1], got " << alpha_);
}

double EwmaForecaster::forecastNext(const std::vector<double>& history) const {
  if (history.empty()) return 0.0;
  double level = history.front();
  for (std::size_t i = 1; i < history.size(); ++i) {
    level = alpha_ * history[i] + (1.0 - alpha_) * level;
  }
  return level;
}

HoltWintersForecaster::HoltWintersForecaster(std::int32_t season_length,
                                             Params params)
    : season_length_(season_length), params_(params) {
  RAP_CHECK_MSG(season_length_ >= 2,
                "season must be >= 2, got " << season_length_);
  RAP_CHECK(params_.alpha > 0.0 && params_.alpha <= 1.0);
  RAP_CHECK(params_.beta >= 0.0 && params_.beta <= 1.0);
  RAP_CHECK(params_.gamma >= 0.0 && params_.gamma <= 1.0);
}

double HoltWintersForecaster::forecastNext(
    const std::vector<double>& history) const {
  const auto m = static_cast<std::size_t>(season_length_);
  if (history.size() < 2 * m) {
    // Not enough data to estimate seasonality — degrade gracefully.
    return EwmaForecaster(params_.alpha).forecastNext(history);
  }

  // Initialize level/trend from the first two seasons; seasonal indices
  // from the first season's deviation around its mean.
  const double first_mean =
      std::accumulate(history.begin(),
                      history.begin() + static_cast<std::ptrdiff_t>(m), 0.0) /
      static_cast<double>(m);
  const double second_mean =
      std::accumulate(history.begin() + static_cast<std::ptrdiff_t>(m),
                      history.begin() + static_cast<std::ptrdiff_t>(2 * m),
                      0.0) /
      static_cast<double>(m);

  double level = first_mean;
  double trend = (second_mean - first_mean) / static_cast<double>(m);
  std::vector<double> seasonal(m);
  for (std::size_t i = 0; i < m; ++i) {
    seasonal[i] = history[i] - first_mean;
  }

  // Run the recurrences over the remaining history.
  for (std::size_t t = m; t < history.size(); ++t) {
    const std::size_t s = t % m;
    const double value = history[t];
    const double prev_level = level;
    level = params_.alpha * (value - seasonal[s]) +
            (1.0 - params_.alpha) * (level + trend);
    trend = params_.beta * (level - prev_level) +
            (1.0 - params_.beta) * trend;
    seasonal[s] = params_.gamma * (value - level) +
                  (1.0 - params_.gamma) * seasonal[s];
  }

  const std::size_t next_s = history.size() % m;
  return level + trend + seasonal[next_s];
}

}  // namespace rap::forecast
