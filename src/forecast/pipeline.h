// History -> forecast -> detect: assembling a labeled LeafTable from
// per-leaf KPI time series, the way a production deployment of the
// paper's pipeline would (the data-collection stage of §IV-B).
#pragma once

#include <memory>
#include <vector>

#include "dataset/leaf_table.h"
#include "forecast/forecaster.h"

namespace rap::forecast {

/// One leaf's KPI history plus its current observation.
struct LeafSeries {
  dataset::AttributeCombination leaf;
  std::vector<double> history;  ///< oldest first; may be empty
  double current = 0.0;         ///< the alarmed timestamp's actual value
};

struct PipelineConfig {
  /// Relative-deviation threshold for the leaf verdict
  /// ((f - v) / max(f, eps) > threshold).
  double detect_threshold = 0.1;
  bool two_sided = false;
};

/// Builds the labeled leaf table for the alarmed timestamp: per leaf,
/// forecast from the history with `forecaster`, attach the current
/// actual value, and set the anomaly verdict with the relative-deviation
/// rule.  Leaves with an all-zero history and zero current value are
/// skipped (no traffic, as in a sparse CDN collection).
dataset::LeafTable buildDetectedTable(const dataset::Schema& schema,
                                      const std::vector<LeafSeries>& series,
                                      const Forecaster& forecaster,
                                      const PipelineConfig& config = {});

}  // namespace rap::forecast
