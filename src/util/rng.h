// Deterministic random number generation.
//
// Every experiment in this repository is seeded explicitly so that the
// benchmark tables are reproducible run-to-run.  Rng wraps xoshiro256**
// (public-domain algorithm by Blackman & Vigna) seeded via splitmix64,
// and exposes the handful of distributions the generators need.
#pragma once

#include <cstdint>
#include <vector>

namespace rap::util {

/// splitmix64 step — used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with convenience distributions.  Satisfies
/// UniformRandomBitGenerator so it can also feed <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box–Muller (cached second draw).
  double gaussian() noexcept;
  double gaussian(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)).
  double logNormal(double mu, double sigma) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) in random order.  k must be <= n.
  std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k) noexcept;

  /// Derive an independent child generator (for per-case streams).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace rap::util
