// Minimal fixed-size thread pool plus a parallel-for helper.
//
// Used by the evaluation runner to fan localization cases across cores
// during parameter sweeps.  Timing-sensitive benches stay serial (the
// Fig. 9 harnesses measure per-case wall time); the pool is for the
// sweeps where only the aggregate metric matters.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rap::util {

class ThreadPool {
 public:
  /// `threads` == 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Enqueue a task.  Tasks must not throw (they run under noexcept
  /// workers; violate this and the process terminates, loudly).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait();

  /// Tasks submitted but not yet finished (queued + running) — the
  /// utilization signal the stream lag collector samples.
  std::size_t inFlight() const;

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, n) across `threads` workers (0 = hardware
/// concurrency).  Blocks until every index is processed.  fn must be
/// safe to call concurrently for distinct indices.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t threads = 0);

}  // namespace rap::util
