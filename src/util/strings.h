// Small string helpers shared by the CSV layer and the CLI tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rap::util {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

bool startsWith(std::string_view text, std::string_view prefix) noexcept;
bool endsWith(std::string_view text, std::string_view suffix) noexcept;

/// Strict parse of a double / integer; rejects trailing garbage.
Result<double> parseDouble(std::string_view text);
Result<std::int64_t> parseInt(std::string_view text);

/// printf-style formatting into a std::string.
std::string strFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Lower-case an ASCII string.
std::string toLower(std::string_view text);

}  // namespace rap::util
