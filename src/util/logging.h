// Minimal leveled logging to stderr, with a pluggable sink.
//
// Usage:
//   RAP_LOG(Info) << "localized " << n << " patterns";
//   RAP_LOG_KV(Warn, {"alarms", n}, {"state", "raised"}) << "page sent";
//
// The global level defaults to kInfo, is stored in an std::atomic (safe
// to flip from any thread; benchmarks raise it to kWarn to keep output
// tables clean), and each statement is flushed as ONE complete line with
// a single fwrite so concurrent threads never interleave partial lines.
//
// By default records render as text to stderr.  setLogSink() redirects
// every record to a LogSink instead — rap::obs::JsonLineLogSink turns
// the stream into structured JSON lines; tests install capture sinks.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace rap::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

/// One-letter tag ("D", "I", "W", "E") for the text format.
const char* logLevelName(LogLevel level) noexcept;
/// Full lowercase name ("debug", "info", ...) for structured sinks.
const char* logLevelFullName(LogLevel level) noexcept;

/// One key/value annotation on a log statement.  Numeric values keep a
/// numeric rendering so structured sinks can emit them unquoted.
struct LogField {
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LogField(std::string k, T v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), quoted(false) {}
  LogField(std::string k, double v);
  LogField(std::string k, const char* v)
      : key(std::move(k)), value(v), quoted(true) {}
  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)), quoted(true) {}

  std::string key;
  std::string value;
  bool quoted = true;
};

/// Everything one log statement carries, handed to the active sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";  ///< basename of the source file
  int line = 0;
  std::string message;
  std::vector<LogField> fields;
};

/// Destination for log records.  Implementations must be thread-safe —
/// records arrive concurrently from any thread.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Installs `sink` as the destination for all subsequent records
/// (nullptr restores the default text-to-stream formatter).  The sink
/// is borrowed, not owned; keep it alive while installed.
void setLogSink(LogSink* sink) noexcept;
LogSink* logSink() noexcept;

/// Stream the default text formatter writes to (stderr unless
/// overridden; tests point this at a temp file to inspect output).
void setLogStream(std::FILE* stream) noexcept;
std::FILE* logStream() noexcept;

namespace internal {

/// Collects one log statement and flushes it (to the sink, or as one
/// timestamped text line) on destruction.  Not for use outside the
/// RAP_LOG / RAP_LOG_KV macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(LogLevel level, const char* file, int line,
             std::vector<LogField> fields);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::vector<LogField> fields_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level at zero formatting cost.
struct NullLogStream {
  template <typename T>
  NullLogStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace rap::util

#define RAP_LOG(severity)                                                    \
  if (::rap::util::LogLevel::k##severity < ::rap::util::logLevel()) {       \
  } else                                                                     \
    ::rap::util::internal::LogMessage(::rap::util::LogLevel::k##severity,   \
                                      __FILE__, __LINE__)                    \
        .stream()

/// RAP_LOG with structured fields:
///   RAP_LOG_KV(Info, {"layer", l}, {"cuboids", n}) << "layer done";
#define RAP_LOG_KV(severity, ...)                                            \
  if (::rap::util::LogLevel::k##severity < ::rap::util::logLevel()) {       \
  } else                                                                     \
    ::rap::util::internal::LogMessage(::rap::util::LogLevel::k##severity,   \
                                      __FILE__, __LINE__, {__VA_ARGS__})     \
        .stream()
