// Minimal leveled logging to stderr.
//
// Usage:
//   RAP_LOG(INFO) << "localized " << n << " patterns";
//
// The global level defaults to kInfo and can be raised/lowered with
// setLogLevel (benchmarks raise it to kWarn to keep output tables clean).
#pragma once

#include <sstream>
#include <string>

namespace rap::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

const char* logLevelName(LogLevel level) noexcept;

namespace internal {

/// Collects one log statement and flushes it (with timestamp + level tag)
/// on destruction.  Not for use outside the RAP_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level at zero formatting cost.
struct NullLogStream {
  template <typename T>
  NullLogStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace rap::util

#define RAP_LOG(severity)                                                    \
  if (::rap::util::LogLevel::k##severity < ::rap::util::logLevel()) {       \
  } else                                                                     \
    ::rap::util::internal::LogMessage(::rap::util::LogLevel::k##severity,   \
                                      __FILE__, __LINE__)                    \
        .stream()
