#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace rap::util {

void TextTable::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::addRow(std::vector<std::string> row) {
  Row r;
  r.cells = std::move(row);
  r.rule_before = pending_rule_;
  pending_rule_ = false;
  rows_.push_back(std::move(r));
}

void TextTable::addRule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.cells.size());
  if (cols == 0) return "";

  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = std::max(width[c], header_[c].size());
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto drawRule = [&](std::ostringstream& oss) {
    oss << '+';
    for (std::size_t c = 0; c < cols; ++c) {
      oss << std::string(width[c] + 2, '-') << '+';
    }
    oss << '\n';
  };
  auto drawCells = [&](std::ostringstream& oss,
                       const std::vector<std::string>& cells) {
    oss << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      oss << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
    }
    oss << '\n';
  };

  std::ostringstream oss;
  drawRule(oss);
  if (!header_.empty()) {
    drawCells(oss, header_);
    drawRule(oss);
  }
  for (const auto& row : rows_) {
    if (row.rule_before) drawRule(oss);
    drawCells(oss, row.cells);
  }
  drawRule(oss);
  return oss.str();
}

std::string TextTable::num(double value, int precision) {
  return strFormat("%.*f", precision, value);
}

std::string TextTable::pct(double fraction, int precision) {
  return strFormat("%.*f%%", precision, fraction * 100.0);
}

std::string TextTable::duration(double seconds) {
  if (seconds < 1e-3) return strFormat("%.1fus", seconds * 1e6);
  if (seconds < 1.0) return strFormat("%.2fms", seconds * 1e3);
  return strFormat("%.3fs", seconds);
}

}  // namespace rap::util
