#include "util/status.h"

#include <cstdio>

namespace rap::util {

const char* statusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

namespace internal {

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "RAP_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace rap::util
