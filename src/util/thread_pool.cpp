#include "util/thread_pool.h"

#include <atomic>

#include "util/status.h"

namespace rap::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  RAP_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RAP_CHECK_MSG(!shutting_down_, "submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::inFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Work stealing via a shared atomic cursor: threads grab the next
  // index until exhausted — balanced even when per-index cost varies
  // (localization cases differ wildly in search depth).
  std::atomic<std::size_t> cursor{0};
  auto worker = [&cursor, n, &fn] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
}

}  // namespace rap::util
