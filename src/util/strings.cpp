#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rap::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool startsWith(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<double> parseDouble(std::string_view text) {
  const std::string buf{trim(text)};
  if (buf.empty()) return Status::invalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::outOfRange("number out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::invalidArgument("not a number: '" + buf + "'");
  }
  return value;
}

Result<std::int64_t> parseInt(std::string_view text) {
  const std::string buf{trim(text)};
  if (buf.empty()) return Status::invalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::outOfRange("integer out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::invalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<std::int64_t>(value);
}

std::string strFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string toLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace rap::util
