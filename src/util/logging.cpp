#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace rap::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// Serializes whole lines so interleaved threads stay readable.
std::mutex& logMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void setLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* logLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << logLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  using Clock = std::chrono::system_clock;
  const auto now = Clock::to_time_t(Clock::now());
  char ts[32];
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);

  std::lock_guard<std::mutex> lock(logMutex());
  std::fprintf(stderr, "%s %s\n", ts, stream_.str().c_str());
  (void)level_;
}

}  // namespace internal
}  // namespace rap::util
