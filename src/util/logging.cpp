#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace rap::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSink*> g_sink{nullptr};
std::atomic<std::FILE*> g_stream{nullptr};  // nullptr => stderr

// Serializes whole lines so interleaved threads stay ordered (each line
// is also flushed with a single fwrite, so even without the lock no
// partial lines could interleave).
std::mutex& logMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void setLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* logLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* logLevelFullName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void setLogSink(LogSink* sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

LogSink* logSink() noexcept { return g_sink.load(std::memory_order_acquire); }

void setLogStream(std::FILE* stream) noexcept {
  g_stream.store(stream, std::memory_order_release);
}

std::FILE* logStream() noexcept {
  std::FILE* stream = g_stream.load(std::memory_order_acquire);
  return stream != nullptr ? stream : stderr;
}

LogField::LogField(std::string k, double v) : key(std::move(k)), quoted(false) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  value = buf;
}

namespace internal {

namespace {

const char* basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(basename(file)), line_(line) {}

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       std::vector<LogField> fields)
    : level_(level),
      file_(basename(file)),
      line_(line),
      fields_(std::move(fields)) {}

LogMessage::~LogMessage() {
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.message = stream_.str();
  record.fields = std::move(fields_);

  if (LogSink* sink = logSink(); sink != nullptr) {
    sink->write(record);
    return;
  }

  using Clock = std::chrono::system_clock;
  const auto now = Clock::to_time_t(Clock::now());
  char ts[32];
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);

  // Assemble the whole line up front and flush it with ONE fwrite so a
  // line from another thread can never split this one.
  std::string line;
  line.reserve(record.message.size() + 64);
  line += ts;
  line += " [";
  line += logLevelName(record.level);
  line += " ";
  line += record.file;
  line += ":";
  line += std::to_string(record.line);
  line += "] ";
  line += record.message;
  for (const auto& field : record.fields) {
    line += " ";
    line += field.key;
    line += "=";
    line += field.value;
  }
  line += "\n";

  std::lock_guard<std::mutex> lock(logMutex());
  std::fwrite(line.data(), 1, line.size(), logStream());
}

}  // namespace internal
}  // namespace rap::util
