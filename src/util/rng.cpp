#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/status.h"

namespace rap::util {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  RAP_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform01() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform01();
  while (u1 <= 1e-300) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

double Rng::logNormal(double mu, double sigma) noexcept {
  return std::exp(gaussian(mu, sigma));
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

std::vector<std::size_t> Rng::sampleIndices(std::size_t n,
                                            std::size_t k) noexcept {
  RAP_CHECK(k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniformInt(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork() noexcept { return Rng(next()); }

}  // namespace rap::util
