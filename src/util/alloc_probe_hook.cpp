// Replacement global allocation operators backing util/alloc_probe.h.
//
// Compiled only into binaries that opt into zero-allocation assertions
// (bench micro_primitives, util_test) — see the header for why this TU
// must never join the rap_util library.  Replacing operator new is
// [replacement.functions]-sanctioned: these definitions take over every
// allocation in the binary, count the ones made while armed, and
// forward to malloc/aligned_alloc (the same underlying source the
// default operators use, so deallocating across TU boundaries is safe
// as long as the matching replaced deletes below free() accordingly).
#include "util/alloc_probe.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace rap::util {
namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_count{0};

void* probedAlloc(std::size_t size) noexcept {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_count.fetch_add(1, std::memory_order_relaxed);
  }
  // malloc(0) may return nullptr legitimately; operator new must return
  // a unique pointer, so allocate at least one byte.
  return std::malloc(size == 0 ? 1 : size);
}

void* probedAllocAligned(std::size_t size, std::size_t align) noexcept {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_count.fetch_add(1, std::memory_order_relaxed);
  }
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}

}  // namespace

void allocProbeArm() noexcept {
  g_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

std::uint64_t allocProbeDisarm() noexcept {
  g_armed.store(false, std::memory_order_release);
  return g_count.load(std::memory_order_relaxed);
}

std::uint64_t allocProbeCount() noexcept {
  return g_count.load(std::memory_order_relaxed);
}

}  // namespace rap::util

// ----------------------------------------------------- replaced operators
//
// Scalar/array x throwing/nothrow x plain/aligned news, plus every
// matching delete (including the sized forms GCC emits under -O2).
// All allocation funnels through the two probed helpers above.

void* operator new(std::size_t size) {
  void* p = rap::util::probedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = rap::util::probedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return rap::util::probedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return rap::util::probedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p =
      rap::util::probedAllocAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p =
      rap::util::probedAllocAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return rap::util::probedAllocAligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return rap::util::probedAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
