// Heap-allocation probe for zero-allocation assertions.
//
// The allocation-free search hot path (docs/algorithms.md, "Workspace
// reuse") is a contract, not a hope: the bench smoke job and util_test
// assert that a warmed-up groupByInto / percentile() performs literally
// zero heap allocations.  Counting allocations portably needs replaced
// global operator new/delete, and replacement operators are
// process-wide — linking them into the production libraries would tax
// every binary with an atomic load per allocation.  So the probe is
// split:
//
//   alloc_probe.h        — this header: the counter API.  Safe to
//                          include anywhere.
//   alloc_probe_hook.cpp — the replacement operators AND the only
//                          definitions of the functions below.
//                          Compiled ONLY into binaries that opt in
//                          (bench micro_primitives, util_test) by
//                          listing the .cpp in their own sources; it is
//                          deliberately NOT part of the rap_util
//                          library.  A binary that calls the probe
//                          without compiling the hook fails at link
//                          time — better than an assertion that
//                          silently counts nothing.
//
// Usage:
//   // warm up ...
//   util::allocProbeArm();
//   // steady-state work ...
//   const auto allocs = util::allocProbeDisarm();  // 0 expected
//
// Counting is process-wide while armed (any thread's allocation
// counts), so arm around single-threaded steady-state sections.
#pragma once

#include <cstdint>

namespace rap::util {

/// Resets the counter to zero and starts counting operator-new calls.
void allocProbeArm() noexcept;

/// Stops counting and returns the number of operator-new calls (all
/// forms: scalar/array, throwing/nothrow, aligned) observed since the
/// matching allocProbeArm().
std::uint64_t allocProbeDisarm() noexcept;

/// The running count without disarming (for mid-section checkpoints).
std::uint64_t allocProbeCount() noexcept;

}  // namespace rap::util
