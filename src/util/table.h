// ASCII table printer used by the bench harnesses to reproduce the paper's
// tables and figure series as aligned text.
#pragma once

#include <string>
#include <vector>

namespace rap::util {

/// Column-aligned text table.  Add a header once, then rows; render()
/// computes widths and draws separators.
class TextTable {
 public:
  void setHeader(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);
  /// Insert a horizontal rule before the next row.
  void addRule();

  std::size_t rowCount() const noexcept { return rows_.size(); }

  std::string render() const;

  /// Convenience: format a double with the given precision.
  static std::string num(double value, int precision = 3);
  /// Format as percentage ("83.1%").
  static std::string pct(double fraction, int precision = 1);
  /// Format seconds adaptively ("12.3ms", "1.24s").
  static std::string duration(double seconds);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace rap::util
