// Lightweight status / result types used across the RAPMiner libraries.
//
// Error handling policy (see DESIGN.md): recoverable failures that callers
// are expected to handle (file I/O, malformed input, invalid user-supplied
// configuration) are reported through Status / Result<T>.  Violations of
// internal invariants are programming errors and are guarded with
// RAP_CHECK, which aborts with a message.
#pragma once

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace rap::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kUnavailable,
};

/// Human-readable name for a status code ("OK", "INVALID_ARGUMENT", ...).
const char* statusCodeName(StatusCode code) noexcept;

/// A success-or-error value.  Cheap to copy on the success path (no message
/// allocation), explicit about failure on the error path.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }
  static Status invalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status notFound(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status outOfRange(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  static Status failedPrecondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status unimplemented(std::string msg) {
    return {StatusCode::kUnimplemented, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }

  bool isOk() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return isOk(); }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string toString() const {
    if (isOk()) return "OK";
    std::string out = statusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or a non-OK Status.  A minimal stand-in for
/// std::expected (C++23) so the project stays on C++20.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : repr_(std::move(status)) {
    if (std::get<Status>(repr_).isOk()) {
      // An OK status carries no value; treat as a caller bug.
      repr_ = Status::internal("Result constructed from OK status");
    }
  }

  bool isOk() const noexcept { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const noexcept { return isOk(); }

  const Status& status() const {
    static const Status kOk{};
    if (isOk()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  T valueOr(T fallback) const& {
    return isOk() ? std::get<T>(repr_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void checkFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

}  // namespace rap::util

/// Abort with a diagnostic when an internal invariant does not hold.
#define RAP_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rap::util::internal::checkFailed(__FILE__, __LINE__, #expr, ""); \
    }                                                                     \
  } while (0)

/// RAP_CHECK with a streamed message: RAP_CHECK_MSG(x > 0, "x=" << x).
#define RAP_CHECK_MSG(expr, stream_expr)                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream rap_check_oss_;                                   \
      rap_check_oss_ << stream_expr;                                       \
      ::rap::util::internal::checkFailed(__FILE__, __LINE__, #expr,        \
                                         rap_check_oss_.str());            \
    }                                                                      \
  } while (0)

/// Propagate a non-OK Status from an expression returning Status.
#define RAP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::rap::util::Status rap_status_ = (expr);      \
    if (!rap_status_.isOk()) return rap_status_;   \
  } while (0)
