#include "util/flags.h"

#include <sstream>

#include "util/strings.h"

namespace rap::util {

void FlagParser::addString(const std::string& name, std::string default_value,
                           std::string help) {
  flags_[name] = Flag{Type::kString, std::move(default_value), std::move(help)};
}

void FlagParser::addInt(const std::string& name, std::int64_t default_value,
                        std::string help) {
  flags_[name] =
      Flag{Type::kInt, std::to_string(default_value), std::move(help)};
}

void FlagParser::addDouble(const std::string& name, double default_value,
                           std::string help) {
  std::ostringstream oss;
  oss << default_value;
  flags_[name] = Flag{Type::kDouble, oss.str(), std::move(help)};
}

void FlagParser::addBool(const std::string& name, bool default_value,
                         std::string help) {
  flags_[name] =
      Flag{Type::kBool, default_value ? "true" : "false", std::move(help)};
}

Status FlagParser::setValue(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::invalidArgument("unknown flag --" + name);
  }
  switch (it->second.type) {
    case Type::kInt: {
      auto parsed = parseInt(text);
      if (!parsed) return Status::invalidArgument("--" + name + ": " +
                                                  parsed.status().message());
      break;
    }
    case Type::kDouble: {
      auto parsed = parseDouble(text);
      if (!parsed) return Status::invalidArgument("--" + name + ": " +
                                                  parsed.status().message());
      break;
    }
    case Type::kBool: {
      const std::string low = toLower(text);
      if (low != "true" && low != "false" && low != "0" && low != "1") {
        return Status::invalidArgument("--" + name + ": expected bool, got '" +
                                       text + "'");
      }
      it->second.value = (low == "true" || low == "1") ? "true" : "false";
      return Status::ok();
    }
    case Type::kString:
      break;
  }
  it->second.value = text;
  return Status::ok();
}

Status FlagParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!startsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      RAP_RETURN_IF_ERROR(
          setValue(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1))));
      continue;
    }
    const std::string name(arg);
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::invalidArgument("unknown flag --" + name);
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      return Status::invalidArgument("--" + name + " requires a value");
    }
    RAP_RETURN_IF_ERROR(setValue(name, argv[++i]));
  }
  return Status::ok();
}

std::string FlagParser::getString(const std::string& name) const {
  auto it = flags_.find(name);
  RAP_CHECK_MSG(it != flags_.end(), "unregistered flag --" << name);
  return it->second.value;
}

std::int64_t FlagParser::getInt(const std::string& name) const {
  return parseInt(getString(name)).value();
}

double FlagParser::getDouble(const std::string& name) const {
  return parseDouble(getString(name)).value();
}

bool FlagParser::getBool(const std::string& name) const {
  return getString(name) == "true";
}

std::string FlagParser::helpText(const std::string& program) const {
  std::ostringstream oss;
  oss << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    oss << "  --" << name << " (default: " << flag.value << ")\n      "
        << flag.help << "\n";
  }
  return oss.str();
}

}  // namespace rap::util
