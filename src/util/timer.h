// Wall-clock timing helpers for the efficiency experiments (Fig. 9,
// Table VI).  WallTimer measures one interval; TimingStats accumulates
// per-case localization times and reports mean / percentiles.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace rap::util {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsedMillis() const noexcept { return elapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Aggregates a set of duration samples (seconds).
class TimingStats {
 public:
  void add(double seconds) { samples_.push_back(seconds); }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double total() const noexcept;
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Nearest-rank quantile on a sorted copy.  Total: q is clamped to
  /// [0,1] (NaN behaves like 0), the empty set reports 0, and a single
  /// sample is returned for every q.
  double percentile(double q) const noexcept;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace rap::util
