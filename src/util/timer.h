// Wall-clock timing helpers for the efficiency experiments (Fig. 9,
// Table VI).  WallTimer measures one interval; TimingStats accumulates
// per-case localization times and reports mean / percentiles.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace rap::util {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsedMillis() const noexcept { return elapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Aggregates a set of duration samples (seconds).  Not thread-safe:
/// the const accessors maintain a lazily sorted scratch (see below), so
/// even concurrent reads need external synchronization.
class TimingStats {
 public:
  /// Appends a sample.  This is the only member that allocates: it also
  /// grows the sorted scratch that percentile() sorts into, so every
  /// noexcept accessor below is allocation-free by construction —
  /// percentile() used to sort a fresh copy under noexcept, where a
  /// bad_alloc would have gone straight to std::terminate.  (The other
  /// noexcept members — total/mean/min/max — scan samples_ in place and
  /// never allocated; audited when this was fixed.)
  void add(double seconds);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double total() const noexcept;
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Nearest-rank quantile.  Total: q is clamped to [0,1] (NaN behaves
  /// like 0), the empty set reports 0, and a single sample is returned
  /// for every q.  Sorts into the pre-reserved scratch on the first
  /// call after an add(); later calls reuse the sorted order.
  double percentile(double q) const noexcept;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
  /// Sorted copy of samples_, rebuilt lazily inside the capacity that
  /// add() reserved (so the rebuild cannot allocate).
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace rap::util
