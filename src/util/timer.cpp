#include "util/timer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rap::util {

double TimingStats::total() const noexcept {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double TimingStats::mean() const noexcept {
  return samples_.empty() ? 0.0 : total() / static_cast<double>(samples_.size());
}

double TimingStats::min() const noexcept {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double TimingStats::max() const noexcept {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

double TimingStats::percentile(double q) const noexcept {
  // Defined for every input: an empty sample set reports 0, a q outside
  // [0,1] (including NaN) clamps to the nearest quantile, and a single
  // sample is every quantile of itself.
  if (samples_.empty()) return 0.0;
  if (!(q > 0.0)) return min();   // q <= 0 or NaN
  if (q >= 1.0) return max();
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace rap::util
