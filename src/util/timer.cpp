#include "util/timer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rap::util {

double TimingStats::total() const noexcept {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double TimingStats::mean() const noexcept {
  return samples_.empty() ? 0.0 : total() / static_cast<double>(samples_.size());
}

double TimingStats::min() const noexcept {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double TimingStats::max() const noexcept {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

void TimingStats::add(double seconds) {
  samples_.push_back(seconds);
  // Keep the scratch's capacity in lockstep with samples_ so the
  // noexcept percentile() below can rebuild it without allocating.
  if (sorted_.capacity() < samples_.size()) sorted_.reserve(samples_.capacity());
  sorted_valid_ = false;
}

double TimingStats::percentile(double q) const noexcept {
  // Defined for every input: an empty sample set reports 0, a q outside
  // [0,1] (including NaN) clamps to the nearest quantile, and a single
  // sample is every quantile of itself.
  if (samples_.empty()) return 0.0;
  if (!(q > 0.0)) return min();   // q <= 0 or NaN
  if (q >= 1.0) return max();
  if (!sorted_valid_) {
    // assign() stays within the capacity add() reserved; std::sort is
    // in-place — no allocation under this noexcept.
    sorted_.assign(samples_.begin(), samples_.end());
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

}  // namespace rap::util
