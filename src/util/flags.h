// Tiny command-line flag parser for the example binaries and bench
// harnesses.  Supports --name=value and --name value forms plus boolean
// switches (--verbose).  Unknown flags are an error so typos surface.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace rap::util {

class FlagParser {
 public:
  /// Register flags before parse(); each has a default and a help line.
  void addString(const std::string& name, std::string default_value,
                 std::string help);
  void addInt(const std::string& name, std::int64_t default_value,
              std::string help);
  void addDouble(const std::string& name, double default_value,
                 std::string help);
  void addBool(const std::string& name, bool default_value, std::string help);

  /// Parses argv; positional arguments are collected in positional().
  Status parse(int argc, const char* const* argv);

  std::string getString(const std::string& name) const;
  std::int64_t getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  bool getBool(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Usage text assembled from the registered flags.
  std::string helpText(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical textual form
    std::string help;
  };

  Status setValue(const std::string& name, const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rap::util
