// Umbrella public header: everything a typical embedder of the RAPMiner
// localization pipeline needs.
//
//   #include "rap.h"
//
//   using namespace rap;
//   dataset::Schema schema = dataset::Schema::cdn();
//   dataset::LeafTable table(schema);
//   ... fill rows, run a detect:: detector for verdicts ...
//   auto miner = core::RapMiner::Builder().tConf(0.9).threads(8).build();
//   if (!miner.isOk()) { /* miner.status() explains why */ }
//   core::LocalizationResult result = miner->localize(table, 5);
//   std::puts(core::renderReport(schema, result).c_str());
//
// Subsystems with their own lifecycles (streaming ingestion, evaluation
// harnesses, baselines, generators) keep dedicated headers — include
// "stream/engine.h", "eval/runner.h", ... on top as needed.
#pragma once

#include "core/classification_power.h"  // Algorithm 1 (Criteria 1)
#include "core/rapminer.h"              // RapMiner + Builder + configs
#include "core/report.h"                // human-readable result rendering
#include "core/search.h"                // Algorithm 2 entry points
#include "core/types.h"                 // ScoredPattern / LocalizationResult
#include "dataset/attribute_combination.h"
#include "dataset/cuboid.h"
#include "dataset/groupby_kernel.h"     // dense cuboid aggregation
#include "dataset/leaf_table.h"
#include "dataset/schema.h"
#include "detect/detector.h"            // per-leaf verdicts
#include "util/status.h"
