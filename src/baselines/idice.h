// iDice baseline (Lin et al., ICSE'16) — §V-C.2 of the RAPMiner paper.
//
// iDice mines "effective combinations" of emerging issues with a BFS over
// the attribute-combination lattice and three prunings.  Crucially,
// iDice never sees leaf-level anomaly verdicts: it operates on issue
// REPORT COUNTS.  The KPI analogue used here is the dropped traffic
// volume max(0, f - v) as issue volume and the forecast f as total
// volume, fed into the original count-based statistics as pseudo-counts:
//   * impact-based pruning — combinations with too little issue volume
//     are discarded together with their subtree;
//   * change-detection based pruning — the combination's issue
//     proportion must significantly exceed the outside proportion
//     (two-proportion z-test, standing in for the paper's time-series
//     change detection, which needs report streams we do not have);
//   * isolation-power ranking — information gain of the partition
//     {covered by ac, not covered} over the issue distribution.
// Because background leaves also deviate a little (RAPMD gives normal
// leaves Dev up to 0.09), faint issue volume exists everywhere — which
// reproduces iDice's real-world weakness on continuous KPIs.
//
// Faithful to the original, the BFS probes each combination individually
// (posting-list intersections) instead of bulk group-bys — which is why
// iDice lands at the slow end of the efficiency comparison, as in the
// paper's Fig. 9.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "dataset/leaf_table.h"

namespace rap::baselines {

struct IDiceConfig {
  /// Minimum issue volume a combination must cover (absolute floor and
  /// fraction of the table's total dropped volume).
  std::uint64_t min_impact_abs = 2;
  double min_impact_ratio = 0.02;
  /// Significance level of the change-detection test.
  double significance = 0.01;
  /// Stop expanding beyond this layer (0 = all layers).
  std::int32_t max_layer = 0;
};

std::vector<core::ScoredPattern> idiceLocalize(const dataset::LeafTable& table,
                                               const IDiceConfig& config,
                                               std::int32_t k);

}  // namespace rap::baselines
