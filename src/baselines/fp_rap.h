// Association-rule baseline (the paper's "FP-growth" method, §V-C.3,
// after Ahmed et al., ToN'17): mine frequent (attribute, element) itemsets
// over the ANOMALOUS leaves with FP-growth, turn each itemset into an
// attribute combination, and keep combinations whose rule
// `ac => Anomaly` has high confidence over the full table.
//
// Generalization filter: when an itemset and a proper subset both pass
// the confidence bar, only the subset (the more general pattern — an
// ancestor in the lattice) is kept, mirroring the RAP definition.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "dataset/leaf_table.h"

namespace rap::baselines {

/// Frequent-itemset engine behind the rule miner.  The paper notes that
/// "the efficiency of different implementation methods varies greatly"
/// between Apriori and FP-growth — bench/ext_rule_mining measures it.
enum class RuleMiningEngine {
  kFpGrowth,
  kApriori,
};

struct FpRapConfig {
  RuleMiningEngine engine = RuleMiningEngine::kFpGrowth;
  /// Relative support over the anomalous leaves; absolute support is
  /// max(min_support_abs, ratio * #anomalous).  The method is markedly
  /// sensitive to this floor (the paper makes the same observation about
  /// association-rule mining); 0.05 is the operating point whose RC@k
  /// matches the paper's reported gap to RAPMiner.
  double min_support_ratio = 0.05;
  std::uint64_t min_support_abs = 2;
  /// Confidence bar for `ac => Anomaly` over the whole table.
  double min_confidence = 0.7;
};

std::vector<core::ScoredPattern> fpGrowthLocalize(
    const dataset::LeafTable& table, const FpRapConfig& config,
    std::int32_t k);

}  // namespace rap::baselines
