#include "baselines/idice.h"

#include <algorithm>
#include <cmath>

#include "dataset/cuboid.h"
#include "dataset/index.h"
#include "stats/entropy.h"
#include "stats/hypothesis.h"

namespace rap::baselines {

using dataset::AttrId;
using dataset::AttributeCombination;
using dataset::ElemId;

namespace {

/// iDice operates on issue-report counts, not leaf labels: a customer
/// problem report stream, bucketed by attribute combination.  The KPI
/// analogue of "issue volume" is the dropped traffic f - v (clamped at
/// 0); the analogue of "total volume" is the forecast f.  Both are used
/// as pseudo-counts, which preserves iDice's count-based statistics and
/// its real-world blind spot: background deviations look like faint
/// issue reports everywhere.
struct VolumeStats {
  double drop = 0.0;   ///< issue volume under the combination
  double total = 0.0;  ///< forecast volume under the combination
};

VolumeStats volumesFor(const dataset::LeafTable& table,
                       const std::vector<dataset::RowId>& rows) {
  VolumeStats s;
  for (const auto id : rows) {
    const auto& row = table.row(id);
    s.drop += std::max(0.0, row.f - row.v);
    s.total += row.f;
  }
  return s;
}

std::uint64_t pseudoCount(double volume) {
  return static_cast<std::uint64_t>(std::llround(std::max(0.0, volume)));
}

/// Isolation power: information gain (nats) of splitting the issue
/// distribution into {covered by ac, rest}, on pseudo-counts.
double isolationPower(const VolumeStats& inside, const VolumeStats& all) {
  const std::vector<stats::BranchCounts> branches{
      {pseudoCount(inside.drop), pseudoCount(inside.total)},
      {pseudoCount(all.drop - inside.drop),
       pseudoCount(all.total - inside.total)}};
  const double before =
      stats::datasetInfo(pseudoCount(all.drop), pseudoCount(all.total));
  const double after = stats::splitInfo(branches);
  return before - after;
}

}  // namespace

std::vector<core::ScoredPattern> idiceLocalize(const dataset::LeafTable& table,
                                               const IDiceConfig& config,
                                               std::int32_t k) {
  const auto& schema = table.schema();
  const dataset::InvertedIndex index(table);

  std::vector<dataset::RowId> all_rows(table.size());
  for (dataset::RowId id = 0; id < table.size(); ++id) all_rows[id] = id;
  const VolumeStats all = volumesFor(table, all_rows);
  if (all.drop <= 0.0) return {};

  const double min_impact = std::max(
      static_cast<double>(config.min_impact_abs),
      config.min_impact_ratio * all.drop);

  struct Candidate {
    AttributeCombination ac;
    double isolation = 0.0;
    double confidence = 0.0;  ///< inside drop rate
    double impact = 0.0;
  };
  std::vector<Candidate> accepted;

  // BFS frontier: combinations that passed the impact pruning and may be
  // extended.  Extension is canonical — only attributes with a larger id
  // than the last concrete one — so each combination is visited once.
  std::vector<AttributeCombination> frontier;
  const std::int32_t max_layer = config.max_layer > 0
                                     ? config.max_layer
                                     : schema.attributeCount();

  // Layer 1 seeds.
  for (AttrId a = 0; a < schema.attributeCount(); ++a) {
    for (ElemId e = 0; e < schema.cardinality(a); ++e) {
      AttributeCombination ac(schema.attributeCount());
      ac.setSlot(a, e);
      frontier.push_back(std::move(ac));
    }
  }

  std::vector<AttributeCombination> next;
  for (std::int32_t layer = 1;
       layer <= max_layer && !frontier.empty(); ++layer) {
    next.clear();
    for (const auto& ac : frontier) {
      // Per-combination probe, as the original algorithm does.
      const auto rows = index.rowsMatching(ac);
      const VolumeStats inside = volumesFor(table, rows);

      // Pruning 1 — impact: too little issue volume kills the subtree.
      if (inside.drop < min_impact) continue;

      // Pruning 2 — change detection: the issue proportion inside must
      // significantly exceed the outside proportion.
      const VolumeStats outside{all.drop - inside.drop,
                                all.total - inside.total};
      const double p_value = stats::twoProportionPValue(
          pseudoCount(inside.drop), pseudoCount(inside.total),
          pseudoCount(outside.drop),
          std::max<std::uint64_t>(1, pseudoCount(outside.total)));
      const double inside_rate =
          inside.total <= 0.0 ? 0.0 : inside.drop / inside.total;
      const double outside_rate =
          outside.total <= 0.0 ? 0.0 : outside.drop / outside.total;

      if (p_value < config.significance && inside_rate > outside_rate) {
        Candidate c;
        c.ac = ac;
        c.isolation = isolationPower(inside, all);
        c.confidence = inside_rate;
        c.impact = inside.drop;
        accepted.push_back(std::move(c));
      }

      // Expand canonically.
      AttrId last_concrete = -1;
      for (AttrId a = 0; a < schema.attributeCount(); ++a) {
        if (!ac.isWildcard(a)) last_concrete = a;
      }
      for (AttrId a = last_concrete + 1; a < schema.attributeCount(); ++a) {
        for (ElemId e = 0; e < schema.cardinality(a); ++e) {
          AttributeCombination child = ac;
          child.setSlot(a, e);
          next.push_back(std::move(child));
        }
      }
    }
    frontier.swap(next);
  }

  // Prefer general — but only when the ancestor isolates at least as
  // well: a coarser combination that fails to separate the issue must not
  // suppress the sharper one it contains.
  std::vector<core::ScoredPattern> out;
  for (const auto& c : accepted) {
    const bool dominated = std::any_of(
        accepted.begin(), accepted.end(), [&c](const Candidate& other) {
          return other.ac.isAncestorOf(c.ac) &&
                 other.isolation >= c.isolation - 1e-12;
        });
    if (dominated) continue;
    core::ScoredPattern pattern;
    pattern.ac = c.ac;
    pattern.confidence = c.confidence;
    pattern.layer = c.ac.dim();
    pattern.score = c.isolation;
    out.push_back(std::move(pattern));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const core::ScoredPattern& a, const core::ScoredPattern& b) {
                     return a.score > b.score;
                   });
  if (k > 0 && static_cast<std::int32_t>(out.size()) > k) {
    out.resize(static_cast<std::size_t>(k));
  }
  return out;
}

}  // namespace rap::baselines
