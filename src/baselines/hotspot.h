// HotSpot baseline (Sun et al., IEEE Access'18) — discussed in the
// RAPMiner paper's related work (§VI) and the ancestor of Squeeze; it is
// not part of the paper's Fig. 8/9 comparison but is included as the
// repository's extension baseline.
//
// HotSpot assumes all root causes of a failure live in ONE cuboid and
// share the anomaly magnitude.  Per cuboid (searched layer by layer) it
// runs Monte-Carlo Tree Search over element subsets, scoring states with
// the ripple-effect potential score (same GPS reduction as the Squeeze
// baseline), and keeps the best-scoring set found within its iteration
// budget.  Hierarchical pruning: elements whose singleton score is
// negligible never enter the search set of deeper cuboids.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "dataset/leaf_table.h"

namespace rap::baselines {

struct HotSpotConfig {
  std::int32_t mcts_iterations = 64;   ///< per cuboid
  std::int32_t max_set_size = 3;       ///< max elements per root-cause set
  std::int32_t max_elements = 24;      ///< candidate elements per cuboid
  double ucb_exploration = 0.3;        ///< UCB1 exploration constant
  double ps_stop_threshold = 0.98;     ///< early stop when reached
  std::uint64_t seed = 7;              ///< rollout determinism
};

std::vector<core::ScoredPattern> hotspotLocalize(const dataset::LeafTable& table,
                                                 const HotSpotConfig& config,
                                                 std::int32_t k);

}  // namespace rap::baselines
