#include "baselines/hotspot.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "dataset/cuboid.h"
#include "dataset/index.h"
#include "util/rng.h"

namespace rap::baselines {

using dataset::AttributeCombination;
using dataset::CuboidMask;
using dataset::RowId;

namespace {

/// Candidate element of one cuboid with its covered rows cached.
struct Element {
  AttributeCombination ac;
  std::vector<RowId> rows;
  double singleton_ps = 0.0;
};

/// Ripple-effect potential score of a union of elements (same reduction
/// as the Squeeze baseline's GPS; see squeeze.cpp).
double potentialScore(const dataset::LeafTable& table,
                      const std::vector<RowId>& covered, double total_dev) {
  if (total_dev <= 0.0 || covered.empty()) return 0.0;
  double sel_dev = 0.0;
  double v_sum = 0.0;
  double f_sum = 0.0;
  for (const RowId id : covered) {
    const auto& row = table.row(id);
    sel_dev += std::fabs(row.v - row.f);
    v_sum += row.v;
    f_sum += row.f;
  }
  if (f_sum <= 0.0) return 0.0;
  const double ratio = v_sum / f_sum;
  double sel_ripple = 0.0;
  for (const RowId id : covered) {
    const auto& row = table.row(id);
    sel_ripple += std::fabs(row.v - row.f * ratio);
  }
  return (sel_dev - sel_ripple) / total_dev;
}

std::vector<RowId> unionRows(const std::vector<Element>& elements,
                             const std::vector<std::int32_t>& selected) {
  std::vector<RowId> covered;
  for (const auto idx : selected) {
    const auto& rows = elements[static_cast<std::size_t>(idx)].rows;
    covered.insert(covered.end(), rows.begin(), rows.end());
  }
  std::sort(covered.begin(), covered.end());
  covered.erase(std::unique(covered.begin(), covered.end()), covered.end());
  return covered;
}

/// One MCTS tree node: a set of selected element indices (sorted).
struct Node {
  std::vector<std::int32_t> selected;
  double best_q = 0.0;     ///< max descendant score (HotSpot backs up max)
  std::int32_t visits = 0;
  std::map<std::int32_t, std::unique_ptr<Node>> children;  // by element idx
};

struct MctsContext {
  const dataset::LeafTable* table;
  const std::vector<Element>* elements;
  double total_dev;
  const HotSpotConfig* config;
  util::Rng* rng;
  double best_ps = 0.0;
  std::vector<std::int32_t> best_selection;
};

double evaluate(MctsContext& ctx, const std::vector<std::int32_t>& selected) {
  const double ps = potentialScore(
      *ctx.table, unionRows(*ctx.elements, selected), ctx.total_dev);
  if (ps > ctx.best_ps) {
    ctx.best_ps = ps;
    ctx.best_selection = selected;
  }
  return ps;
}

/// Random completion of a state up to max_set_size; returns the best
/// score seen along the rollout.
double rollout(MctsContext& ctx, std::vector<std::int32_t> selected) {
  double best = evaluate(ctx, selected);
  const auto n = static_cast<std::int32_t>(ctx.elements->size());
  while (static_cast<std::int32_t>(selected.size()) <
         ctx.config->max_set_size) {
    // Draw an unused element uniformly.
    std::vector<std::int32_t> unused;
    for (std::int32_t i = 0; i < n; ++i) {
      if (std::find(selected.begin(), selected.end(), i) == selected.end()) {
        unused.push_back(i);
      }
    }
    if (unused.empty()) break;
    selected.push_back(unused[static_cast<std::size_t>(
        ctx.rng->uniformInt(0, static_cast<std::int64_t>(unused.size()) - 1))]);
    std::sort(selected.begin(), selected.end());
    best = std::max(best, evaluate(ctx, selected));
  }
  return best;
}

double mctsIterate(MctsContext& ctx, Node& node) {
  node.visits += 1;
  const auto n = static_cast<std::int32_t>(ctx.elements->size());
  if (static_cast<std::int32_t>(node.selected.size()) >=
      ctx.config->max_set_size) {
    const double q = evaluate(ctx, node.selected);
    node.best_q = std::max(node.best_q, q);
    return q;
  }

  // Unexpanded action?  Expand the first unused element not yet a child.
  for (std::int32_t i = 0; i < n; ++i) {
    if (node.children.contains(i)) continue;
    if (std::find(node.selected.begin(), node.selected.end(), i) !=
        node.selected.end()) {
      continue;
    }
    auto child = std::make_unique<Node>();
    child->selected = node.selected;
    child->selected.push_back(i);
    std::sort(child->selected.begin(), child->selected.end());
    const double q = rollout(ctx, child->selected);
    child->best_q = q;
    child->visits = 1;
    node.children.emplace(i, std::move(child));
    node.best_q = std::max(node.best_q, q);
    return q;
  }

  // Fully expanded: UCB1 over children (exploit max-backup Q).
  Node* best_child = nullptr;
  double best_ucb = -1.0;
  for (auto& [idx, child] : node.children) {
    const double exploit = child->best_q;
    const double explore =
        ctx.config->ucb_exploration *
        std::sqrt(std::log(static_cast<double>(node.visits) + 1.0) /
                  (static_cast<double>(child->visits) + 1e-9));
    const double ucb = exploit + explore;
    if (ucb > best_ucb) {
      best_ucb = ucb;
      best_child = child.get();
    }
  }
  if (best_child == nullptr) {
    const double q = evaluate(ctx, node.selected);
    node.best_q = std::max(node.best_q, q);
    return q;
  }
  const double q = mctsIterate(ctx, *best_child);
  node.best_q = std::max(node.best_q, q);
  return q;
}

}  // namespace

std::vector<core::ScoredPattern> hotspotLocalize(const dataset::LeafTable& table,
                                                 const HotSpotConfig& config,
                                                 std::int32_t k) {
  if (table.empty() || table.anomalousCount() == 0) return {};
  const dataset::InvertedIndex index(table);
  util::Rng rng(config.seed);

  double total_dev = 0.0;
  for (const auto& row : table.rows()) total_dev += std::fabs(row.v - row.f);
  if (total_dev <= 0.0) return {};

  double best_ps = 0.0;
  std::vector<AttributeCombination> best_set;
  std::int32_t best_layer = 0;

  const CuboidMask all_mask = dataset::allAttributesMask(table.schema());
  for (const CuboidMask mask : dataset::allCuboidsByLayer(all_mask)) {
    // Candidate elements: groups of the cuboid, strongest singletons
    // first (hierarchical pruning keeps only the top max_elements).
    std::vector<Element> elements;
    for (const auto& group : table.groupByWithRows(mask)) {
      if (group.agg.anomalous == 0) continue;
      Element e;
      e.ac = group.agg.ac;
      e.rows = group.rows;
      e.singleton_ps = potentialScore(table, e.rows, total_dev);
      elements.push_back(std::move(e));
    }
    std::stable_sort(elements.begin(), elements.end(),
                     [](const Element& a, const Element& b) {
                       return a.singleton_ps > b.singleton_ps;
                     });
    if (static_cast<std::int32_t>(elements.size()) > config.max_elements) {
      elements.resize(static_cast<std::size_t>(config.max_elements));
    }
    if (elements.empty()) continue;

    MctsContext ctx{&table, &elements, total_dev, &config, &rng, 0.0, {}};
    Node root;
    for (std::int32_t it = 0; it < config.mcts_iterations; ++it) {
      mctsIterate(ctx, root);
      if (ctx.best_ps >= config.ps_stop_threshold) break;
    }

    if (ctx.best_ps > best_ps) {
      best_ps = ctx.best_ps;
      best_layer = dataset::cuboidLayer(mask);
      best_set.clear();
      for (const auto idx : ctx.best_selection) {
        best_set.push_back(elements[static_cast<std::size_t>(idx)].ac);
      }
    }
    if (best_ps >= config.ps_stop_threshold) break;
  }

  std::vector<core::ScoredPattern> out;
  for (const auto& ac : best_set) {
    core::ScoredPattern pattern;
    pattern.ac = ac;
    pattern.layer = best_layer;
    pattern.confidence = index.aggregateFor(ac).confidence();
    pattern.score = best_ps;
    out.push_back(std::move(pattern));
  }
  if (k > 0 && static_cast<std::int32_t>(out.size()) > k) {
    out.resize(static_cast<std::size_t>(k));
  }
  return out;
}

}  // namespace rap::baselines
