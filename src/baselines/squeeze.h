// Squeeze baseline (Li et al., ISSRE'19) — §V-C.4 of the RAPMiner paper.
//
// Squeeze exploits its two assumptions (called out in the RAPMiner
// paper's §V-A): leaves under one root cause share the same anomaly
// magnitude (vertical), and magnitudes differ across root causes
// (horizontal).  The pipeline:
//   1. per-leaf deviation score d = 2(f - v)/(f + v);
//   2. density-based clustering of the non-trivial deviation scores —
//      leaves of one root cause land in one cluster when the vertical
//      assumption holds;
//   3. per cluster, search every cuboid bottom-up: group the cluster's
//      leaves per cuboid, order groups by "descent score" (the fraction
//      of each group's table-wide leaves that fall into the cluster),
//      and greedily grow a selection while the Generalized Potential
//      Score improves;
//   4. report each cluster's best-GPS selection, ranked by GPS.
//
// GPS here is the ripple-effect form reduced to
//     GPS = (explained deviation) / (total deviation)
//         = (sum_S |v - f| - sum_S |v - a|) / (sum_all |v - f|)
// with a_i = f_i * (V_S / F_S) the ripple-adjusted expectation — an
// order-equivalent normalization of the ISSRE'19 score (DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "dataset/leaf_table.h"

namespace rap::baselines {

struct SqueezeConfig {
  /// Leaves with |deviation score| below this are "normal" and excluded
  /// from clustering.
  double min_deviation = 0.1;
  /// Histogram resolution over the deviation-score axis [-2, 2].
  std::int32_t histogram_bins = 80;
  std::int32_t smooth_radius = 2;
  double valley_ratio = 0.6;
  /// Clusters with fewer leaves are noise.
  std::uint64_t min_cluster_size = 3;
  /// Greedy growth examines at most this many top groups per cuboid.
  std::int32_t max_groups_per_cuboid = 24;
};

std::vector<core::ScoredPattern> squeezeLocalize(
    const dataset::LeafTable& table, const SqueezeConfig& config,
    std::int32_t k);

}  // namespace rap::baselines
