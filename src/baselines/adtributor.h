// Adtributor baseline (Bhagwan et al., NSDI'14) — §V-C.1 of the RAPMiner
// paper.
//
// Adtributor assumes every root cause is ONE-dimensional: it scores each
// element of each attribute in isolation.
//   * surprise  — Jensen–Shannon divergence between the element's share
//     of the forecast total (p = f_e / F) and of the actual total
//     (q = v_e / V);
//   * explanatory power (EP) — the element's share of the total change,
//     (v_e - f_e) / (V - F);
//   * succinctness — prefer attributes whose few top elements explain
//     the change.
// Per attribute, elements are taken in descending surprise while their
// cumulative EP is below t_ep and each contributes at least t_eep; the
// attributes are then ranked by the surprise of their candidate set.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "dataset/leaf_table.h"

namespace rap::baselines {

struct AdtributorConfig {
  double t_ep = 0.67;   ///< cumulative explanatory-power target
  double t_eep = 0.05;  ///< minimum per-element explanatory power
  std::int32_t max_elements_per_attribute = 5;  ///< succinctness bound
};

/// Returns 1-dimensional patterns ranked by (attribute surprise, element
/// surprise); at most `k` when k > 0.
std::vector<core::ScoredPattern> adtributorLocalize(
    const dataset::LeafTable& table, const AdtributorConfig& config,
    std::int32_t k);

}  // namespace rap::baselines
