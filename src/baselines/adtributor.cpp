#include "baselines/adtributor.h"

#include <algorithm>
#include <cmath>

#include "stats/divergence.h"

namespace rap::baselines {

using dataset::AttrId;
using dataset::AttributeCombination;

namespace {

struct ElementScore {
  AttributeCombination ac;
  double surprise = 0.0;
  double ep = 0.0;
};

struct AttributeCandidate {
  AttrId attr = -1;
  std::vector<ElementScore> elements;
  double total_surprise = 0.0;
  double total_ep = 0.0;
};

}  // namespace

std::vector<core::ScoredPattern> adtributorLocalize(
    const dataset::LeafTable& table, const AdtributorConfig& config,
    std::int32_t k) {
  const auto& schema = table.schema();
  const double F = table.totalF();
  const double V = table.totalV();
  const double change = V - F;

  std::vector<AttributeCandidate> candidates;
  for (AttrId a = 0; a < schema.attributeCount(); ++a) {
    // Per-element forecast/actual shares from the 1-D cuboid of `a`.
    std::vector<ElementScore> scored;
    for (const auto& group : table.groupBy(1u << a)) {
      ElementScore es;
      es.ac = group.ac;
      const double p = F > 0.0 ? group.f_sum / F : 0.0;
      const double q = V > 0.0 ? group.v_sum / V : 0.0;
      es.surprise = stats::surprise(p, q);
      es.ep = change != 0.0 ? (group.v_sum - group.f_sum) / change : 0.0;
      scored.push_back(std::move(es));
    }
    std::sort(scored.begin(), scored.end(),
              [](const ElementScore& x, const ElementScore& y) {
                return x.surprise > y.surprise;
              });

    // Accumulate elements by descending surprise until the cumulative
    // explanatory power reaches t_ep (succinctness caps the set size).
    AttributeCandidate candidate;
    candidate.attr = a;
    for (const auto& es : scored) {
      if (static_cast<std::int32_t>(candidate.elements.size()) >=
          config.max_elements_per_attribute) {
        break;
      }
      if (es.ep < config.t_eep) continue;  // too little explanatory power
      candidate.elements.push_back(es);
      candidate.total_surprise += es.surprise;
      candidate.total_ep += es.ep;
      if (candidate.total_ep >= config.t_ep) break;
    }
    // Only attributes whose candidate set explains enough of the change
    // qualify (NSDI'14 §3.3).
    if (!candidate.elements.empty() && candidate.total_ep >= config.t_ep) {
      candidates.push_back(std::move(candidate));
    }
  }

  // Rank attributes by surprise of their explanatory set.
  std::sort(candidates.begin(), candidates.end(),
            [](const AttributeCandidate& x, const AttributeCandidate& y) {
              return x.total_surprise > y.total_surprise;
            });

  std::vector<core::ScoredPattern> out;
  for (const auto& candidate : candidates) {
    for (const auto& es : candidate.elements) {
      core::ScoredPattern pattern;
      pattern.ac = es.ac;
      pattern.layer = 1;
      pattern.confidence = es.ep;
      // The ranking is lexicographic (attribute surprise, then element
      // surprise); expose it as a monotone score so downstream rank
      // consumers see a consistent ordering.
      pattern.score = 1.0 / (1.0 + static_cast<double>(out.size()));
      out.push_back(std::move(pattern));
    }
  }
  if (k > 0 && static_cast<std::int32_t>(out.size()) > k) {
    out.resize(static_cast<std::size_t>(k));
  }
  return out;
}

}  // namespace rap::baselines
