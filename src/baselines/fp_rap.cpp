#include "baselines/fp_rap.h"

#include <algorithm>
#include <cmath>

#include "dataset/index.h"
#include "mining/fpgrowth.h"

namespace rap::baselines {

using dataset::AttrId;
using dataset::AttributeCombination;
using dataset::ElemId;

namespace {

/// Items encode (attribute, element) pairs with per-attribute offsets.
class ItemCodec {
 public:
  explicit ItemCodec(const dataset::Schema& schema) {
    offsets_.resize(static_cast<std::size_t>(schema.attributeCount()) + 1, 0);
    for (AttrId a = 0; a < schema.attributeCount(); ++a) {
      offsets_[static_cast<std::size_t>(a) + 1] =
          offsets_[static_cast<std::size_t>(a)] + schema.cardinality(a);
    }
  }

  mining::Item encode(AttrId attr, ElemId elem) const {
    return offsets_[static_cast<std::size_t>(attr)] + elem;
  }

  /// Returns (attr, elem) of an item.
  std::pair<AttrId, ElemId> decode(mining::Item item) const {
    AttrId attr = 0;
    while (offsets_[static_cast<std::size_t>(attr) + 1] <= item) ++attr;
    return {attr, item - offsets_[static_cast<std::size_t>(attr)]};
  }

 private:
  std::vector<mining::Item> offsets_;
};

}  // namespace

std::vector<core::ScoredPattern> fpGrowthLocalize(
    const dataset::LeafTable& table, const FpRapConfig& config,
    std::int32_t k) {
  const auto& schema = table.schema();
  const ItemCodec codec(schema);

  // Transactions = anomalous leaves.
  std::vector<mining::Transaction> transactions;
  for (const auto& row : table.rows()) {
    if (!row.anomalous) continue;
    mining::Transaction txn;
    txn.reserve(static_cast<std::size_t>(schema.attributeCount()));
    for (AttrId a = 0; a < schema.attributeCount(); ++a) {
      txn.push_back(codec.encode(a, row.ac.slot(a)));
    }
    transactions.push_back(std::move(txn));
  }
  if (transactions.empty()) return {};

  mining::FpGrowthOptions options;
  options.min_support = std::max<std::uint64_t>(
      config.min_support_abs,
      static_cast<std::uint64_t>(config.min_support_ratio *
                                 static_cast<double>(transactions.size())));
  options.max_itemset_size = schema.attributeCount();
  const auto itemsets =
      config.engine == RuleMiningEngine::kApriori
          ? mining::mineFrequentItemsetsApriori(transactions, options)
          : mining::mineFrequentItemsets(transactions, options);

  // Rule confidence over the full table, via the inverted index.
  const dataset::InvertedIndex index(table);
  struct Candidate {
    AttributeCombination ac;
    double confidence = 0.0;
    double support_ratio = 0.0;  // over anomalous leaves
    std::int32_t layer = 0;
  };
  std::vector<Candidate> candidates;
  for (const auto& itemset : itemsets) {
    AttributeCombination ac(schema.attributeCount());
    for (const auto item : itemset.items) {
      const auto [attr, elem] = codec.decode(item);
      ac.setSlot(attr, elem);
    }
    const auto agg = index.aggregateFor(ac);
    if (agg.total == 0) continue;
    const double confidence = agg.confidence();
    if (confidence < config.min_confidence) continue;
    Candidate c;
    c.layer = ac.dim();
    c.ac = std::move(ac);
    c.confidence = confidence;
    c.support_ratio = static_cast<double>(itemset.support) /
                      static_cast<double>(transactions.size());
    candidates.push_back(std::move(c));
  }

  // Generalization filter: drop candidates with a passing proper
  // ancestor.
  std::vector<core::ScoredPattern> out;
  for (const auto& c : candidates) {
    const bool has_ancestor =
        std::any_of(candidates.begin(), candidates.end(),
                    [&c](const Candidate& other) {
                      return other.ac.isAncestorOf(c.ac);
                    });
    if (has_ancestor) continue;
    core::ScoredPattern pattern;
    pattern.ac = c.ac;
    pattern.confidence = c.confidence;
    pattern.layer = c.layer;
    // Rank rules by how much of the anomaly they cover, weighted by rule
    // confidence — the standard support x confidence ordering.
    pattern.score = c.support_ratio * c.confidence;
    out.push_back(std::move(pattern));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const core::ScoredPattern& a, const core::ScoredPattern& b) {
                     return a.score > b.score;
                   });
  if (k > 0 && static_cast<std::int32_t>(out.size()) > k) {
    out.resize(static_cast<std::size_t>(k));
  }
  return out;
}

}  // namespace rap::baselines
