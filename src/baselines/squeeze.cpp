#include "baselines/squeeze.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "dataset/cuboid.h"
#include "dataset/index.h"
#include "stats/histogram.h"

namespace rap::baselines {

using dataset::AttributeCombination;
using dataset::CuboidMask;
using dataset::RowId;

namespace {

double deviationScore(const dataset::LeafRow& row) noexcept {
  const double denom = row.f + row.v;
  if (denom <= 0.0) return 0.0;
  return 2.0 * (row.f - row.v) / denom;
}

struct Selection {
  std::vector<AttributeCombination> acs;
  double gps = -1.0;
  std::int32_t layer = 0;
};

/// GPS of a selection whose covered rows and aggregate sums are known.
/// `total_dev` = sum over ALL table rows of |v - f|.
double gpsOf(const dataset::LeafTable& table,
             const std::vector<RowId>& covered_rows, double total_dev) {
  if (total_dev <= 0.0) return 0.0;
  double sel_dev = 0.0;
  double v_sum = 0.0;
  double f_sum = 0.0;
  for (const RowId id : covered_rows) {
    const auto& row = table.row(id);
    sel_dev += std::fabs(row.v - row.f);
    v_sum += row.v;
    f_sum += row.f;
  }
  if (f_sum <= 0.0) return 0.0;
  // Ripple effect: if the selection were the root cause, every covered
  // leaf's expectation shrinks by the selection-wide factor V_S / F_S.
  const double ratio = v_sum / f_sum;
  double sel_ripple = 0.0;
  for (const RowId id : covered_rows) {
    const auto& row = table.row(id);
    sel_ripple += std::fabs(row.v - row.f * ratio);
  }
  return (sel_dev - sel_ripple) / total_dev;
}

}  // namespace

std::vector<core::ScoredPattern> squeezeLocalize(
    const dataset::LeafTable& table, const SqueezeConfig& config,
    std::int32_t k) {
  if (table.empty()) return {};

  // 1. Deviation scores; collect the non-trivially-deviating rows.
  std::vector<double> scores(table.size(), 0.0);
  std::vector<RowId> deviating;
  for (RowId id = 0; id < table.size(); ++id) {
    scores[id] = deviationScore(table.row(id));
    if (std::fabs(scores[id]) >= config.min_deviation) {
      deviating.push_back(id);
    }
  }
  if (deviating.empty()) return {};

  // 2. Density clustering over the deviation axis.
  stats::Histogram hist(-2.0, 2.0, config.histogram_bins);
  for (const RowId id : deviating) hist.add(scores[id]);
  const auto clusters =
      stats::densityClusters(hist, config.smooth_radius, config.valley_ratio);

  double total_dev = 0.0;
  for (const auto& row : table.rows()) total_dev += std::fabs(row.v - row.f);

  const dataset::InvertedIndex index(table);
  const CuboidMask all_mask = dataset::allAttributesMask(table.schema());

  // Table-wide groups per cuboid, computed once and shared by every
  // cluster (descent-score denominators and covered-row lookups).
  const auto cuboids = dataset::allCuboidsByLayer(all_mask);
  std::unordered_map<CuboidMask,
                     std::unordered_map<AttributeCombination,
                                        std::vector<RowId>, dataset::AcHash>>
      full_groups;
  for (const CuboidMask mask : cuboids) {
    auto& per_ac = full_groups[mask];
    for (auto& g : table.groupByWithRows(mask)) {
      per_ac.emplace(g.agg.ac, std::move(g.rows));
    }
  }

  std::vector<core::ScoredPattern> out;
  for (const auto& cluster : clusters) {
    if (cluster.weight < config.min_cluster_size) continue;
    // Rows of this cluster.
    std::vector<RowId> cluster_rows;
    for (const RowId id : deviating) {
      if (scores[id] >= cluster.lo && scores[id] <= cluster.hi) {
        cluster_rows.push_back(id);
      }
    }
    if (cluster_rows.size() < config.min_cluster_size) continue;

    // 3. Search every cuboid for the best selection.
    Selection best;
    for (const CuboidMask mask : cuboids) {
      auto groups = table.groupByWithRows(mask, cluster_rows);
      const auto& per_ac = full_groups.at(mask);

      // Descent score: fraction of the group's table-wide leaves inside
      // the cluster.  Groups fully engulfed by the cluster come first.
      struct Ranked {
        const dataset::GroupWithRows* group;
        const std::vector<RowId>* table_rows;
        double descent;
      };
      std::vector<Ranked> ranked;
      ranked.reserve(groups.size());
      for (const auto& g : groups) {
        const auto& table_wide = per_ac.at(g.agg.ac);
        const double descent =
            table_wide.empty()
                ? 0.0
                : static_cast<double>(g.rows.size()) /
                      static_cast<double>(table_wide.size());
        ranked.push_back({&g, &table_wide, descent});
      }
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const Ranked& a, const Ranked& b) {
                         return a.descent > b.descent;
                       });
      if (static_cast<std::int32_t>(ranked.size()) >
          config.max_groups_per_cuboid) {
        ranked.resize(static_cast<std::size_t>(config.max_groups_per_cuboid));
      }

      // Greedy growth: extend the selection while GPS improves.  Groups
      // of one cuboid are disjoint, so the union needs no deduplication.
      std::vector<AttributeCombination> acs;
      std::vector<RowId> covered;
      double best_gps_here = -1.0;
      std::size_t best_len = 0;
      for (const auto& r : ranked) {
        acs.push_back(r.group->agg.ac);
        covered.insert(covered.end(), r.table_rows->begin(),
                       r.table_rows->end());
        const double gps = gpsOf(table, covered, total_dev);
        if (gps > best_gps_here) {
          best_gps_here = gps;
          best_len = acs.size();
        }
      }
      // Prefer the more general, more succinct selection on quasi-ties:
      // a coarser cuboid explaining the same rows yields the same GPS up
      // to float summation order, and ISSRE'19 breaks such ties toward
      // fewer, coarser root causes.
      constexpr double kTie = 1e-9;
      const auto layer = dataset::cuboidLayer(mask);
      const bool strictly_better = best_gps_here > best.gps + kTie;
      const bool tie_but_simpler =
          best_gps_here > best.gps - kTie &&
          (layer < best.layer ||
           (layer == best.layer && best_len < best.acs.size()));
      if (strictly_better || tie_but_simpler) {
        best.gps = best_gps_here;
        best.layer = layer;
        best.acs.assign(acs.begin(),
                        acs.begin() + static_cast<std::ptrdiff_t>(best_len));
      }
    }

    // 4. Emit the cluster's winning selection.
    for (const auto& ac : best.acs) {
      core::ScoredPattern pattern;
      pattern.ac = ac;
      pattern.layer = best.layer;
      pattern.confidence = index.aggregateFor(ac).confidence();
      pattern.score = best.gps;
      out.push_back(std::move(pattern));
    }
  }

  // Deduplicate across clusters, keep the best score per pattern.
  std::stable_sort(out.begin(), out.end(),
                   [](const core::ScoredPattern& a, const core::ScoredPattern& b) {
                     return a.score > b.score;
                   });
  std::vector<core::ScoredPattern> deduped;
  for (auto& pattern : out) {
    const bool seen = std::any_of(
        deduped.begin(), deduped.end(), [&pattern](const core::ScoredPattern& p) {
          return p.ac == pattern.ac;
        });
    if (!seen) deduped.push_back(std::move(pattern));
  }
  if (k > 0 && static_cast<std::int32_t>(deduped.size()) > k) {
    deduped.resize(static_cast<std::size_t>(k));
  }
  return deduped;
}

}  // namespace rap::baselines
