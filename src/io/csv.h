// Minimal RFC-4180-ish CSV reader/writer: quoted fields, embedded commas
// and quotes, both LF and CRLF line endings.  No external dependencies —
// the paper's datasets ship as plain CSV (one file per timestamp with
// columns  attr1,...,attrN,real,predict).
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace rap::io {

using CsvRow = std::vector<std::string>;

/// Parse an entire CSV document from a string.
util::Result<std::vector<CsvRow>> parseCsv(const std::string& text);

/// Read and parse a CSV file.
util::Result<std::vector<CsvRow>> readCsvFile(const std::string& path);

/// Serialize rows, quoting any field containing comma / quote / newline.
std::string writeCsv(const std::vector<CsvRow>& rows);

/// Write rows to a file, overwriting it.
util::Status writeCsvFile(const std::string& path,
                          const std::vector<CsvRow>& rows);

}  // namespace rap::io
