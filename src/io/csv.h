// Minimal RFC-4180-ish CSV reader/writer: quoted fields, embedded commas
// and quotes, both LF and CRLF line endings.  No external dependencies —
// the paper's datasets ship as plain CSV (one file per timestamp with
// columns  attr1,...,attrN,real,predict).
//
// Two read paths share one state machine:
//   * streaming — CsvStreamParser::feed() arbitrary chunks (rows are
//     delivered through a callback as they complete, O(row) memory), or
//     streamCsvFile() which feeds a file chunk by chunk;
//   * batch — parseCsv()/readCsvFile(), thin wrappers that collect the
//     streamed rows into a vector.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rap::io {

using CsvRow = std::vector<std::string>;

/// Receives each completed row; the row may be consumed (moved from).
using CsvRowCallback = std::function<void(CsvRow&&)>;

/// Incremental CSV parser.  Chunk boundaries may fall anywhere —
/// mid-field, mid-CRLF, even between the two quotes of an escaped
/// quote.  Errors report the same messages and global byte offsets as
/// the batch parser.  After an error the parser must be discarded.
///
/// Hostile-input hardening (a daemon fed by arbitrary producers must
/// fail with a Status, never by exhausting memory or corrupting rows):
///   * a field longer than kMaxFieldBytes is an error, not an
///     allocation — a missing quote can otherwise swallow the rest of
///     the input into one field;
///   * an embedded NUL byte is an error — the datasets are text, and a
///     NUL reliably signals a truncated or binary upload.
/// Both errors carry the 1-based row number and byte offset.
class CsvStreamParser {
 public:
  /// Upper bound on one field's size, in bytes.
  static constexpr std::size_t kMaxFieldBytes = 1 << 20;

  /// Consumes one chunk, invoking `callback` for every row completed
  /// within it.
  util::Status feed(std::string_view chunk, const CsvRowCallback& callback);

  /// Signals end of input: flushes a final unterminated row (if any) and
  /// resets the parser for reuse.
  util::Status finish(const CsvRowCallback& callback);

 private:
  CsvRow current_;
  std::string field_;
  bool in_quotes_ = false;
  /// A '"' was seen inside a quoted field; whether it closes the field
  /// or starts an escaped quote depends on the next byte, which may be
  /// in the next chunk.
  bool pending_quote_ = false;
  bool row_has_content_ = false;
  std::uint64_t offset_ = 0;  ///< global byte offset of the next char
  std::uint64_t row_ = 1;     ///< 1-based row of the next char
};

/// Parse an entire CSV document from a string.
util::Result<std::vector<CsvRow>> parseCsv(const std::string& text);

/// Read and parse a CSV file.
util::Result<std::vector<CsvRow>> readCsvFile(const std::string& path);

/// Stream a CSV file row by row without materializing the document
/// (64 KiB read chunks).
util::Status streamCsvFile(const std::string& path,
                           const CsvRowCallback& callback);

/// Serialize rows, quoting any field containing comma / quote / newline.
std::string writeCsv(const std::vector<CsvRow>& rows);

/// Write rows to a file, overwriting it.
util::Status writeCsvFile(const std::string& path,
                          const std::vector<CsvRow>& rows);

}  // namespace rap::io
