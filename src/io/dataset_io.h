// Dataset (de)serialization in the layout the Squeeze repository uses:
//
//   <timestamp>.csv        attr1,...,attrN,real,predict   (one leaf per row)
//   injection_info.csv     timestamp,set(ground-truth RAPs ';'-separated)
//
// plus a schema sidecar of our own (attribute name -> elements) so a
// table round-trips without external knowledge.
#pragma once

#include <string>
#include <vector>

#include "dataset/leaf_table.h"
#include "gen/case.h"
#include "io/csv.h"

namespace rap::io {

/// Writes one leaf table: header "attr...,real,predict,label" then rows.
/// The label column carries the detection verdict (0/1) so a saved table
/// can be re-localized without re-running detection.
util::Status saveLeafTable(const dataset::LeafTable& table,
                           const std::string& path);

/// Reads a leaf table against a known schema.  Accepts files with or
/// without the trailing label column (absent -> all rows normal).
util::Result<dataset::LeafTable> loadLeafTable(const dataset::Schema& schema,
                                               const std::string& path);

/// Builds a leaf table from already-parsed CSV rows (header row first,
/// then one leaf per row) — the shared back end of loadLeafTable and
/// the localization service's POST bodies.  `source` names the origin
/// in error messages ("<path>" / "request body").  Applies the same
/// hardening as the file path: element names must exist in the schema
/// and KPI values must be finite.
util::Result<dataset::LeafTable> leafTableFromCsvRows(
    const dataset::Schema& schema, const std::vector<CsvRow>& rows,
    const std::string& source);

/// Schema sidecar: one row per attribute, "name,elem1,elem2,...".
util::Status saveSchema(const dataset::Schema& schema, const std::string& path);
util::Result<dataset::Schema> loadSchema(const std::string& path);

/// Ground truth: one row per case, "case_id,rap1;rap2;...", each RAP in
/// the textual form AttributeCombination::toString produces.
struct GroundTruthEntry {
  std::string case_id;
  std::vector<dataset::AttributeCombination> raps;
};

util::Status saveGroundTruth(const dataset::Schema& schema,
                             const std::vector<GroundTruthEntry>& entries,
                             const std::string& path);
util::Result<std::vector<GroundTruthEntry>> loadGroundTruth(
    const dataset::Schema& schema, const std::string& path);

/// A materialized dataset directory (the layout `generate_dataset`
/// writes and the Squeeze repository uses):
///   schema.csv            attribute dictionaries
///   injection_info.csv    case_id -> ground-truth RAPs
///   <case_id>.csv         one leaf table per case
struct LoadedDataset {
  dataset::Schema schema;
  std::vector<gen::Case> cases;  ///< ordered as in injection_info.csv
};

util::Result<LoadedDataset> loadDatasetDirectory(const std::string& dir);

}  // namespace rap::io
