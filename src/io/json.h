// Minimal JSON writer + serialization of localization results, so the
// CLI tools can feed dashboards/ticketing systems.  Writing only — this
// repository never needs to parse JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "dataset/schema.h"

namespace rap::io {

/// Incremental JSON document builder with correct string escaping.
/// Usage:
///   JsonWriter w;
///   w.beginObject();
///   w.key("n"); w.value(3);
///   w.key("items"); w.beginArray(); w.value("a"); w.endArray();
///   w.endObject();
///   std::string doc = std::move(w).str();
class JsonWriter {
 public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(const std::string& name);
  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(std::int64_t number);
  void value(bool flag);
  void nullValue();

  std::string str() && { return std::move(out_); }
  const std::string& str() const& { return out_; }

 private:
  void prefix();  ///< emit a comma when needed
  void rawValue(const std::string& raw);

  std::string out_;
  // One entry per open container: true when at least one element has
  // been emitted (so the next element needs a comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string escapeJson(const std::string& text);

/// Serializes a localization result:
/// {"patterns":[{"pattern":"(L1, *, *, Site1)","confidence":..,
///   "layer":..,"score":..}...],"stats":{...}}
std::string resultToJson(const dataset::Schema& schema,
                         const core::LocalizationResult& result);

}  // namespace rap::io
