// Stream-engine checkpoint (de)serialization.
//
// A checkpoint is the engine's durable resume cut: the event-time high
// watermark, each shard's sealed-up-to promise, and every window
// fragment that was buffered but not yet sealed when the checkpoint was
// taken (per-shard open epochs plus assembler-pending fragments).  A
// restarted daemon restored from it resumes at the next unsealed epoch:
// epochs at or below the recorded seal frontier are never sealed again
// (replayed events for them count late), and buffered fragments are not
// lost across the restart.
//
// Format (versioned, line-based text; doubles serialize as C99 hex
// floats so values round-trip BIT-EXACTLY — the chaos suite asserts
// stream output is bit-identical to batch across a kill/restore cycle):
//
//   RAPCHKPT <version>
//   shards <n>
//   window_width <w>
//   max_event_ts <ts>            # INT64_MIN = no event seen yet
//   sealed <s_0> ... <s_n-1>     # per-shard sealed_up_to (INT64_MIN = none)
//   fragment <shard> <epoch> <rows>   # shard -1 = assembler-pending
//   <slot> ... <slot> <v> <f> <0|1>   # one line per row
//   ...
//   end
//
// Forward compatibility: a reader rejects files whose version it does
// not know with Status::invalidArgument, never a partial load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/leaf_table.h"
#include "util/status.h"

namespace rap::io {

struct StreamCheckpoint {
  static constexpr std::int32_t kVersion = 1;
  /// Sentinel mirroring stream::WatermarkTracker::kNone (INT64_MIN).
  static constexpr std::int64_t kNone = INT64_MIN;

  std::int32_t version = kVersion;
  std::int32_t shards = 0;
  std::int64_t window_width = 0;
  std::int64_t max_event_ts = kNone;
  /// Per-shard sealed-up-to epoch; size must equal `shards`.
  std::vector<std::int64_t> shard_sealed_up_to;

  /// One buffered window fragment.  shard >= 0: rows a shard had
  /// bucketed but not yet contributed; shard == -1: rows already
  /// contributed to the assembler, pending the remaining shards' seals.
  struct Fragment {
    std::int32_t shard = -1;
    std::int64_t epoch = 0;
    std::vector<dataset::LeafRow> rows;
  };
  std::vector<Fragment> fragments;
};

/// Atomic-ish save: writes "<path>.tmp" then renames over `path`, so a
/// crash mid-write never leaves a truncated checkpoint behind.
util::Status saveStreamCheckpoint(const StreamCheckpoint& checkpoint,
                                  const std::string& path);

util::Result<StreamCheckpoint> loadStreamCheckpoint(const std::string& path);

}  // namespace rap::io
