#include "io/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace rap::io {

namespace {

/// Exact double rendering (C99 hex float): strtod parses it back to the
/// identical bit pattern, which the checkpoint equivalence tests rely on.
std::string hexDouble(double v) { return util::strFormat("%a", v); }

util::Status parseError(const std::string& path, std::size_t line,
                        const std::string& what) {
  return util::Status::invalidArgument(
      util::strFormat("%s:%zu: %s", path.c_str(), line, what.c_str()));
}

}  // namespace

util::Status saveStreamCheckpoint(const StreamCheckpoint& checkpoint,
                                  const std::string& path) {
  std::ostringstream out;
  out << "RAPCHKPT " << checkpoint.version << "\n";
  out << "shards " << checkpoint.shards << "\n";
  out << "window_width " << checkpoint.window_width << "\n";
  out << "max_event_ts " << checkpoint.max_event_ts << "\n";
  out << "sealed";
  for (const auto sealed : checkpoint.shard_sealed_up_to) out << ' ' << sealed;
  out << "\n";
  for (const auto& fragment : checkpoint.fragments) {
    out << "fragment " << fragment.shard << ' ' << fragment.epoch << ' '
        << fragment.rows.size() << "\n";
    for (const auto& row : fragment.rows) {
      for (const auto slot : row.ac.slots()) out << slot << ' ';
      out << hexDouble(row.v) << ' ' << hexDouble(row.f) << ' '
          << (row.anomalous ? 1 : 0) << "\n";
    }
  }
  out << "end\n";

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return util::Status::notFound("cannot open '" + tmp + "' for writing");
    }
    file << out.str();
    if (!file.flush()) {
      return util::Status::internal("write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::Status::internal("rename '" + tmp + "' -> '" + path +
                                  "' failed");
  }
  return util::Status::ok();
}

util::Result<StreamCheckpoint> loadStreamCheckpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return util::Status::notFound("cannot open '" + path + "'");

  StreamCheckpoint checkpoint;
  std::string line;
  std::size_t line_no = 0;
  const auto nextLine = [&]() -> bool {
    ++line_no;
    return static_cast<bool>(std::getline(file, line));
  };

  if (!nextLine()) return parseError(path, line_no, "empty checkpoint");
  {
    std::istringstream header(line);
    std::string magic;
    header >> magic >> checkpoint.version;
    if (magic != "RAPCHKPT" || header.fail()) {
      return parseError(path, line_no, "not a RAPCHKPT file");
    }
    if (checkpoint.version != StreamCheckpoint::kVersion) {
      return parseError(
          path, line_no,
          util::strFormat("unsupported checkpoint version %d (reader knows %d)",
                          checkpoint.version, StreamCheckpoint::kVersion));
    }
  }

  const auto expectKeyed = [&](const char* key,
                               std::int64_t& value) -> util::Status {
    if (!nextLine()) {
      return parseError(path, line_no, std::string("missing '") + key + "'");
    }
    std::istringstream in(line);
    std::string found;
    in >> found >> value;
    if (found != key || in.fail()) {
      return parseError(path, line_no, std::string("expected '") + key + "'");
    }
    return util::Status::ok();
  };

  std::int64_t shards = 0;
  RAP_RETURN_IF_ERROR(expectKeyed("shards", shards));
  if (shards < 1 || shards > 4096) {
    return parseError(path, line_no, "shard count out of range");
  }
  checkpoint.shards = static_cast<std::int32_t>(shards);
  RAP_RETURN_IF_ERROR(expectKeyed("window_width", checkpoint.window_width));
  if (checkpoint.window_width < 1) {
    return parseError(path, line_no, "window_width must be >= 1");
  }
  RAP_RETURN_IF_ERROR(expectKeyed("max_event_ts", checkpoint.max_event_ts));

  if (!nextLine()) return parseError(path, line_no, "missing 'sealed'");
  {
    std::istringstream in(line);
    std::string key;
    in >> key;
    if (key != "sealed") return parseError(path, line_no, "expected 'sealed'");
    std::int64_t sealed = 0;
    while (in >> sealed) checkpoint.shard_sealed_up_to.push_back(sealed);
    if (checkpoint.shard_sealed_up_to.size() !=
        static_cast<std::size_t>(checkpoint.shards)) {
      return parseError(path, line_no,
                        "sealed list size does not match shard count");
    }
  }

  while (nextLine()) {
    if (line == "end") return checkpoint;
    std::istringstream in(line);
    std::string key;
    std::int64_t shard = 0;
    std::int64_t epoch = 0;
    std::uint64_t row_count = 0;
    in >> key >> shard >> epoch >> row_count;
    if (key != "fragment" || in.fail()) {
      return parseError(path, line_no, "expected 'fragment' or 'end'");
    }
    if (shard < -1 || shard >= checkpoint.shards) {
      return parseError(path, line_no, "fragment shard out of range");
    }
    StreamCheckpoint::Fragment fragment;
    fragment.shard = static_cast<std::int32_t>(shard);
    fragment.epoch = epoch;
    fragment.rows.reserve(row_count);
    for (std::uint64_t r = 0; r < row_count; ++r) {
      if (!nextLine()) {
        return parseError(path, line_no, "truncated fragment rows");
      }
      const std::vector<std::string> parts = util::split(line, ' ');
      if (parts.size() < 3) {
        return parseError(path, line_no, "malformed fragment row");
      }
      std::vector<dataset::ElemId> slots;
      slots.reserve(parts.size() - 3);
      for (std::size_t i = 0; i + 3 < parts.size(); ++i) {
        auto slot = util::parseInt(parts[i]);
        if (!slot) return parseError(path, line_no, "bad slot id");
        slots.push_back(static_cast<dataset::ElemId>(slot.value()));
      }
      auto v = util::parseDouble(parts[parts.size() - 3]);
      if (!v) return parseError(path, line_no, "bad actual value");
      auto f = util::parseDouble(parts[parts.size() - 2]);
      if (!f) return parseError(path, line_no, "bad forecast value");
      const std::string_view flag = util::trim(parts.back());
      if (flag != "0" && flag != "1") {
        return parseError(path, line_no, "bad anomaly flag");
      }
      fragment.rows.push_back(
          dataset::LeafRow{dataset::AttributeCombination(std::move(slots)),
                           v.value(), f.value(), flag == "1"});
    }
    checkpoint.fragments.push_back(std::move(fragment));
  }
  return parseError(path, line_no, "missing 'end' trailer");
}

}  // namespace rap::io
