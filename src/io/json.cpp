#include "io/json.h"

#include <cmath>

#include "util/status.h"
#include "util/strings.h"

namespace rap::io {

std::string escapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::strFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key directly
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::rawValue(const std::string& raw) {
  prefix();
  out_ += raw;
}

void JsonWriter::beginObject() {
  prefix();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::endObject() {
  RAP_CHECK_MSG(!has_element_.empty(), "endObject without beginObject");
  has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::beginArray() {
  prefix();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::endArray() {
  RAP_CHECK_MSG(!has_element_.empty(), "endArray without beginArray");
  has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  RAP_CHECK_MSG(!pending_key_, "two keys in a row");
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += escapeJson(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& text) {
  rawValue("\"" + escapeJson(text) + "\"");
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
  if (!std::isfinite(number)) {
    nullValue();  // JSON has no NaN/Inf
    return;
  }
  rawValue(util::strFormat("%.12g", number));
}

void JsonWriter::value(std::int64_t number) {
  rawValue(std::to_string(number));
}

void JsonWriter::value(bool flag) { rawValue(flag ? "true" : "false"); }

void JsonWriter::nullValue() { rawValue("null"); }

std::string resultToJson(const dataset::Schema& schema,
                         const core::LocalizationResult& result) {
  JsonWriter w;
  w.beginObject();
  w.key("patterns");
  w.beginArray();
  for (const auto& pattern : result.patterns) {
    w.beginObject();
    w.key("pattern");
    w.value(pattern.ac.toString(schema));
    w.key("confidence");
    w.value(pattern.confidence);
    w.key("layer");
    w.value(static_cast<std::int64_t>(pattern.layer));
    w.key("score");
    w.value(pattern.score);
    w.endObject();
  }
  w.endArray();

  w.key("stats");
  w.beginObject();
  w.key("classification_power");
  w.beginArray();
  for (const double cp : result.stats.classification_power) w.value(cp);
  w.endArray();
  w.key("kept_attributes");
  w.beginArray();
  for (const auto attr : result.stats.kept_attributes) {
    w.value(schema.attribute(attr).name());
  }
  w.endArray();
  w.key("attributes_deleted");
  w.value(static_cast<std::int64_t>(result.stats.attributes_deleted));
  w.key("cuboids_visited");
  w.value(static_cast<std::int64_t>(result.stats.cuboids_visited));
  w.key("combinations_evaluated");
  w.value(static_cast<std::int64_t>(result.stats.combinations_evaluated));
  w.key("combinations_pruned");
  w.value(static_cast<std::int64_t>(result.stats.combinations_pruned));
  w.key("early_stopped");
  w.value(result.stats.early_stopped);
  w.key("degraded");
  w.value(result.degraded);
  w.key("degraded_reason");
  if (result.stats.degraded_reason.empty()) {
    w.nullValue();
  } else {
    w.value(result.stats.degraded_reason);
  }
  w.key("search_threads");
  w.value(static_cast<std::int64_t>(result.stats.search_threads));
  w.key("layers");
  w.beginArray();
  for (const auto& layer : result.stats.layers) {
    w.beginObject();
    w.key("layer");
    w.value(static_cast<std::int64_t>(layer.layer));
    w.key("cuboids_visited");
    w.value(static_cast<std::int64_t>(layer.cuboids_visited));
    w.key("combinations_evaluated");
    w.value(static_cast<std::int64_t>(layer.combinations_evaluated));
    w.key("combinations_pruned");
    w.value(static_cast<std::int64_t>(layer.combinations_pruned));
    w.key("candidates_found");
    w.value(static_cast<std::int64_t>(layer.candidates_found));
    w.key("seconds");
    w.value(layer.seconds);
    w.key("seconds_aggregate");
    w.value(layer.seconds_aggregate);
    w.endObject();
  }
  w.endArray();
  w.key("stage_seconds");
  w.beginObject();
  w.key("attribute_deletion");
  w.value(result.stats.seconds_attribute_deletion);
  w.key("search");
  w.value(result.stats.seconds_search);
  w.key("ranking");
  w.value(result.stats.seconds_ranking);
  w.endObject();
  w.endObject();

  w.endObject();
  return std::move(w).str();
}

}  // namespace rap::io
