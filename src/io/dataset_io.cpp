#include "io/dataset_io.h"

#include <cmath>

#include "util/strings.h"

namespace rap::io {

using dataset::AttrId;
using dataset::AttributeCombination;
using dataset::LeafTable;
using dataset::Schema;

util::Status saveLeafTable(const LeafTable& table, const std::string& path) {
  const Schema& schema = table.schema();
  std::vector<CsvRow> rows;
  rows.reserve(table.size() + 1);

  CsvRow header;
  for (AttrId a = 0; a < schema.attributeCount(); ++a) {
    header.push_back(schema.attribute(a).name());
  }
  header.emplace_back("real");
  header.emplace_back("predict");
  header.emplace_back("label");
  rows.push_back(std::move(header));

  for (const auto& row : table.rows()) {
    CsvRow out;
    out.reserve(static_cast<std::size_t>(schema.attributeCount()) + 3);
    for (AttrId a = 0; a < schema.attributeCount(); ++a) {
      out.push_back(schema.attribute(a).elementName(row.ac.slot(a)));
    }
    out.push_back(util::strFormat("%.6g", row.v));
    out.push_back(util::strFormat("%.6g", row.f));
    out.push_back(row.anomalous ? "1" : "0");
    rows.push_back(std::move(out));
  }
  return writeCsvFile(path, rows);
}

util::Result<LeafTable> loadLeafTable(const Schema& schema,
                                      const std::string& path) {
  auto parsed = readCsvFile(path);
  if (!parsed) return parsed.status();
  return leafTableFromCsvRows(schema, parsed.value(), path);
}

util::Result<LeafTable> leafTableFromCsvRows(const Schema& schema,
                                             const std::vector<CsvRow>& rows,
                                             const std::string& source) {
  if (rows.empty()) {
    return util::Status::invalidArgument("'" + source + "' is empty");
  }

  const auto n_attrs = static_cast<std::size_t>(schema.attributeCount());
  const std::size_t min_cols = n_attrs + 2;  // + real + predict
  LeafTable table(schema);
  table.reserve(rows.size() - 1);

  for (std::size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() < min_cols) {
      return util::Status::invalidArgument(
          util::strFormat("%s:%zu: expected >= %zu columns, got %zu",
                          source.c_str(), r + 1, min_cols, row.size()));
    }
    std::vector<dataset::ElemId> slots(n_attrs, dataset::kWildcard);
    for (std::size_t a = 0; a < n_attrs; ++a) {
      auto elem = schema.attribute(static_cast<AttrId>(a)).elementId(row[a]);
      if (!elem) {
        return util::Status::invalidArgument(
            util::strFormat("%s:%zu: %s", source.c_str(), r + 1,
                            elem.status().message().c_str()));
      }
      slots[a] = elem.value();
    }
    auto v = util::parseDouble(row[n_attrs]);
    if (!v) return v.status();
    auto f = util::parseDouble(row[n_attrs + 1]);
    if (!f) return f.status();
    // NaN/Inf KPI values poison every ratio downstream (deviation,
    // RAPScore); reject them here with the row that carried them.
    if (!std::isfinite(v.value()) || !std::isfinite(f.value())) {
      return util::Status::invalidArgument(
          util::strFormat("%s:%zu: non-finite KPI value (real=%s predict=%s)",
                          source.c_str(), r + 1, row[n_attrs].c_str(),
                          row[n_attrs + 1].c_str()));
    }
    bool anomalous = false;
    if (row.size() > min_cols) {
      anomalous = util::trim(row[n_attrs + 2]) == "1";
    }
    table.addRow(AttributeCombination(std::move(slots)), v.value(), f.value(),
                 anomalous);
  }
  return table;
}

util::Status saveSchema(const Schema& schema, const std::string& path) {
  std::vector<CsvRow> rows;
  for (AttrId a = 0; a < schema.attributeCount(); ++a) {
    const auto& attr = schema.attribute(a);
    CsvRow row{attr.name()};
    for (dataset::ElemId e = 0; e < attr.cardinality(); ++e) {
      row.push_back(attr.elementName(e));
    }
    rows.push_back(std::move(row));
  }
  return writeCsvFile(path, rows);
}

util::Result<Schema> loadSchema(const std::string& path) {
  auto parsed = readCsvFile(path);
  if (!parsed) return parsed.status();
  std::vector<dataset::Attribute> attrs;
  for (const auto& row : parsed.value()) {
    if (row.size() < 2) {
      return util::Status::invalidArgument(
          "schema row needs a name and at least one element in '" + path + "'");
    }
    attrs.emplace_back(row[0],
                       std::vector<std::string>(row.begin() + 1, row.end()));
  }
  if (attrs.empty()) {
    return util::Status::invalidArgument("schema file '" + path + "' is empty");
  }
  return Schema(std::move(attrs));
}

util::Status saveGroundTruth(const Schema& schema,
                             const std::vector<GroundTruthEntry>& entries,
                             const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"case_id", "raps"});
  for (const auto& entry : entries) {
    std::vector<std::string> raps;
    raps.reserve(entry.raps.size());
    for (const auto& ac : entry.raps) raps.push_back(ac.toString(schema));
    rows.push_back({entry.case_id, util::join(raps, ";")});
  }
  return writeCsvFile(path, rows);
}

util::Result<LoadedDataset> loadDatasetDirectory(const std::string& dir) {
  auto schema = loadSchema(dir + "/schema.csv");
  if (!schema) return schema.status();

  auto truth = loadGroundTruth(schema.value(), dir + "/injection_info.csv");
  if (!truth) return truth.status();

  LoadedDataset out{std::move(schema.value()), {}};
  out.cases.reserve(truth->size());
  for (auto& entry : truth.value()) {
    auto table = loadLeafTable(out.schema, dir + "/" + entry.case_id + ".csv");
    if (!table) return table.status();
    out.cases.push_back(gen::Case{std::move(entry.case_id),
                                  std::move(table.value()),
                                  std::move(entry.raps)});
  }
  return out;
}

util::Result<std::vector<GroundTruthEntry>> loadGroundTruth(
    const Schema& schema, const std::string& path) {
  auto parsed = readCsvFile(path);
  if (!parsed) return parsed.status();
  const auto& rows = parsed.value();
  std::vector<GroundTruthEntry> entries;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() < 2) {
      return util::Status::invalidArgument(
          util::strFormat("%s:%zu: expected case_id,raps", path.c_str(), r + 1));
    }
    GroundTruthEntry entry;
    entry.case_id = row[0];
    for (const auto& text : util::split(row[1], ';')) {
      if (util::trim(text).empty()) continue;
      auto ac = AttributeCombination::parse(schema, text);
      if (!ac) return ac.status();
      entry.raps.push_back(std::move(ac.value()));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace rap::io
