#include "io/csv.h"

#include <fstream>
#include <sstream>

namespace rap::io {

util::Result<std::vector<CsvRow>> parseCsv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto endField = [&] {
    current.push_back(std::move(field));
    field.clear();
  };
  auto endRow = [&] {
    endField();
    rows.push_back(std::move(current));
    current.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return util::Status::invalidArgument(
              "quote inside unquoted field near offset " + std::to_string(i));
        }
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        endField();
        row_has_content = true;
        break;
      case '\r':
        break;  // swallow; LF handles the row break
      case '\n':
        if (row_has_content || !field.empty() || !current.empty()) {
          endRow();
        }
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    return util::Status::invalidArgument("unterminated quoted field");
  }
  if (row_has_content || !field.empty() || !current.empty()) {
    endRow();
  }
  return rows;
}

util::Result<std::vector<CsvRow>> readCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::notFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseCsv(buffer.str());
}

namespace {

bool needsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoteField(const std::string& field) {
  if (!needsQuoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string writeCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const auto& row : rows) {
    // A row of exactly one empty field would serialize as a blank line
    // and be skipped on re-read; quote it so it round-trips.
    if (row.size() == 1 && row[0].empty()) {
      out += "\"\"\n";
      continue;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += quoteField(row[i]);
    }
    out += '\n';
  }
  return out;
}

util::Status writeCsvFile(const std::string& path,
                          const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::notFound("cannot open '" + path + "' for writing");
  }
  out << writeCsv(rows);
  if (!out) {
    return util::Status::internal("write to '" + path + "' failed");
  }
  return util::Status::ok();
}

}  // namespace rap::io
