#include "io/csv.h"

#include <fstream>
#include <sstream>

#include "fault/fault.h"
#include "util/strings.h"

namespace rap::io {

util::Status CsvStreamParser::feed(std::string_view chunk,
                                   const CsvRowCallback& callback) {
  auto endField = [this] {
    current_.push_back(std::move(field_));
    field_.clear();
  };
  auto endRow = [this, &endField, &callback] {
    endField();
    callback(std::move(current_));
    current_.clear();
    row_has_content_ = false;
    row_ += 1;
  };
  auto rowError = [this](const char* what) {
    return util::Status::invalidArgument(
        util::strFormat("%s at row %llu near offset %llu", what,
                        static_cast<unsigned long long>(row_),
                        static_cast<unsigned long long>(offset_)));
  };
  auto appendToField = [this](char c) {
    if (field_.size() >= kMaxFieldBytes) return false;
    field_ += c;
    return true;
  };

  for (std::size_t i = 0; i < chunk.size(); ++i, ++offset_) {
    const char c = chunk[i];
    if (c == '\0') return rowError("embedded NUL byte");
    if (pending_quote_) {
      pending_quote_ = false;
      if (c == '"') {
        // Escaped quote, possibly split across chunks.
        if (!appendToField('"')) return rowError("over-long field");
        continue;
      }
      in_quotes_ = false;  // the pending quote closed the field
      // c falls through to ordinary processing below.
    }
    if (in_quotes_) {
      if (c == '"') {
        pending_quote_ = true;
      } else if (!appendToField(c)) {
        return rowError("over-long field");
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_.empty()) {
          return rowError("quote inside unquoted field");
        }
        in_quotes_ = true;
        row_has_content_ = true;
        break;
      case ',':
        endField();
        row_has_content_ = true;
        break;
      case '\r':
        break;  // swallow; LF handles the row break
      case '\n':
        if (row_has_content_ || !field_.empty() || !current_.empty()) {
          endRow();
        } else {
          row_ += 1;  // blank line still advances the row count
        }
        break;
      default:
        if (!appendToField(c)) return rowError("over-long field");
        row_has_content_ = true;
        break;
    }
  }
  return util::Status::ok();
}

util::Status CsvStreamParser::finish(const CsvRowCallback& callback) {
  if (pending_quote_) {
    // A quote at end of input closes its field.
    pending_quote_ = false;
    in_quotes_ = false;
  }
  if (in_quotes_) {
    return util::Status::invalidArgument("unterminated quoted field");
  }
  if (row_has_content_ || !field_.empty() || !current_.empty()) {
    current_.push_back(std::move(field_));
    callback(std::move(current_));
  }
  *this = CsvStreamParser();
  return util::Status::ok();
}

util::Result<std::vector<CsvRow>> parseCsv(const std::string& text) {
  std::vector<CsvRow> rows;
  const CsvRowCallback collect = [&rows](CsvRow&& row) {
    rows.push_back(std::move(row));
  };
  CsvStreamParser parser;
  util::Status status = parser.feed(text, collect);
  if (!status.isOk()) return status;
  status = parser.finish(collect);
  if (!status.isOk()) return status;
  return rows;
}

util::Result<std::vector<CsvRow>> readCsvFile(const std::string& path) {
  std::vector<CsvRow> rows;
  const util::Status status = streamCsvFile(
      path, [&rows](CsvRow&& row) { rows.push_back(std::move(row)); });
  if (!status.isOk()) return status;
  return rows;
}

util::Status streamCsvFile(const std::string& path,
                           const CsvRowCallback& callback) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::notFound("cannot open '" + path + "'");
  }
  CsvStreamParser parser;
  std::vector<char> buffer(1 << 16);
  while (in) {
    RAP_RETURN_IF_ERROR(RAP_FAULT_STATUS("io.csv_chunk"));
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    const util::Status status =
        parser.feed({buffer.data(), static_cast<std::size_t>(n)}, callback);
    if (!status.isOk()) return status;
  }
  return parser.finish(callback);
}

namespace {

bool needsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoteField(const std::string& field) {
  if (!needsQuoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string writeCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const auto& row : rows) {
    // A row of exactly one empty field would serialize as a blank line
    // and be skipped on re-read; quote it so it round-trips.
    if (row.size() == 1 && row[0].empty()) {
      out += "\"\"\n";
      continue;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += quoteField(row[i]);
    }
    out += '\n';
  }
  return out;
}

util::Status writeCsvFile(const std::string& path,
                          const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::notFound("cannot open '" + path + "' for writing");
  }
  out << writeCsv(rows);
  if (!out) {
    return util::Status::internal("write to '" + path + "' failed");
  }
  return util::Status::ok();
}

}  // namespace rap::io
