#include "mining/fpgrowth.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "util/status.h"

namespace rap::mining {
namespace {

struct Node {
  Item item = -1;
  std::uint64_t count = 0;
  Node* parent = nullptr;
  Node* next_same_item = nullptr;  ///< header-table chain
  std::unordered_map<Item, Node*> children;
};

/// FP-tree over (transaction, weight) pairs.  Nodes live in a deque so
/// pointers stay stable as the tree grows.
class FpTree {
 public:
  explicit FpTree(std::uint64_t min_support) : min_support_(min_support) {
    root_ = &newNode(-1, nullptr);
  }

  /// Frequency-count pass + insertion pass.
  void build(const std::vector<std::pair<Transaction, std::uint64_t>>& rows) {
    std::unordered_map<Item, std::uint64_t> freq;
    Transaction deduped;
    for (const auto& [txn, weight] : rows) {
      deduped = txn;
      std::sort(deduped.begin(), deduped.end());
      deduped.erase(std::unique(deduped.begin(), deduped.end()),
                    deduped.end());
      for (const Item item : deduped) freq[item] += weight;
    }
    // Frequent items, ordered by (count desc, item asc) for determinism.
    std::vector<std::pair<Item, std::uint64_t>> frequent;
    for (const auto& [item, count] : freq) {
      if (count >= min_support_) frequent.emplace_back(item, count);
    }
    std::sort(frequent.begin(), frequent.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    for (std::size_t rank = 0; rank < frequent.size(); ++rank) {
      rank_[frequent[rank].first] = rank;
      item_support_[frequent[rank].first] = frequent[rank].second;
    }

    Transaction filtered;
    for (const auto& [txn, weight] : rows) {
      filtered.clear();
      for (const Item item : txn) {
        if (rank_.contains(item)) filtered.push_back(item);
      }
      std::sort(filtered.begin(), filtered.end(),
                [this](Item a, Item b) { return rank_.at(a) < rank_.at(b); });
      filtered.erase(std::unique(filtered.begin(), filtered.end()),
                     filtered.end());
      insert(filtered, weight);
    }
  }

  bool empty() const noexcept { return rank_.empty(); }

  /// Items present in the tree, least-frequent first (the growth order).
  std::vector<Item> itemsLeastFrequentFirst() const {
    std::vector<Item> items;
    items.reserve(rank_.size());
    for (const auto& [item, rank] : rank_) items.push_back(item);
    std::sort(items.begin(), items.end(), [this](Item a, Item b) {
      return rank_.at(a) > rank_.at(b);
    });
    return items;
  }

  std::uint64_t supportOf(Item item) const {
    auto it = item_support_.find(item);
    return it == item_support_.end() ? 0 : it->second;
  }

  /// Conditional pattern base of `item`: prefix paths with the item's
  /// node counts as weights.
  std::vector<std::pair<Transaction, std::uint64_t>> conditionalPatternBase(
      Item item) const {
    std::vector<std::pair<Transaction, std::uint64_t>> base;
    auto it = header_.find(item);
    if (it == header_.end()) return base;
    for (const Node* node = it->second; node != nullptr;
         node = node->next_same_item) {
      Transaction path;
      for (const Node* up = node->parent; up != nullptr && up->item >= 0;
           up = up->parent) {
        path.push_back(up->item);
      }
      if (!path.empty()) {
        std::reverse(path.begin(), path.end());
        base.emplace_back(std::move(path), node->count);
      }
    }
    return base;
  }

  /// True when the tree is a single path (enables the combination
  /// shortcut of the original algorithm); unused in this implementation
  /// but kept for the tests that assert structure.
  bool singlePath() const {
    const Node* node = root_;
    while (!node->children.empty()) {
      if (node->children.size() > 1) return false;
      node = node->children.begin()->second;
    }
    return true;
  }

 private:
  Node& newNode(Item item, Node* parent) {
    nodes_.emplace_back();
    Node& n = nodes_.back();
    n.item = item;
    n.parent = parent;
    return n;
  }

  void insert(const Transaction& txn, std::uint64_t weight) {
    Node* node = root_;
    for (const Item item : txn) {
      auto child = node->children.find(item);
      if (child == node->children.end()) {
        Node& fresh = newNode(item, node);
        fresh.next_same_item = header_[item];
        header_[item] = &fresh;
        node->children.emplace(item, &fresh);
        node = &fresh;
      } else {
        node = child->second;
      }
      node->count += weight;
    }
  }

  std::uint64_t min_support_;
  std::deque<Node> nodes_;
  Node* root_;
  std::unordered_map<Item, Node*> header_;
  std::map<Item, std::size_t> rank_;  // ordered map -> deterministic output
  std::unordered_map<Item, std::uint64_t> item_support_;
};

void growRecursive(const FpTree& tree, const std::vector<Item>& suffix,
                   const FpGrowthOptions& options,
                   std::vector<FrequentItemset>& out) {
  for (const Item item : tree.itemsLeastFrequentFirst()) {
    if (options.max_itemsets != 0 && out.size() >= options.max_itemsets) return;

    std::vector<Item> itemset = suffix;
    itemset.push_back(item);
    std::sort(itemset.begin(), itemset.end());
    out.push_back(FrequentItemset{itemset, tree.supportOf(item)});

    if (options.max_itemset_size != 0 &&
        static_cast<std::int32_t>(itemset.size()) >=
            options.max_itemset_size) {
      continue;
    }
    FpTree conditional(options.min_support);
    conditional.build(tree.conditionalPatternBase(item));
    if (!conditional.empty()) {
      growRecursive(conditional, itemset, options, out);
    }
  }
}

}  // namespace

std::vector<FrequentItemset> mineFrequentItemsets(
    const std::vector<Transaction>& transactions,
    const FpGrowthOptions& options) {
  RAP_CHECK(options.min_support >= 1);
  std::vector<std::pair<Transaction, std::uint64_t>> rows;
  rows.reserve(transactions.size());
  for (const auto& txn : transactions) rows.emplace_back(txn, 1);

  FpTree tree(options.min_support);
  tree.build(rows);

  std::vector<FrequentItemset> out;
  growRecursive(tree, {}, options, out);
  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  return out;
}

std::vector<FrequentItemset> mineFrequentItemsetsApriori(
    const std::vector<Transaction>& transactions,
    const FpGrowthOptions& options) {
  RAP_CHECK(options.min_support >= 1);
  // Level-wise candidate generation over the (deduplicated, sorted)
  // transactions.  Exponential — test-only, as advertised in the header.
  std::vector<Transaction> txns;
  txns.reserve(transactions.size());
  for (const auto& t : transactions) {
    Transaction copy = t;
    std::sort(copy.begin(), copy.end());
    copy.erase(std::unique(copy.begin(), copy.end()), copy.end());
    txns.push_back(std::move(copy));
  }

  auto supportOf = [&txns](const std::vector<Item>& itemset) {
    std::uint64_t support = 0;
    for (const auto& txn : txns) {
      if (std::includes(txn.begin(), txn.end(), itemset.begin(),
                        itemset.end())) {
        ++support;
      }
    }
    return support;
  };

  // Frequent 1-itemsets.
  std::map<Item, std::uint64_t> freq;
  for (const auto& txn : txns) {
    for (const Item item : txn) freq[item] += 1;
  }
  std::vector<FrequentItemset> out;
  std::vector<std::vector<Item>> level;
  for (const auto& [item, count] : freq) {
    if (count >= options.min_support) {
      out.push_back(FrequentItemset{{item}, count});
      level.push_back({item});
    }
  }

  while (!level.empty()) {
    if (options.max_itemset_size != 0 &&
        static_cast<std::int32_t>(level.front().size()) >=
            options.max_itemset_size) {
      break;
    }
    std::vector<std::vector<Item>> next;
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        // Join itemsets sharing all but the last item.
        const auto& a = level[i];
        const auto& b = level[j];
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
          continue;
        }
        std::vector<Item> candidate = a;
        candidate.push_back(b.back());
        std::sort(candidate.begin(), candidate.end());
        const std::uint64_t support = supportOf(candidate);
        if (support >= options.min_support) {
          out.push_back(FrequentItemset{candidate, support});
          next.push_back(std::move(candidate));
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    level = std::move(next);
  }

  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const FrequentItemset& a, const FrequentItemset& b) {
                          return a.items == b.items;
                        }),
            out.end());
  return out;
}

}  // namespace rap::mining
