// FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD'00) — the
// substrate behind the association-rule baseline of the paper's §V-C.3.
//
// Items are opaque non-negative integers; a transaction is an item set.
// The miner builds the classic FP-tree (items reordered by descending
// global frequency, shared-prefix paths with counts, header-table node
// links) and grows frequent itemsets from per-item conditional trees.
#pragma once

#include <cstdint>
#include <vector>

namespace rap::mining {

using Item = std::int32_t;
using Transaction = std::vector<Item>;

struct FrequentItemset {
  std::vector<Item> items;  ///< sorted ascending
  std::uint64_t support = 0;
};

struct FpGrowthOptions {
  std::uint64_t min_support = 1;  ///< absolute transaction count
  /// 0 = unlimited; otherwise stop growing itemsets beyond this length.
  std::int32_t max_itemset_size = 0;
  /// Safety valve for pathological inputs; 0 = unlimited.
  std::uint64_t max_itemsets = 0;
};

/// Mines all itemsets with support >= options.min_support.  Duplicate
/// items inside one transaction are collapsed.  Deterministic output
/// order (sorted by itemset).
std::vector<FrequentItemset> mineFrequentItemsets(
    const std::vector<Transaction>& transactions,
    const FpGrowthOptions& options);

/// Reference implementation (exponential; only for cross-checking the
/// FP-tree in tests on small inputs).
std::vector<FrequentItemset> mineFrequentItemsetsApriori(
    const std::vector<Transaction>& transactions,
    const FpGrowthOptions& options);

}  // namespace rap::mining
