#include "detect/detector.h"

#include <cmath>

#include "stats/descriptive.h"

namespace rap::detect {

double relativeDeviation(const dataset::LeafRow& row, double eps) noexcept {
  const double denom = std::max(std::fabs(row.f), eps);
  return (row.f - row.v) / denom;
}

std::uint32_t RelativeDeviationDetector::run(dataset::LeafTable& table) const {
  std::uint32_t flagged = 0;
  for (dataset::RowId id = 0; id < table.size(); ++id) {
    const double dev = relativeDeviation(table.row(id), eps_);
    const bool anomalous =
        two_sided_ ? std::fabs(dev) > threshold_ : dev > threshold_;
    table.setAnomalous(id, anomalous);
    flagged += anomalous ? 1 : 0;
  }
  return flagged;
}

std::uint32_t NSigmaDetector::run(dataset::LeafTable& table) const {
  std::vector<double> residuals;
  residuals.reserve(table.size());
  for (const auto& row : table.rows()) residuals.push_back(row.v - row.f);
  const double mu = stats::mean(residuals);
  const double sigma = stats::stddev(residuals);
  std::uint32_t flagged = 0;
  for (dataset::RowId id = 0; id < table.size(); ++id) {
    const bool anomalous =
        sigma > 0.0 && std::fabs(residuals[id] - mu) > n_sigma_ * sigma;
    table.setAnomalous(id, anomalous);
    flagged += anomalous ? 1 : 0;
  }
  return flagged;
}

}  // namespace rap::detect
