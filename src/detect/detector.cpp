#include "detect/detector.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/descriptive.h"

namespace rap::detect {

namespace {

void publishDetectMetrics(const std::string& detector, std::uint64_t rows,
                          std::uint64_t flagged) {
  obs::MetricsRegistry& registry = obs::defaultRegistry();
  const obs::Labels labels{{"detector", detector}};
  registry.counter("rap_detect_runs_total", labels).increment();
  registry.counter("rap_detect_rows_total", labels).increment(rows);
  registry.counter("rap_detect_rows_flagged_total", labels).increment(flagged);
}

}  // namespace

double relativeDeviation(const dataset::LeafRow& row, double eps) noexcept {
  const double denom = std::max(std::fabs(row.f), eps);
  return (row.f - row.v) / denom;
}

std::uint32_t RelativeDeviationDetector::run(dataset::LeafTable& table) const {
  RAP_TRACE_SPAN("detect/relative_deviation");
  std::uint32_t flagged = 0;
  for (dataset::RowId id = 0; id < table.size(); ++id) {
    const double dev = relativeDeviation(table.row(id), eps_);
    const bool anomalous =
        two_sided_ ? std::fabs(dev) > threshold_ : dev > threshold_;
    table.setAnomalous(id, anomalous);
    flagged += anomalous ? 1 : 0;
  }
  if (obs::metricsEnabled()) publishDetectMetrics(name(), table.size(), flagged);
  return flagged;
}

std::uint32_t NSigmaDetector::run(dataset::LeafTable& table) const {
  RAP_TRACE_SPAN("detect/n_sigma");
  std::vector<double> residuals;
  residuals.reserve(table.size());
  for (const auto& row : table.rows()) residuals.push_back(row.v - row.f);
  const double mu = stats::mean(residuals);
  const double sigma = stats::stddev(residuals);
  std::uint32_t flagged = 0;
  for (dataset::RowId id = 0; id < table.size(); ++id) {
    const bool anomalous =
        sigma > 0.0 && std::fabs(residuals[id] - mu) > n_sigma_ * sigma;
    table.setAnomalous(id, anomalous);
    flagged += anomalous ? 1 : 0;
  }
  if (obs::metricsEnabled()) publishDetectMetrics(name(), table.size(), flagged);
  return flagged;
}

}  // namespace rap::detect
