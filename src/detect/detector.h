// Leaf-level anomaly detectors.
//
// RAPMiner's input is the per-leaf anomaly verdict (paper §IV-B): the
// algorithm itself never looks at raw KPI values again.  The paper
// delegates detection to prior work; we provide the standard choices so
// the pipeline is end-to-end runnable:
//
//  * RelativeDeviationDetector — flag |f - v| / f above a threshold.
//    This matches the RAPMD injection recipe (Dev = (f - v)/(f + eps),
//    anomalous leaves get Dev in [0.1, 0.9], normal in [-0.02, 0.09]).
//  * NSigmaDetector — flag residuals v - f beyond n standard deviations
//    of the table's residual distribution.
//
// Detectors mutate the `anomalous` bit in place and report how many rows
// were flagged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dataset/leaf_table.h"

namespace rap::detect {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Sets LeafRow::anomalous on every row; returns the number flagged.
  virtual std::uint32_t run(dataset::LeafTable& table) const = 0;

  virtual std::string name() const = 0;
};

/// Flags rows whose relative deviation (f - v) / max(f, eps) exceeds the
/// threshold in magnitude (or only positive drops when `two_sided` is
/// false — CDN failures shrink traffic, so forecast exceeds actual).
class RelativeDeviationDetector final : public Detector {
 public:
  explicit RelativeDeviationDetector(double threshold, bool two_sided = false,
                                     double eps = 1e-9)
      : threshold_(threshold), two_sided_(two_sided), eps_(eps) {}

  std::uint32_t run(dataset::LeafTable& table) const override;
  std::string name() const override { return "relative-deviation"; }

  double threshold() const noexcept { return threshold_; }

 private:
  double threshold_;
  bool two_sided_;
  double eps_;
};

/// Flags rows whose residual |v - f| exceeds n_sigma standard deviations
/// of the residuals across the table (robust to the units of the KPI).
class NSigmaDetector final : public Detector {
 public:
  explicit NSigmaDetector(double n_sigma) : n_sigma_(n_sigma) {}

  std::uint32_t run(dataset::LeafTable& table) const override;
  std::string name() const override { return "n-sigma"; }

 private:
  double n_sigma_;
};

/// Relative deviation of one row, as the detectors and the Squeeze
/// baseline compute it: (f - v) / max(f, eps).
double relativeDeviation(const dataset::LeafRow& row, double eps = 1e-9) noexcept;

}  // namespace rap::detect
