#include "dataset/leaf_table.h"

#include <algorithm>
#include <unordered_map>

namespace rap::dataset {

void LeafTable::addRow(LeafRow row) {
  RAP_CHECK_MSG(row.ac.attributeCount() == schema_.attributeCount(),
                "row arity " << row.ac.attributeCount() << " vs schema "
                             << schema_.attributeCount());
  RAP_CHECK_MSG(row.ac.isLeaf(), "row must be a most fine-grained combination");
  for (AttrId a = 0; a < schema_.attributeCount(); ++a) {
    RAP_CHECK_MSG(row.ac.slot(a) >= 0 && row.ac.slot(a) < schema_.cardinality(a),
                  "element id out of range in slot " << a);
  }
  rows_.push_back(std::move(row));
}

void LeafTable::addRow(AttributeCombination ac, double v, double f,
                       bool anomalous) {
  addRow(LeafRow{std::move(ac), v, f, anomalous});
}

std::uint32_t LeafTable::anomalousCount() const noexcept {
  std::uint32_t n = 0;
  for (const auto& row : rows_) n += row.anomalous ? 1 : 0;
  return n;
}

double LeafTable::totalV() const noexcept {
  double sum = 0.0;
  for (const auto& row : rows_) sum += row.v;
  return sum;
}

double LeafTable::totalF() const noexcept {
  double sum = 0.0;
  for (const auto& row : rows_) sum += row.f;
  return sum;
}

std::uint64_t LeafTable::projectionKey(RowId id, CuboidMask mask) const {
  RAP_CHECK(id < rows_.size());
  const auto& ac = rows_[id].ac;
  std::uint64_t key = 0;
  for (AttrId a = 0; a < schema_.attributeCount(); ++a) {
    if ((mask & (1u << a)) == 0) continue;
    key = key * static_cast<std::uint64_t>(schema_.cardinality(a)) +
          static_cast<std::uint64_t>(ac.slot(a));
  }
  return key;
}

namespace {

/// Rebuild the projected combination from a mixed-radix key.
AttributeCombination keyToCombination(const Schema& schema, CuboidMask mask,
                                      std::uint64_t key) {
  AttributeCombination ac(schema.attributeCount());
  // Decode in reverse attribute order (the key was built forward).
  for (AttrId a = schema.attributeCount() - 1; a >= 0; --a) {
    if ((mask & (1u << a)) == 0) continue;
    const auto card = static_cast<std::uint64_t>(schema.cardinality(a));
    ac.setSlot(a, static_cast<ElemId>(key % card));
    key /= card;
  }
  return ac;
}

}  // namespace

std::vector<GroupAggregate> LeafTable::groupBy(CuboidMask mask) const {
  // Projection keys are dense in [0, cuboidSize), so for any cuboid of
  // reasonable size a flat accumulation array beats maps and sorting by
  // a wide margin (see bench/micro_primitives) and yields ascending-key
  // order for free.  Astronomically large cuboids (possible with many
  // high-cardinality attributes) fall back to sort-and-aggregate.
  const std::uint64_t size = cuboidSize(schema_, mask);
  constexpr std::uint64_t kDenseLimit = 1u << 22;
  if (size <= kDenseLimit) {
    struct Cell {
      std::uint32_t total = 0;
      std::uint32_t anomalous = 0;
      double v_sum = 0.0;
      double f_sum = 0.0;
    };
    std::vector<Cell> dense(static_cast<std::size_t>(size));
    for (RowId id = 0; id < rows_.size(); ++id) {
      Cell& cell = dense[static_cast<std::size_t>(projectionKey(id, mask))];
      const LeafRow& row = rows_[id];
      cell.total += 1;
      cell.anomalous += row.anomalous ? 1 : 0;
      cell.v_sum += row.v;
      cell.f_sum += row.f;
    }
    std::vector<GroupAggregate> out;
    for (std::uint64_t key = 0; key < size; ++key) {
      const Cell& cell = dense[static_cast<std::size_t>(key)];
      if (cell.total == 0) continue;
      GroupAggregate g;
      g.total = cell.total;
      g.anomalous = cell.anomalous;
      g.v_sum = cell.v_sum;
      g.f_sum = cell.f_sum;
      g.ac = keyToCombination(schema_, mask, key);
      out.push_back(std::move(g));
    }
    return out;
  }

  std::vector<std::pair<std::uint64_t, RowId>> keyed;
  keyed.reserve(rows_.size());
  for (RowId id = 0; id < rows_.size(); ++id) {
    keyed.emplace_back(projectionKey(id, mask), id);
  }
  std::sort(keyed.begin(), keyed.end());

  std::vector<GroupAggregate> out;
  for (std::size_t i = 0; i < keyed.size();) {
    const std::uint64_t key = keyed[i].first;
    GroupAggregate g;
    for (; i < keyed.size() && keyed[i].first == key; ++i) {
      const LeafRow& row = rows_[keyed[i].second];
      g.total += 1;
      g.anomalous += row.anomalous ? 1 : 0;
      g.v_sum += row.v;
      g.f_sum += row.f;
    }
    g.ac = keyToCombination(schema_, mask, key);
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<GroupWithRows> LeafTable::groupByWithRows(CuboidMask mask) const {
  std::vector<RowId> all(rows_.size());
  for (RowId id = 0; id < rows_.size(); ++id) all[id] = id;
  return groupByWithRows(mask, all);
}

std::vector<GroupWithRows> LeafTable::groupByWithRows(
    CuboidMask mask, const std::vector<RowId>& subset) const {
  std::unordered_map<std::uint64_t, GroupWithRows> groups;
  groups.reserve(subset.size() / 4 + 8);
  for (const RowId id : subset) {
    RAP_CHECK(id < rows_.size());
    const auto key = projectionKey(id, mask);
    GroupWithRows& g = groups[key];
    const LeafRow& row = rows_[id];
    g.agg.total += 1;
    g.agg.anomalous += row.anomalous ? 1 : 0;
    g.agg.v_sum += row.v;
    g.agg.f_sum += row.f;
    g.rows.push_back(id);
  }
  std::vector<std::pair<std::uint64_t, GroupWithRows>> sorted(
      std::make_move_iterator(groups.begin()),
      std::make_move_iterator(groups.end()));
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<GroupWithRows> out;
  out.reserve(sorted.size());
  for (auto& [key, g] : sorted) {
    g.agg.ac = keyToCombination(schema_, mask, key);
    out.push_back(std::move(g));
  }
  return out;
}

GroupAggregate LeafTable::aggregateFor(const AttributeCombination& ac) const {
  GroupAggregate g;
  g.ac = ac;
  for (const auto& row : rows_) {
    if (!ac.matchesLeaf(row.ac)) continue;
    g.total += 1;
    g.anomalous += row.anomalous ? 1 : 0;
    g.v_sum += row.v;
    g.f_sum += row.f;
  }
  return g;
}

bool LeafTable::coversAllAnomalies(
    const std::vector<AttributeCombination>& acs) const {
  for (const auto& row : rows_) {
    if (!row.anomalous) continue;
    const bool covered =
        std::any_of(acs.begin(), acs.end(), [&row](const auto& ac) {
          return ac.matchesLeaf(row.ac);
        });
    if (!covered) return false;
  }
  return true;
}

std::vector<RowId> LeafTable::anomalousRows() const {
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (rows_[id].anomalous) out.push_back(id);
  }
  return out;
}

}  // namespace rap::dataset
