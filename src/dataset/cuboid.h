// Cuboid lattice (paper Fig. 2).
//
// A cuboid is identified by a bitmask over the schema's attributes: bit i
// set means attribute i is concrete in every combination of the cuboid.
// Layer k of the lattice contains the cuboids whose mask has popcount k;
// there are 2^n - 1 non-empty cuboids for n attributes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/attribute_combination.h"
#include "dataset/schema.h"

namespace rap::dataset {

using CuboidMask = std::uint32_t;

/// Number of attributes in the cuboid (its lattice layer).
std::int32_t cuboidLayer(CuboidMask mask) noexcept;

/// The attribute ids present in the cuboid, ascending.
std::vector<AttrId> cuboidAttributes(CuboidMask mask);

/// Number of attribute combinations contained in the cuboid
/// (product of the member attributes' cardinalities, paper §III-C).
std::uint64_t cuboidSize(const Schema& schema, CuboidMask mask);

/// "Cub{Location,Website}".
std::string cuboidName(const Schema& schema, CuboidMask mask);

/// All cuboids of exactly `layer` attributes, restricted to the attributes
/// present in `allowed` (pass allAttributesMask for no restriction).
/// Masks are returned in ascending numeric order, which is deterministic.
std::vector<CuboidMask> cuboidsAtLayer(CuboidMask allowed, std::int32_t layer);

/// All 2^n - 1 non-empty cuboids within `allowed`, ordered layer by layer
/// (the BFS order of the paper's Algorithm 2).
std::vector<CuboidMask> allCuboidsByLayer(CuboidMask allowed);

/// Mask with one bit per schema attribute.
CuboidMask allAttributesMask(const Schema& schema) noexcept;

/// Enumerate every attribute combination in the cuboid (Cartesian product
/// of the member attributes' elements); wildcard elsewhere.  Order is
/// lexicographic in (attr order, element id), deterministic.
std::vector<AttributeCombination> enumerateCuboid(const Schema& schema,
                                                  CuboidMask mask);

/// Dense index of a fully-concrete combination in [0, schema.leafCount()):
/// mixed radix over the attributes in schema order.
std::uint64_t leafToIndex(const Schema& schema, const AttributeCombination& ac);

/// Inverse of leafToIndex.
AttributeCombination leafFromIndex(const Schema& schema, std::uint64_t index);

/// Iterate the cuboid without materializing it: calls fn(ac) for each
/// combination, reusing one AttributeCombination buffer.
template <typename Fn>
void forEachInCuboid(const Schema& schema, CuboidMask mask, Fn&& fn) {
  const std::vector<AttrId> attrs = cuboidAttributes(mask);
  AttributeCombination ac(schema.attributeCount());
  if (attrs.empty()) return;
  std::vector<ElemId> counters(attrs.size(), 0);
  for (;;) {
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      ac.setSlot(attrs[i], counters[i]);
    }
    fn(ac);
    // Odometer increment.
    std::size_t pos = attrs.size();
    while (pos > 0) {
      --pos;
      if (++counters[pos] < schema.cardinality(attrs[pos])) break;
      counters[pos] = 0;
      if (pos == 0) return;
    }
  }
}

}  // namespace rap::dataset
