// AttributeCombination — the paper's `ac`: a tuple over the schema's
// attributes where each slot is either a concrete element id or the
// wildcard '*'.  (L1, *, *, Site1) has dim 2 and lives in layer 2 of the
// cuboid lattice (paper Fig. 2).
//
// The parent/child/ancestor relations follow the paper's DAG (Fig. 7):
// a parent is obtained by replacing exactly one concrete slot with '*';
// an ancestor constrains a subset of the slots with identical values.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dataset/schema.h"

namespace rap::dataset {

inline constexpr ElemId kWildcard = -1;

class AttributeCombination {
 public:
  AttributeCombination() = default;

  /// All-wildcard combination over `attribute_count` slots (the lattice
  /// root, representing the entire impacted scope S).
  explicit AttributeCombination(std::int32_t attribute_count)
      : slots_(static_cast<std::size_t>(attribute_count), kWildcard) {}

  /// From explicit slot values (kWildcard for '*').
  explicit AttributeCombination(std::vector<ElemId> slots)
      : slots_(std::move(slots)) {}

  /// Parse "(L1, *, *, Site1)" or "L1,*,*,Site1" against a schema.
  static util::Result<AttributeCombination> parse(const Schema& schema,
                                                  const std::string& text);

  std::int32_t attributeCount() const noexcept {
    return static_cast<std::int32_t>(slots_.size());
  }

  ElemId slot(AttrId attr) const {
    RAP_CHECK(attr >= 0 && attr < attributeCount());
    return slots_[static_cast<std::size_t>(attr)];
  }
  void setSlot(AttrId attr, ElemId elem) {
    RAP_CHECK(attr >= 0 && attr < attributeCount());
    slots_[static_cast<std::size_t>(attr)] = elem;
  }

  bool isWildcard(AttrId attr) const { return slot(attr) == kWildcard; }

  /// Number of concrete (non-wildcard) slots = the layer this ac lives in.
  std::int32_t dim() const noexcept;
  std::int32_t layer() const noexcept { return dim(); }

  /// True when every slot is concrete (a most fine-grained combination).
  bool isLeaf() const noexcept;
  /// True when every slot is '*' (the lattice root).
  bool isRoot() const noexcept { return dim() == 0; }

  /// Bitmask of concrete attributes — identifies the cuboid (paper §II-B).
  std::uint32_t cuboidMask() const noexcept;

  /// True iff `leaf` (a fully-concrete combination) is a descendant of
  /// (or equal to) this ac, i.e. agrees on every concrete slot.
  bool matchesLeaf(const AttributeCombination& leaf) const noexcept;

  /// True iff this ac is a *proper* ancestor of `other`: it constrains a
  /// strict subset of other's concrete slots with equal values.
  bool isAncestorOf(const AttributeCombination& other) const noexcept;

  /// Ancestor-or-equal.
  bool covers(const AttributeCombination& other) const noexcept;

  /// Direct parents: one concrete slot replaced with '*' (paper
  /// Parents()).  The lattice root has no parents.
  std::vector<AttributeCombination> parents() const;

  /// Direct children under `schema`: one wildcard slot expanded to every
  /// element of that attribute.
  std::vector<AttributeCombination> children(const Schema& schema) const;

  /// "(L1, *, *, Site1)" — names resolved through the schema.
  std::string toString(const Schema& schema) const;
  /// "(0:3, *, *, 3:0)" — raw ids, schema-free (debugging).
  std::string debugString() const;

  const std::vector<ElemId>& slots() const noexcept { return slots_; }

  friend bool operator==(const AttributeCombination& a,
                         const AttributeCombination& b) noexcept {
    return a.slots_ == b.slots_;
  }
  friend bool operator<(const AttributeCombination& a,
                        const AttributeCombination& b) noexcept {
    return a.slots_ < b.slots_;
  }

 private:
  std::vector<ElemId> slots_;
};

/// FNV-style hash usable in unordered containers.
struct AcHash {
  std::size_t operator()(const AttributeCombination& ac) const noexcept;
};

}  // namespace rap::dataset
