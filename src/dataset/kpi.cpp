#include "dataset/kpi.h"

#include <algorithm>

namespace rap::dataset {

DerivedKpi ratioKpi(std::string name, KpiId numerator, KpiId denominator) {
  return DerivedKpi{
      std::move(name),
      [numerator, denominator](const std::vector<double>& values) {
        const double den = values[static_cast<std::size_t>(denominator)];
        if (den == 0.0) return 0.0;
        return values[static_cast<std::size_t>(numerator)] / den;
      }};
}

MultiKpiTable::MultiKpiTable(Schema schema, std::vector<std::string> kpi_names)
    : schema_(std::move(schema)), kpi_names_(std::move(kpi_names)) {
  RAP_CHECK_MSG(!kpi_names_.empty(), "need at least one fundamental KPI");
}

const std::string& MultiKpiTable::kpiName(KpiId id) const {
  RAP_CHECK(id >= 0 && id < kpiCount());
  return kpi_names_[static_cast<std::size_t>(id)];
}

util::Result<KpiId> MultiKpiTable::kpiId(const std::string& name) const {
  const auto it = std::find(kpi_names_.begin(), kpi_names_.end(), name);
  if (it == kpi_names_.end()) {
    return util::Status::notFound("KPI '" + name + "' not in table");
  }
  return static_cast<KpiId>(it - kpi_names_.begin());
}

void MultiKpiTable::addRow(MultiKpiRow row) {
  RAP_CHECK_MSG(row.ac.isLeaf() &&
                    row.ac.attributeCount() == schema_.attributeCount(),
                "row must be a leaf over this schema");
  RAP_CHECK_MSG(static_cast<std::int32_t>(row.v.size()) == kpiCount() &&
                    static_cast<std::int32_t>(row.f.size()) == kpiCount(),
                "KPI vectors must have " << kpiCount() << " entries");
  rows_.push_back(std::move(row));
}

const MultiKpiRow& MultiKpiTable::row(RowId id) const {
  RAP_CHECK(id < rows_.size());
  return rows_[id];
}

std::pair<double, double> MultiKpiTable::aggregateFundamental(
    const AttributeCombination& ac, KpiId kpi) const {
  RAP_CHECK(kpi >= 0 && kpi < kpiCount());
  double v_sum = 0.0;
  double f_sum = 0.0;
  for (const auto& row : rows_) {
    if (!ac.matchesLeaf(row.ac)) continue;
    v_sum += row.v[static_cast<std::size_t>(kpi)];
    f_sum += row.f[static_cast<std::size_t>(kpi)];
  }
  return {v_sum, f_sum};
}

std::pair<double, double> MultiKpiTable::deriveAt(
    const AttributeCombination& ac, const DerivedKpi& derived) const {
  std::vector<double> v_agg(static_cast<std::size_t>(kpiCount()), 0.0);
  std::vector<double> f_agg(static_cast<std::size_t>(kpiCount()), 0.0);
  for (const auto& row : rows_) {
    if (!ac.matchesLeaf(row.ac)) continue;
    for (std::size_t k = 0; k < v_agg.size(); ++k) {
      v_agg[k] += row.v[k];
      f_agg[k] += row.f[k];
    }
  }
  return {derived.fn(v_agg), derived.fn(f_agg)};
}

LeafTable MultiKpiTable::fundamentalLeafTable(KpiId kpi) const {
  RAP_CHECK(kpi >= 0 && kpi < kpiCount());
  LeafTable table(schema_);
  for (const auto& row : rows_) {
    table.addRow(row.ac, row.v[static_cast<std::size_t>(kpi)],
                 row.f[static_cast<std::size_t>(kpi)], /*anomalous=*/false);
  }
  return table;
}

LeafTable MultiKpiTable::derivedLeafTable(const DerivedKpi& derived) const {
  LeafTable table(schema_);
  for (const auto& row : rows_) {
    table.addRow(row.ac, derived.fn(row.v), derived.fn(row.f),
                 /*anomalous=*/false);
  }
  return table;
}

}  // namespace rap::dataset
