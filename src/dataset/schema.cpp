#include "dataset/schema.h"

#include "util/strings.h"

namespace rap::dataset {

Attribute::Attribute(std::string name, std::vector<std::string> elements)
    : name_(std::move(name)), elements_(std::move(elements)) {
  RAP_CHECK_MSG(!elements_.empty(), "attribute '" << name_ << "' has no elements");
  index_.reserve(elements_.size());
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const bool inserted =
        index_.emplace(elements_[i], static_cast<ElemId>(i)).second;
    RAP_CHECK_MSG(inserted, "duplicate element '" << elements_[i]
                                                  << "' in attribute '"
                                                  << name_ << "'");
  }
}

const std::string& Attribute::elementName(ElemId id) const {
  RAP_CHECK_MSG(id >= 0 && id < cardinality(),
                "element id " << id << " out of range for '" << name_ << "'");
  return elements_[static_cast<std::size_t>(id)];
}

util::Result<ElemId> Attribute::elementId(const std::string& element_name) const {
  auto it = index_.find(element_name);
  if (it == index_.end()) {
    return util::Status::notFound("element '" + element_name +
                                  "' not in attribute '" + name_ + "'");
  }
  return it->second;
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  RAP_CHECK_MSG(!attributes_.empty(), "schema needs at least one attribute");
  RAP_CHECK_MSG(attributes_.size() <= 32,
                "cuboid masks are 32-bit; got " << attributes_.size()
                                                << " attributes");
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    const bool inserted =
        index_.emplace(attributes_[i].name(), static_cast<AttrId>(i)).second;
    RAP_CHECK_MSG(inserted,
                  "duplicate attribute '" << attributes_[i].name() << "'");
  }
}

const Attribute& Schema::attribute(AttrId id) const {
  RAP_CHECK_MSG(id >= 0 && id < attributeCount(),
                "attribute id " << id << " out of range");
  return attributes_[static_cast<std::size_t>(id)];
}

util::Result<AttrId> Schema::attributeId(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return util::Status::notFound("attribute '" + name + "' not in schema");
  }
  return it->second;
}

std::uint64_t Schema::leafCount() const noexcept {
  std::uint64_t product = 1;
  for (const auto& attr : attributes_) {
    product *= static_cast<std::uint64_t>(attr.cardinality());
  }
  return product;
}

std::uint64_t Schema::cuboidCount() const noexcept {
  return (std::uint64_t{1} << attributeCount()) - 1;
}

namespace {

std::vector<std::string> namedElements(const std::string& prefix,
                                       std::int32_t count) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 1; i <= count; ++i) {
    out.push_back(prefix + std::to_string(i));
  }
  return out;
}

}  // namespace

Schema Schema::cdn() {
  return Schema({
      Attribute("Location", namedElements("L", 33)),
      Attribute("AccessType", {"Wireless", "Fixed", "Mobile", "Satellite"}),
      Attribute("OS", {"Android", "IOS", "Windows", "Other"}),
      Attribute("Website", namedElements("Site", 20)),
  });
}

Schema Schema::tiny() {
  return Schema({
      Attribute("A", {"a1", "a2", "a3"}),
      Attribute("B", {"b1", "b2"}),
      Attribute("C", {"c1", "c2"}),
      Attribute("D", {"d1", "d2"}),
  });
}

Schema Schema::synthetic(const std::vector<std::int32_t>& cardinalities) {
  std::vector<Attribute> attrs;
  attrs.reserve(cardinalities.size());
  for (std::size_t i = 0; i < cardinalities.size(); ++i) {
    const std::string name = "A" + std::to_string(i);
    attrs.emplace_back(name, namedElements(name + "=e", cardinalities[i]));
  }
  return Schema(std::move(attrs));
}

}  // namespace rap::dataset
