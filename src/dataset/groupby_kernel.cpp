#include "dataset/groupby_kernel.h"

#include <algorithm>

namespace rap::dataset {

namespace {

/// Same dense-array cutoff as LeafTable::groupBy; beyond it the kernel
/// delegates to the table's sort-and-aggregate fallback.
constexpr std::uint64_t kDenseLimit = 1u << 22;

}  // namespace

GroupByKernel::GroupByKernel(const LeafTable& table) { rebind(table); }

void GroupByKernel::rebind(const LeafTable& table) {
  table_ = &table;
  const Schema& schema = table.schema();
  const std::size_t n = table.size();
  columns_.resize(static_cast<std::size_t>(schema.attributeCount()));
  for (auto& column : columns_) column.resize(n);
  anomalous_.resize(n);
  v_.resize(n);
  f_.resize(n);
  for (RowId id = 0; id < n; ++id) {
    const LeafRow& row = table.row(id);
    for (AttrId a = 0; a < schema.attributeCount(); ++a) {
      columns_[static_cast<std::size_t>(a)][id] =
          static_cast<std::uint32_t>(row.ac.slot(a));
    }
    anomalous_[id] = row.anomalous ? 1 : 0;
    v_[id] = row.v;
    f_[id] = row.f;
  }
}

std::vector<GroupAggregate> GroupByKernel::groupBy(CuboidMask mask) const {
  RAP_CHECK(table_ != nullptr);
  const Schema& schema = table_->schema();
  const std::uint64_t size = cuboidSize(schema, mask);
  if (size > kDenseLimit) return table_->groupBy(mask);

  // Mixed-radix strides restricted to the cuboid's attributes, matching
  // LeafTable::projectionKey: the first member attribute varies slowest.
  const std::vector<AttrId> attrs = cuboidAttributes(mask);
  std::vector<std::uint64_t> strides(attrs.size());
  std::uint64_t stride = 1;
  for (std::size_t i = attrs.size(); i-- > 0;) {
    strides[i] = stride;
    stride *= static_cast<std::uint64_t>(schema.cardinality(attrs[i]));
  }

  // Column sweeps: one sequential pass per member attribute accumulates
  // the projection key of every row.
  const std::size_t n = rowCount();
  std::vector<std::uint64_t> keys(n, 0);
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    const std::uint32_t* column =
        columns_[static_cast<std::size_t>(attrs[i])].data();
    const std::uint64_t s = strides[i];
    for (std::size_t r = 0; r < n; ++r) {
      keys[r] += s * static_cast<std::uint64_t>(column[r]);
    }
  }

  std::vector<GroupCell> dense(static_cast<std::size_t>(size));
  for (std::size_t r = 0; r < n; ++r) {
    GroupCell& cell = dense[static_cast<std::size_t>(keys[r])];
    cell.total += 1;
    cell.anomalous += anomalous_[r];
    cell.v_sum += v_[r];
    cell.f_sum += f_[r];
  }

  std::vector<GroupAggregate> out;
  for (std::uint64_t key = 0; key < size; ++key) {
    const GroupCell& cell = dense[static_cast<std::size_t>(key)];
    if (cell.total == 0) continue;
    GroupAggregate g;
    g.total = cell.total;
    g.anomalous = cell.anomalous;
    g.v_sum = cell.v_sum;
    g.f_sum = cell.f_sum;
    // Decode the mixed-radix key back into the projected combination.
    AttributeCombination ac(schema.attributeCount());
    std::uint64_t rest = key;
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      ac.setSlot(attrs[i], static_cast<ElemId>(rest / strides[i]));
      rest %= strides[i];
    }
    g.ac = std::move(ac);
    out.push_back(std::move(g));
  }
  return out;
}

std::size_t GroupByKernel::groupByInto(CuboidMask mask, GroupByScratch& scratch,
                                       std::vector<GroupAggregate>& out) const {
  RAP_CHECK(table_ != nullptr);
  const Schema& schema = table_->schema();
  const std::uint64_t size = cuboidSize(schema, mask);
  if (size > kDenseLimit) {
    // Sort-and-aggregate fallback for astronomically large cuboids; the
    // wholesale assignment (re)allocates, which is fine — such cuboids
    // are outside the dense plane's memory budget by definition.
    out = table_->groupBy(mask);
    return out.size();
  }

  // Member attributes + mixed-radix strides, into reused buffers;
  // matches LeafTable::projectionKey (first member varies slowest).
  scratch.attrs.clear();
  for (AttrId a = 0; a < schema.attributeCount(); ++a) {
    if ((mask & (1u << a)) != 0) scratch.attrs.push_back(a);
  }
  const std::size_t m = scratch.attrs.size();
  scratch.strides.resize(m);
  std::uint64_t stride = 1;
  for (std::size_t i = m; i-- > 0;) {
    scratch.strides[i] = stride;
    stride *= static_cast<std::uint64_t>(schema.cardinality(scratch.attrs[i]));
  }

  // Column sweeps; the first pass assigns instead of accumulating, so
  // the keys buffer never needs a zero-fill of its own.
  const std::size_t n = rowCount();
  scratch.keys.resize(n);
  std::uint64_t* keys = scratch.keys.data();
  if (m == 0) std::fill(keys, keys + n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint32_t* column =
        columns_[static_cast<std::size_t>(scratch.attrs[i])].data();
    const std::uint64_t s = scratch.strides[i];
    if (i == 0) {
      for (std::size_t r = 0; r < n; ++r) {
        keys[r] = s * static_cast<std::uint64_t>(column[r]);
      }
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        keys[r] += s * static_cast<std::uint64_t>(column[r]);
      }
    }
  }

  // The dense array is zero-filled only when it grows; between calls
  // every cell is zero (restored below), so the scatter can detect the
  // first touch of a cell by total == 0 and record it in the touched
  // list instead of sweeping all `size` cells afterwards.
  if (scratch.dense.size() < size) {
    scratch.dense.resize(static_cast<std::size_t>(size));
  }
  scratch.touched.clear();
  for (std::size_t r = 0; r < n; ++r) {
    GroupCell& cell = scratch.dense[static_cast<std::size_t>(keys[r])];
    if (cell.total == 0) scratch.touched.push_back(keys[r]);
    cell.total += 1;
    cell.anomalous += anomalous_[r];
    cell.v_sum += v_[r];
    cell.f_sum += f_[r];
  }

  // Ascending-key output order — exactly the order the one-shot dense
  // sweep produces; the per-cell sums were accumulated in row order, so
  // the floats are bit-identical too.
  std::sort(scratch.touched.begin(), scratch.touched.end());

  const std::size_t groups = scratch.touched.size();
  if (out.size() < groups) out.resize(groups);
  for (std::size_t j = 0; j < groups; ++j) {
    const std::uint64_t key = scratch.touched[j];
    GroupCell& cell = scratch.dense[static_cast<std::size_t>(key)];
    GroupAggregate& g = out[j];
    g.total = cell.total;
    g.anomalous = cell.anomalous;
    g.v_sum = cell.v_sum;
    g.f_sum = cell.f_sum;
    // Decode the mixed-radix key, reusing the slot storage of whatever
    // combination this output element held before (same-width acs are
    // rewritten in place; only a schema change reallocates).
    if (g.ac.attributeCount() != schema.attributeCount()) {
      g.ac = AttributeCombination(schema.attributeCount());
    }
    std::uint64_t rest = key;
    std::size_t i = 0;
    for (AttrId a = 0; a < schema.attributeCount(); ++a) {
      if (i < m && scratch.attrs[i] == a) {
        g.ac.setSlot(a, static_cast<ElemId>(rest / scratch.strides[i]));
        rest %= scratch.strides[i];
        ++i;
      } else {
        g.ac.setSlot(a, kWildcard);
      }
    }
    cell = GroupCell{};  // restore the all-zero invariant, touched cells only
  }
  scratch.touched.clear();
  return groups;
}

GroupAggregate GroupByKernel::aggregateFor(const AttributeCombination& ac) const {
  RAP_CHECK(table_ != nullptr);
  GroupAggregate g;
  g.ac = ac;
  const std::size_t n = rowCount();
  for (std::size_t r = 0; r < n; ++r) {
    bool match = true;
    for (AttrId a = 0; a < ac.attributeCount() && match; ++a) {
      const ElemId want = ac.slot(a);
      match = want == kWildcard ||
              columns_[static_cast<std::size_t>(a)][r] ==
                  static_cast<std::uint32_t>(want);
    }
    if (!match) continue;
    g.total += 1;
    g.anomalous += anomalous_[r];
    g.v_sum += v_[r];
    g.f_sum += f_[r];
  }
  return g;
}

}  // namespace rap::dataset
