#include "dataset/groupby_kernel.h"

namespace rap::dataset {

namespace {

/// Same dense-array cutoff as LeafTable::groupBy; beyond it the kernel
/// delegates to the table's sort-and-aggregate fallback.
constexpr std::uint64_t kDenseLimit = 1u << 22;

}  // namespace

GroupByKernel::GroupByKernel(const LeafTable& table) : table_(&table) {
  const Schema& schema = table.schema();
  const std::size_t n = table.size();
  columns_.resize(static_cast<std::size_t>(schema.attributeCount()));
  for (auto& column : columns_) column.resize(n);
  anomalous_.resize(n);
  v_.resize(n);
  f_.resize(n);
  for (RowId id = 0; id < n; ++id) {
    const LeafRow& row = table.row(id);
    for (AttrId a = 0; a < schema.attributeCount(); ++a) {
      columns_[static_cast<std::size_t>(a)][id] =
          static_cast<std::uint32_t>(row.ac.slot(a));
    }
    anomalous_[id] = row.anomalous ? 1 : 0;
    v_[id] = row.v;
    f_[id] = row.f;
  }
}

std::vector<GroupAggregate> GroupByKernel::groupBy(CuboidMask mask) const {
  const Schema& schema = table_->schema();
  const std::uint64_t size = cuboidSize(schema, mask);
  if (size > kDenseLimit) return table_->groupBy(mask);

  // Mixed-radix strides restricted to the cuboid's attributes, matching
  // LeafTable::projectionKey: the first member attribute varies slowest.
  const std::vector<AttrId> attrs = cuboidAttributes(mask);
  std::vector<std::uint64_t> strides(attrs.size());
  std::uint64_t stride = 1;
  for (std::size_t i = attrs.size(); i-- > 0;) {
    strides[i] = stride;
    stride *= static_cast<std::uint64_t>(schema.cardinality(attrs[i]));
  }

  // Column sweeps: one sequential pass per member attribute accumulates
  // the projection key of every row.
  const std::size_t n = rowCount();
  std::vector<std::uint64_t> keys(n, 0);
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    const std::uint32_t* column =
        columns_[static_cast<std::size_t>(attrs[i])].data();
    const std::uint64_t s = strides[i];
    for (std::size_t r = 0; r < n; ++r) {
      keys[r] += s * static_cast<std::uint64_t>(column[r]);
    }
  }

  struct Cell {
    std::uint32_t total = 0;
    std::uint32_t anomalous = 0;
    double v_sum = 0.0;
    double f_sum = 0.0;
  };
  std::vector<Cell> dense(static_cast<std::size_t>(size));
  for (std::size_t r = 0; r < n; ++r) {
    Cell& cell = dense[static_cast<std::size_t>(keys[r])];
    cell.total += 1;
    cell.anomalous += anomalous_[r];
    cell.v_sum += v_[r];
    cell.f_sum += f_[r];
  }

  std::vector<GroupAggregate> out;
  for (std::uint64_t key = 0; key < size; ++key) {
    const Cell& cell = dense[static_cast<std::size_t>(key)];
    if (cell.total == 0) continue;
    GroupAggregate g;
    g.total = cell.total;
    g.anomalous = cell.anomalous;
    g.v_sum = cell.v_sum;
    g.f_sum = cell.f_sum;
    // Decode the mixed-radix key back into the projected combination.
    AttributeCombination ac(schema.attributeCount());
    std::uint64_t rest = key;
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      ac.setSlot(attrs[i], static_cast<ElemId>(rest / strides[i]));
      rest %= strides[i];
    }
    g.ac = std::move(ac);
    out.push_back(std::move(g));
  }
  return out;
}

GroupAggregate GroupByKernel::aggregateFor(const AttributeCombination& ac) const {
  GroupAggregate g;
  g.ac = ac;
  const std::size_t n = rowCount();
  for (std::size_t r = 0; r < n; ++r) {
    bool match = true;
    for (AttrId a = 0; a < ac.attributeCount() && match; ++a) {
      const ElemId want = ac.slot(a);
      match = want == kWildcard ||
              columns_[static_cast<std::size_t>(a)][r] ==
                  static_cast<std::uint32_t>(want);
    }
    if (!match) continue;
    g.total += 1;
    g.anomalous += anomalous_[r];
    g.v_sum += v_[r];
    g.f_sum += f_[r];
  }
  return g;
}

}  // namespace rap::dataset
