#include "dataset/attribute_combination.h"

#include <bit>

#include "util/strings.h"

namespace rap::dataset {

util::Result<AttributeCombination> AttributeCombination::parse(
    const Schema& schema, const std::string& text) {
  std::string body = text;
  // Strip optional surrounding parens.
  {
    const auto trimmed = util::trim(body);
    if (!trimmed.empty() && trimmed.front() == '(' && trimmed.back() == ')') {
      body = std::string(trimmed.substr(1, trimmed.size() - 2));
    } else {
      body = std::string(trimmed);
    }
  }
  const auto parts = util::split(body, ',');
  if (static_cast<std::int32_t>(parts.size()) != schema.attributeCount()) {
    return util::Status::invalidArgument(
        "expected " + std::to_string(schema.attributeCount()) +
        " slots, got " + std::to_string(parts.size()) + " in '" + text + "'");
  }
  std::vector<ElemId> slots(parts.size(), kWildcard);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string token{util::trim(parts[i])};
    if (token == "*") continue;
    auto elem = schema.attribute(static_cast<AttrId>(i)).elementId(token);
    if (!elem) return elem.status();
    slots[i] = elem.value();
  }
  return AttributeCombination(std::move(slots));
}

std::int32_t AttributeCombination::dim() const noexcept {
  std::int32_t d = 0;
  for (const ElemId e : slots_) d += (e != kWildcard) ? 1 : 0;
  return d;
}

bool AttributeCombination::isLeaf() const noexcept {
  for (const ElemId e : slots_) {
    if (e == kWildcard) return false;
  }
  return !slots_.empty();
}

std::uint32_t AttributeCombination::cuboidMask() const noexcept {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] != kWildcard) mask |= (1u << i);
  }
  return mask;
}

bool AttributeCombination::matchesLeaf(
    const AttributeCombination& leaf) const noexcept {
  if (leaf.slots_.size() != slots_.size()) return false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] != kWildcard && slots_[i] != leaf.slots_[i]) return false;
  }
  return true;
}

bool AttributeCombination::covers(
    const AttributeCombination& other) const noexcept {
  if (other.slots_.size() != slots_.size()) return false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] != kWildcard && slots_[i] != other.slots_[i]) return false;
  }
  return true;
}

bool AttributeCombination::isAncestorOf(
    const AttributeCombination& other) const noexcept {
  return covers(other) && dim() < other.dim();
}

std::vector<AttributeCombination> AttributeCombination::parents() const {
  std::vector<AttributeCombination> out;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == kWildcard) continue;
    AttributeCombination parent = *this;
    parent.slots_[i] = kWildcard;
    out.push_back(std::move(parent));
  }
  return out;
}

std::vector<AttributeCombination> AttributeCombination::children(
    const Schema& schema) const {
  RAP_CHECK(schema.attributeCount() == attributeCount());
  std::vector<AttributeCombination> out;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] != kWildcard) continue;
    const auto attr = static_cast<AttrId>(i);
    for (ElemId e = 0; e < schema.cardinality(attr); ++e) {
      AttributeCombination child = *this;
      child.slots_[i] = e;
      out.push_back(std::move(child));
    }
  }
  return out;
}

std::string AttributeCombination::toString(const Schema& schema) const {
  RAP_CHECK(schema.attributeCount() == attributeCount());
  std::string out = "(";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += ", ";
    if (slots_[i] == kWildcard) {
      out += "*";
    } else {
      out += schema.attribute(static_cast<AttrId>(i)).elementName(slots_[i]);
    }
  }
  out += ")";
  return out;
}

std::string AttributeCombination::debugString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += ",";
    out += slots_[i] == kWildcard ? "*" : std::to_string(slots_[i]);
  }
  out += ")";
  return out;
}

std::size_t AcHash::operator()(const AttributeCombination& ac) const noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const ElemId e : ac.slots()) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(e));
    h *= 0x100000001B3ULL;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace rap::dataset
