// InvertedIndex — posting lists per (attribute, element) over a LeafTable.
//
// Baselines that probe many individual attribute combinations (iDice's BFS,
// HotSpot's MCTS) would otherwise rescan the whole table per probe; the
// index answers "which rows does this combination cover" by intersecting
// the sorted posting lists of its concrete slots.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/leaf_table.h"

namespace rap::dataset {

class InvertedIndex {
 public:
  explicit InvertedIndex(const LeafTable& table);

  /// Sorted row ids with attribute `attr` equal to `elem`.
  const std::vector<RowId>& posting(AttrId attr, ElemId elem) const;

  /// Rows covered by `ac` (intersection of its slots' postings; all rows
  /// for the lattice root).  Sorted ascending.
  std::vector<RowId> rowsMatching(const AttributeCombination& ac) const;

  /// Support counts for `ac` without materializing the row set.
  GroupAggregate aggregateFor(const AttributeCombination& ac) const;

  const LeafTable& table() const noexcept { return *table_; }

 private:
  const LeafTable* table_;
  // postings_[attr][elem] — flattened per attribute.
  std::vector<std::vector<std::vector<RowId>>> postings_;
};

}  // namespace rap::dataset
