// GroupByKernel — cache-friendly cuboid aggregation over a LeafTable.
//
// LeafTable::groupBy re-reads every row's AttributeCombination (a
// heap-allocated slot vector) for every cuboid it aggregates, so a search
// that visits many cuboids pays the pointer-chasing cost over and over.
// The kernel pays it once: at construction (or rebind()) it transposes
// the table into per-attribute element-code columns (plus flat
// anomaly/value columns), and each aggregation then runs column-sweep
// passes over contiguous memory — one pass per member attribute to build
// the mixed-radix projection keys, one final pass to scatter the rows
// into a flat (total, anomalous, v_sum, f_sum) accumulation array.
//
// Two aggregation entry points share that layout:
//
//   * groupBy(mask) — the original one-shot form: allocates a dense cell
//     array of cuboidSize(mask) cells, zero-fills it, sweeps every cell
//     to collect the non-empty groups.  O(rows + cuboid_size) per call.
//   * groupByInto(mask, scratch, out) — the allocation-free hot path:
//     the caller supplies a GroupByScratch whose dense array is
//     zero-filled only when it grows, a touched-key list records which
//     cells this call wrote, and the output is produced by sorting the
//     touched keys ascending.  Only touched cells are reset afterwards,
//     so the O(cuboid_size) zero-fill + full sweep of the one-shot form
//     becomes O(rows + groups·log groups).  In steady state (schema,
//     row count and cuboid sizes no larger than already seen) the call
//     performs zero heap allocations — asserted by
//     `micro_primitives --assert-zero-alloc` in CI.
//
// Output contract: both forms are element-for-element identical to
// LeafTable::groupBy(mask) — same ascending-key order, same counts and,
// because rows are accumulated into per-cell sums in the same row order,
// bit-identical floating-point sums.  The kernel is immutable between
// rebind()s and safe to share across threads as long as each thread
// brings its own scratch (the parallel layer search of
// core::acGuidedSearch aggregates disjoint cuboids concurrently through
// one kernel with per-worker scratches).
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/cuboid.h"
#include "dataset/leaf_table.h"

namespace rap::dataset {

/// One accumulation cell of the dense group-by array.
struct GroupCell {
  std::uint32_t total = 0;
  std::uint32_t anomalous = 0;
  double v_sum = 0.0;
  double f_sum = 0.0;
};

/// Caller-owned scratch memory for GroupByKernel::groupByInto.  All
/// buffers grow to the high-water mark of the cuboids aggregated through
/// them and are then reused without reallocation.  Invariant between
/// calls: every cell of `dense` is zero and `touched` is empty (the
/// kernel restores both before returning).  A scratch serves one thread
/// at a time; give each worker its own.
struct GroupByScratch {
  std::vector<std::uint64_t> keys;     ///< [row] projection keys
  std::vector<GroupCell> dense;        ///< [key] accumulation cells
  std::vector<std::uint64_t> touched;  ///< keys written by this call
  std::vector<AttrId> attrs;           ///< member attributes of the mask
  std::vector<std::uint64_t> strides;  ///< mixed-radix strides of attrs
};

class GroupByKernel {
 public:
  /// Unbound kernel; rebind() before use.
  GroupByKernel() = default;

  /// Transposes `table` into columns.  O(rows * attributes); the table
  /// must outlive the kernel and not grow while the kernel is in use.
  explicit GroupByKernel(const LeafTable& table);

  /// Re-targets the kernel at another table, reusing the transposed
  /// columns' capacity — repeated localizations of same-shaped tables
  /// (same schema, same row count) re-fill the existing buffers instead
  /// of reallocating them.  Not thread-safe against concurrent
  /// aggregation calls on this kernel.
  void rebind(const LeafTable& table);

  bool bound() const noexcept { return table_ != nullptr; }
  const LeafTable& table() const noexcept { return *table_; }
  std::size_t rowCount() const noexcept { return anomalous_.size(); }

  /// One-pass aggregation of all leaves by their projection onto `mask`;
  /// identical to table().groupBy(mask) (see header comment).  One-shot
  /// form: allocates its dense array per call.
  std::vector<GroupAggregate> groupBy(CuboidMask mask) const;

  /// Allocation-free form: aggregates into `out[0 .. returned count)`
  /// using the caller's scratch.  `out` only ever grows — entries past
  /// the returned count are stale leftovers kept alive so their heap
  /// buffers (each GroupAggregate owns an AttributeCombination) can be
  /// reused by later calls.  Element-for-element bit-identical to
  /// groupBy(mask) over the returned prefix.  Cuboids above the dense
  /// limit fall back to the table's sort-and-aggregate path (which
  /// allocates; documented exception to the zero-allocation contract).
  std::size_t groupByInto(CuboidMask mask, GroupByScratch& scratch,
                          std::vector<GroupAggregate>& out) const;

  /// Support counts of a single combination (column scan; used by tests
  /// to cross-check against InvertedIndex::aggregateFor).
  GroupAggregate aggregateFor(const AttributeCombination& ac) const;

 private:
  const LeafTable* table_ = nullptr;
  // columns_[attr][row] — element code of `row` in attribute `attr`.
  std::vector<std::vector<std::uint32_t>> columns_;
  std::vector<std::uint8_t> anomalous_;  ///< [row] 0/1 verdicts
  std::vector<double> v_;                ///< [row] actual values
  std::vector<double> f_;                ///< [row] forecast values
};

}  // namespace rap::dataset
