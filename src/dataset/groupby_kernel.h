// GroupByKernel — cache-friendly cuboid aggregation over a LeafTable.
//
// LeafTable::groupBy re-reads every row's AttributeCombination (a
// heap-allocated slot vector) for every cuboid it aggregates, so a search
// that visits many cuboids pays the pointer-chasing cost over and over.
// The kernel pays it once: at construction it transposes the table into
// per-attribute element-code columns (plus flat anomaly/value columns),
// and each groupBy() then runs column-sweep passes over contiguous
// memory — one pass per member attribute to build the mixed-radix
// projection keys, one final pass to scatter the rows into a flat
// (total, anomalous, v_sum, f_sum) accumulation array.
//
// Output contract: groupBy(mask) is element-for-element identical to
// LeafTable::groupBy(mask) — same ascending-key order, same counts and,
// because rows are accumulated in the same row order, bit-identical
// floating-point sums.  The kernel is immutable after construction and
// safe to share across threads (the parallel layer search of
// core::acGuidedSearch aggregates disjoint cuboids concurrently through
// one kernel).
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/cuboid.h"
#include "dataset/leaf_table.h"

namespace rap::dataset {

class GroupByKernel {
 public:
  /// Transposes `table` into columns.  O(rows * attributes); the table
  /// must outlive the kernel and not grow while the kernel is in use.
  explicit GroupByKernel(const LeafTable& table);

  const LeafTable& table() const noexcept { return *table_; }
  std::size_t rowCount() const noexcept { return anomalous_.size(); }

  /// One-pass aggregation of all leaves by their projection onto `mask`;
  /// identical to table().groupBy(mask) (see header comment).
  std::vector<GroupAggregate> groupBy(CuboidMask mask) const;

  /// Support counts of a single combination (column scan; used by tests
  /// to cross-check against InvertedIndex::aggregateFor).
  GroupAggregate aggregateFor(const AttributeCombination& ac) const;

 private:
  const LeafTable* table_;
  // columns_[attr][row] — element code of `row` in attribute `attr`.
  std::vector<std::vector<std::uint32_t>> columns_;
  std::vector<std::uint8_t> anomalous_;  ///< [row] 0/1 verdicts
  std::vector<double> v_;                ///< [row] actual values
  std::vector<double> f_;                ///< [row] forecast values
};

}  // namespace rap::dataset
