// Attribute schema for a multi-dimensional KPI space.
//
// A Schema is an ordered list of attributes (e.g. Location, AccessType,
// OS, Website for the CDN of the paper's Table I); each attribute has a
// dictionary of named elements.  Attribute combinations refer to elements
// by integer id, so the Schema is the single source of truth for the
// id <-> name mapping and for cardinalities.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace rap::dataset {

using AttrId = std::int32_t;
using ElemId = std::int32_t;

/// One dimension of the KPI space: a name plus an element dictionary.
class Attribute {
 public:
  Attribute(std::string name, std::vector<std::string> elements);

  const std::string& name() const noexcept { return name_; }
  std::int32_t cardinality() const noexcept {
    return static_cast<std::int32_t>(elements_.size());
  }
  const std::string& elementName(ElemId id) const;
  /// Returns the element id, or an error if the name is unknown.
  util::Result<ElemId> elementId(const std::string& element_name) const;

 private:
  std::string name_;
  std::vector<std::string> elements_;
  std::unordered_map<std::string, ElemId> index_;
};

/// Ordered set of attributes.  Immutable once constructed.
class Schema {
 public:
  explicit Schema(std::vector<Attribute> attributes);

  std::int32_t attributeCount() const noexcept {
    return static_cast<std::int32_t>(attributes_.size());
  }
  const Attribute& attribute(AttrId id) const;
  util::Result<AttrId> attributeId(const std::string& name) const;

  std::int32_t cardinality(AttrId id) const { return attribute(id).cardinality(); }

  /// Product of all cardinalities = number of most fine-grained
  /// attribute combinations ("leaves"), paper §III-C.
  std::uint64_t leafCount() const noexcept;

  /// Number of cuboids in the lattice: 2^n - 1 (paper §II-B).
  std::uint64_t cuboidCount() const noexcept;

  /// The paper's Table I CDN schema: Location(33), AccessType(4),
  /// OS(4), Website(20) — 10,560 leaves.
  static Schema cdn();

  /// A small schema handy for unit tests and the worked examples of
  /// the paper's Fig. 6/7: A(3), B(2), C(2), D(2).
  static Schema tiny();

  /// Synthetic schema with the given cardinalities; attribute names are
  /// "A0", "A1", ... and elements "A0=e<j>".
  static Schema synthetic(const std::vector<std::int32_t>& cardinalities);

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace rap::dataset
