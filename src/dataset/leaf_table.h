// LeafTable — the paper's most fine-grained dataset D (Table III): one row
// per leaf attribute combination with its actual value v, forecast value f
// and the per-leaf anomaly-detection verdict.  This is the only input the
// RAPMiner algorithm consumes (paper §IV-B).
//
// The table owns a copy of the Schema and offers the group-by aggregation
// that both RAPMiner and the baselines are built on: projecting every leaf
// onto a cuboid and accumulating counts / KPI sums per projected
// combination is one O(rows) pass with a dense or hashed key.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataset/attribute_combination.h"
#include "dataset/cuboid.h"
#include "dataset/schema.h"

namespace rap::dataset {

using RowId = std::uint32_t;

struct LeafRow {
  AttributeCombination ac;  ///< fully concrete combination
  double v = 0.0;           ///< actual KPI value
  double f = 0.0;           ///< forecast KPI value
  bool anomalous = false;   ///< leaf-level detection verdict
};

/// Aggregate of all leaves that project onto one attribute combination of
/// a cuboid.  `total`/`anomalous` are the paper's support_count(ac) and
/// support_count(ac, Anomaly); Confidence(ac => Anomaly) = anomalous/total.
struct GroupAggregate {
  AttributeCombination ac;
  std::uint32_t total = 0;
  std::uint32_t anomalous = 0;
  double v_sum = 0.0;
  double f_sum = 0.0;

  double confidence() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(anomalous) /
                            static_cast<double>(total);
  }
};

/// GroupAggregate plus the member rows (needed by baselines that inspect
/// leaf values per group, e.g. Squeeze's GPS).
struct GroupWithRows {
  GroupAggregate agg;
  std::vector<RowId> rows;
};

class LeafTable {
 public:
  explicit LeafTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const noexcept { return schema_; }

  /// Appends a leaf row.  The combination must be a leaf over this schema
  /// with in-range element ids; duplicate leaves are allowed (a sparse
  /// table may legitimately carry repeated measurements).
  void addRow(LeafRow row);

  /// Convenience used heavily by tests and generators.
  void addRow(AttributeCombination ac, double v, double f, bool anomalous);

  void reserve(std::size_t n) { rows_.reserve(n); }

  std::size_t size() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }
  const LeafRow& row(RowId id) const {
    RAP_CHECK(id < rows_.size());
    return rows_[id];
  }
  const std::vector<LeafRow>& rows() const noexcept { return rows_; }

  /// Overwrite the verdict of one row (used by detectors).
  void setAnomalous(RowId id, bool anomalous) {
    RAP_CHECK(id < rows_.size());
    rows_[id].anomalous = anomalous;
  }

  std::uint32_t anomalousCount() const noexcept;
  double totalV() const noexcept;
  double totalF() const noexcept;

  /// Mixed-radix projection key of a row onto the cuboid `mask`;
  /// keys are dense in [0, cuboidSize(mask)).
  std::uint64_t projectionKey(RowId id, CuboidMask mask) const;

  /// One-pass aggregation of all leaves by their projection onto `mask`.
  /// Only combinations with at least one supporting leaf are returned
  /// (the table may be sparse).  Deterministic order (ascending key).
  std::vector<GroupAggregate> groupBy(CuboidMask mask) const;

  /// Same, with member row ids attached.
  std::vector<GroupWithRows> groupByWithRows(CuboidMask mask) const;

  /// Aggregation restricted to a subset of rows (e.g. one Squeeze
  /// deviation cluster).
  std::vector<GroupWithRows> groupByWithRows(
      CuboidMask mask, const std::vector<RowId>& subset) const;

  /// Support counts for a single combination by a scan over the table.
  GroupAggregate aggregateFor(const AttributeCombination& ac) const;

  /// True iff every anomalous leaf is covered by at least one of the
  /// given combinations — the early-stop test of Algorithm 2.
  bool coversAllAnomalies(const std::vector<AttributeCombination>& acs) const;

  /// Row ids of anomalous leaves.
  std::vector<RowId> anomalousRows() const;

 private:
  Schema schema_;
  std::vector<LeafRow> rows_;
};

}  // namespace rap::dataset
