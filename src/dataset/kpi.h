// Fundamental vs. derived KPIs (paper §III-A, Fig. 4).
//
// Fundamental KPIs (traffic volume, request count, success count, ...)
// are additive: the KPI of a coarse attribute combination is the sum of
// its descendant leaves', so coarse values aggregate up the lattice.
// Derived KPIs (success ratio, cache hit ratio, ...) are non-additive
// but are functions of fundamentals, K^D = g(K^F_1, ..., K^F_m) — the
// correct coarse-grained derived value applies g AFTER aggregating the
// fundamentals, exactly as Fig. 4 prescribes.
//
// MultiKpiTable stores several fundamental KPI columns (actual and
// forecast) per leaf and can
//   * aggregate any fundamental over any cuboid (additivity),
//   * evaluate a derived KPI at any attribute combination (aggregate
//     fundamentals first, then apply g),
//   * project a fundamental or derived KPI into a plain LeafTable so
//     the detectors and localizers run on it unchanged — which is the
//     paper's §IV-B point: RAPMiner consumes leaf verdicts and never
//     needs to know which kind of KPI produced them.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dataset/leaf_table.h"

namespace rap::dataset {

using KpiId = std::int32_t;

/// g: fundamental values -> derived value.  Receives one double per
/// fundamental KPI column, in column order.
using DerivedFn = std::function<double(const std::vector<double>&)>;

struct DerivedKpi {
  std::string name;
  DerivedFn fn;
};

/// Ratio of two fundamental columns with a divide-by-zero guard —
/// the most common derived KPI (success ratio, cache hit ratio).
DerivedKpi ratioKpi(std::string name, KpiId numerator, KpiId denominator);

struct MultiKpiRow {
  AttributeCombination ac;          ///< fully concrete leaf
  std::vector<double> v;            ///< actual, one per fundamental KPI
  std::vector<double> f;            ///< forecast, one per fundamental KPI
};

class MultiKpiTable {
 public:
  MultiKpiTable(Schema schema, std::vector<std::string> kpi_names);

  const Schema& schema() const noexcept { return schema_; }
  std::int32_t kpiCount() const noexcept {
    return static_cast<std::int32_t>(kpi_names_.size());
  }
  const std::string& kpiName(KpiId id) const;
  util::Result<KpiId> kpiId(const std::string& name) const;

  /// Appends a leaf row; value vectors must have kpiCount() entries.
  void addRow(MultiKpiRow row);

  std::size_t size() const noexcept { return rows_.size(); }
  const MultiKpiRow& row(RowId id) const;

  /// Additive aggregation of one fundamental KPI over a combination
  /// (Fig. 4): (sum of actuals, sum of forecasts) across covered leaves.
  std::pair<double, double> aggregateFundamental(
      const AttributeCombination& ac, KpiId kpi) const;

  /// Derived KPI at a combination: aggregate every fundamental first,
  /// then apply g — once to the actuals, once to the forecasts.
  std::pair<double, double> deriveAt(const AttributeCombination& ac,
                                     const DerivedKpi& derived) const;

  /// Projects one fundamental KPI into a LeafTable (verdicts unset).
  LeafTable fundamentalLeafTable(KpiId kpi) const;

  /// Projects a derived KPI into a LeafTable: per leaf, v = g(actuals),
  /// f = g(forecasts).  Verdicts unset — run a detector afterwards.
  LeafTable derivedLeafTable(const DerivedKpi& derived) const;

 private:
  Schema schema_;
  std::vector<std::string> kpi_names_;
  std::vector<MultiKpiRow> rows_;
};

}  // namespace rap::dataset
