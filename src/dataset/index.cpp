#include "dataset/index.h"

#include <algorithm>

namespace rap::dataset {

InvertedIndex::InvertedIndex(const LeafTable& table) : table_(&table) {
  const Schema& schema = table.schema();
  postings_.resize(static_cast<std::size_t>(schema.attributeCount()));
  for (AttrId a = 0; a < schema.attributeCount(); ++a) {
    postings_[static_cast<std::size_t>(a)].resize(
        static_cast<std::size_t>(schema.cardinality(a)));
  }
  for (RowId id = 0; id < table.size(); ++id) {
    const auto& ac = table.row(id).ac;
    for (AttrId a = 0; a < schema.attributeCount(); ++a) {
      postings_[static_cast<std::size_t>(a)]
               [static_cast<std::size_t>(ac.slot(a))]
                   .push_back(id);
    }
  }
}

const std::vector<RowId>& InvertedIndex::posting(AttrId attr,
                                                 ElemId elem) const {
  RAP_CHECK(attr >= 0 &&
            attr < static_cast<AttrId>(postings_.size()));
  const auto& per_attr = postings_[static_cast<std::size_t>(attr)];
  RAP_CHECK(elem >= 0 && elem < static_cast<ElemId>(per_attr.size()));
  return per_attr[static_cast<std::size_t>(elem)];
}

std::vector<RowId> InvertedIndex::rowsMatching(
    const AttributeCombination& ac) const {
  // Gather the postings of all concrete slots, smallest first, and
  // intersect progressively.
  std::vector<const std::vector<RowId>*> lists;
  for (AttrId a = 0; a < ac.attributeCount(); ++a) {
    if (!ac.isWildcard(a)) lists.push_back(&posting(a, ac.slot(a)));
  }
  if (lists.empty()) {
    std::vector<RowId> all(table_->size());
    for (RowId id = 0; id < table_->size(); ++id) all[id] = id;
    return all;
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<RowId> result = *lists.front();
  std::vector<RowId> next;
  for (std::size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    next.clear();
    std::set_intersection(result.begin(), result.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(next));
    result.swap(next);
  }
  return result;
}

GroupAggregate InvertedIndex::aggregateFor(
    const AttributeCombination& ac) const {
  GroupAggregate g;
  g.ac = ac;
  for (const RowId id : rowsMatching(ac)) {
    const LeafRow& row = table_->row(id);
    g.total += 1;
    g.anomalous += row.anomalous ? 1 : 0;
    g.v_sum += row.v;
    g.f_sum += row.f;
  }
  return g;
}

}  // namespace rap::dataset
