#include "dataset/cuboid.h"

#include <algorithm>
#include <bit>

namespace rap::dataset {

std::int32_t cuboidLayer(CuboidMask mask) noexcept {
  return std::popcount(mask);
}

std::vector<AttrId> cuboidAttributes(CuboidMask mask) {
  std::vector<AttrId> out;
  out.reserve(static_cast<std::size_t>(std::popcount(mask)));
  for (AttrId i = 0; i < 32; ++i) {
    if ((mask & (1u << i)) != 0) out.push_back(i);
  }
  return out;
}

std::uint64_t cuboidSize(const Schema& schema, CuboidMask mask) {
  // Walks the mask bits directly instead of materializing the attribute
  // vector: this sits on the per-cuboid hot path (groupByInto calls it
  // every invocation) and must stay allocation-free.
  std::uint64_t product = 1;
  for (AttrId attr = 0; attr < 32; ++attr) {
    if ((mask & (1u << attr)) == 0) continue;
    RAP_CHECK(attr < schema.attributeCount());
    product *= static_cast<std::uint64_t>(schema.cardinality(attr));
  }
  return product;
}

std::string cuboidName(const Schema& schema, CuboidMask mask) {
  std::string out = "Cub{";
  bool first = true;
  for (const AttrId attr : cuboidAttributes(mask)) {
    if (!first) out += ",";
    first = false;
    out += schema.attribute(attr).name();
  }
  out += "}";
  return out;
}

std::vector<CuboidMask> cuboidsAtLayer(CuboidMask allowed, std::int32_t layer) {
  std::vector<CuboidMask> out;
  if (layer <= 0) return out;
  // Walk sub-masks of `allowed` in ascending numeric order and keep the
  // ones with the requested popcount.  `allowed` has at most 32 bits but
  // in practice few; enumerating submasks is O(2^|allowed|).
  for (CuboidMask sub = allowed; sub != 0; sub = (sub - 1) & allowed) {
    if (std::popcount(sub) == layer) out.push_back(sub);
  }
  // Submask enumeration runs descending; restore ascending determinism.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CuboidMask> allCuboidsByLayer(CuboidMask allowed) {
  std::vector<CuboidMask> out;
  const std::int32_t max_layer = std::popcount(allowed);
  for (std::int32_t layer = 1; layer <= max_layer; ++layer) {
    const auto at_layer = cuboidsAtLayer(allowed, layer);
    out.insert(out.end(), at_layer.begin(), at_layer.end());
  }
  return out;
}

CuboidMask allAttributesMask(const Schema& schema) noexcept {
  return (schema.attributeCount() >= 32)
             ? ~0u
             : ((1u << schema.attributeCount()) - 1);
}

std::uint64_t leafToIndex(const Schema& schema,
                          const AttributeCombination& ac) {
  RAP_CHECK(ac.isLeaf() && ac.attributeCount() == schema.attributeCount());
  std::uint64_t key = 0;
  for (AttrId a = 0; a < schema.attributeCount(); ++a) {
    key = key * static_cast<std::uint64_t>(schema.cardinality(a)) +
          static_cast<std::uint64_t>(ac.slot(a));
  }
  return key;
}

AttributeCombination leafFromIndex(const Schema& schema, std::uint64_t index) {
  RAP_CHECK(index < schema.leafCount());
  AttributeCombination ac(schema.attributeCount());
  for (AttrId a = schema.attributeCount() - 1; a >= 0; --a) {
    const auto card = static_cast<std::uint64_t>(schema.cardinality(a));
    ac.setSlot(a, static_cast<ElemId>(index % card));
    index /= card;
  }
  return ac;
}

std::vector<AttributeCombination> enumerateCuboid(const Schema& schema,
                                                  CuboidMask mask) {
  std::vector<AttributeCombination> out;
  out.reserve(static_cast<std::size_t>(cuboidSize(schema, mask)));
  forEachInCuboid(schema, mask,
                  [&out](const AttributeCombination& ac) { out.push_back(ac); });
  return out;
}

}  // namespace rap::dataset
