// RAPMD generator — the paper's semi-synthetic CDN dataset (§V-A),
// reproduced from its published injection recipe:
//
//   * background: per-leaf traffic of the Table I CDN schema at randomly
//     chosen timestamps (here: the synthetic CdnBackgroundModel);
//   * Randomness 1: each case carries 1..3 RAPs; each RAP may live in any
//     cuboid (dimension chosen independently per RAP), so different RAPs
//     of one case may sit in different cuboids — unlike the Squeeze
//     dataset's single-cuboid assumption;
//   * Randomness 2: each anomalous leaf draws its own relative deviation
//     Dev ~ U[0.1, 0.9]; every normal leaf draws Dev ~ U[-0.02, 0.09];
//     the forecast is back-derived as f = (v + Dev*eps) / (1 - Dev)
//     (paper Eq. 4/5), so deviations are NOT constant under one RAP and
//     MAY coincide across different RAPs — breaking both of Squeeze's
//     assumptions on purpose.
//
// Leaf verdicts are set from the injected deviation (the [0.1,0.9] vs
// [-0.02,0.09] ranges are separable at threshold ~0.095, which is what the
// pipeline's RelativeDeviationDetector recovers); optional label noise
// flips a fraction of verdicts to emulate an imperfect detector.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/kpi.h"
#include "gen/background.h"
#include "gen/case.h"

namespace rap::gen {

struct RapmdConfig {
  std::int32_t num_cases = 105;    ///< paper: 105 injected failure timepoints
  std::int32_t min_raps = 1;       ///< Randomness 1 lower bound
  std::int32_t max_raps = 3;       ///< Randomness 1 upper bound
  std::int32_t min_rap_dim = 1;    ///< smallest cuboid layer a RAP may use
  std::int32_t max_rap_dim = 3;    ///< paper: "many 3-dimensional RAPs"
  double anomalous_dev_lo = 0.1;   ///< Randomness 2
  double anomalous_dev_hi = 0.9;
  double normal_dev_lo = -0.02;
  double normal_dev_hi = 0.09;
  double eps = 1e-6;               ///< the paper's division guard
  double label_noise = 0.0;        ///< fraction of leaf verdicts flipped
  /// Minimum leaves a RAP must cover so that ground truth is meaningful
  /// on a sparse table.
  std::uint32_t min_rap_support = 3;
  BackgroundConfig background;
};

class RapmdGenerator {
 public:
  /// `schema` defaults to Schema::cdn() in the callers; kept explicit so
  /// tests can use small spaces.
  RapmdGenerator(dataset::Schema schema, RapmdConfig config,
                 std::uint64_t seed);

  /// Generate all cases (deterministic for a fixed seed).
  std::vector<Case> generate();

  /// Generate only the i-th case (same content as generate()[i]).
  Case generateCase(std::int32_t index);

  /// Multi-KPI variant of a case: fundamental columns {requests,
  /// successes} with the SAME injected RAPs expressed as a success-ratio
  /// failure (traffic unchanged, successes drop by Dev) — the derived-
  /// KPI scenario of the paper's §III-A.  Forecast columns carry the
  /// healthy values.  Leaf verdicts are NOT set (detect on the derived
  /// view via MultiKpiTable::derivedLeafTable + a detector).
  struct MultiKpiCase {
    std::string id;
    dataset::MultiKpiTable table;
    std::vector<dataset::AttributeCombination> truth;
  };
  MultiKpiCase generateMultiKpiCase(std::int32_t index);

  const dataset::Schema& schema() const noexcept { return schema_; }

 private:
  /// Draw a RAP of dimension `dim` that covers >= min_rap_support active
  /// leaves and is not in an ancestor/descendant/equality relation with
  /// any already chosen RAP.  Overlap through different cuboids is
  /// allowed, as in the paper's own example.
  dataset::AttributeCombination drawRap(
      util::Rng& rng, std::int32_t dim,
      const std::vector<dataset::AttributeCombination>& existing,
      const std::vector<std::uint64_t>& active_leaves);

  dataset::Schema schema_;
  RapmdConfig config_;
  CdnBackgroundModel background_;
  std::uint64_t seed_;
};

}  // namespace rap::gen
