#include "gen/rapmd.h"

#include <algorithm>

#include "dataset/cuboid.h"
#include "util/logging.h"

namespace rap::gen {

using dataset::AttributeCombination;
using dataset::CuboidMask;
using dataset::Schema;

RapmdGenerator::RapmdGenerator(Schema schema, RapmdConfig config,
                               std::uint64_t seed)
    : schema_(std::move(schema)),
      config_(config),
      background_(schema_, config.background, seed),
      seed_(seed) {
  RAP_CHECK(config_.min_raps >= 1 && config_.min_raps <= config_.max_raps);
  RAP_CHECK(config_.min_rap_dim >= 1);
  RAP_CHECK(config_.max_rap_dim <= schema_.attributeCount());
  RAP_CHECK(config_.anomalous_dev_lo > config_.normal_dev_hi);
}

AttributeCombination RapmdGenerator::drawRap(
    util::Rng& rng, std::int32_t dim,
    const std::vector<AttributeCombination>& existing,
    const std::vector<std::uint64_t>& active_leaves) {
  // Candidate cuboids of the requested layer over the full attribute set.
  const auto cuboids = dataset::cuboidsAtLayer(
      dataset::allAttributesMask(schema_), dim);
  RAP_CHECK(!cuboids.empty());

  for (std::int32_t attempt = 0; attempt < 256; ++attempt) {
    const CuboidMask mask = cuboids[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(cuboids.size()) - 1))];
    AttributeCombination rap(schema_.attributeCount());
    for (const auto attr : dataset::cuboidAttributes(mask)) {
      rap.setSlot(attr, static_cast<dataset::ElemId>(
                            rng.uniformInt(0, schema_.cardinality(attr) - 1)));
    }
    const bool related =
        std::any_of(existing.begin(), existing.end(),
                    [&rap](const AttributeCombination& other) {
                      return rap.covers(other) || other.covers(rap);
                    });
    if (related) continue;
    // Require enough active leaves under the RAP for the case to be
    // localizable at all.
    std::uint32_t support = 0;
    for (const auto leaf_index : active_leaves) {
      if (rap.matchesLeaf(dataset::leafFromIndex(schema_, leaf_index))) {
        ++support;
        if (support >= config_.min_rap_support) break;
      }
    }
    if (support >= config_.min_rap_support) return rap;
  }
  // Extremely sparse corner: fall back to the element combination of the
  // first active leaf projected to `dim` attributes.
  RAP_CHECK_MSG(!active_leaves.empty(), "no active leaves to inject into");
  const auto leaf = dataset::leafFromIndex(schema_, active_leaves.front());
  AttributeCombination rap(schema_.attributeCount());
  for (std::int32_t a = 0; a < dim; ++a) rap.setSlot(a, leaf.slot(a));
  return rap;
}

Case RapmdGenerator::generateCase(std::int32_t index) {
  // Independent stream per case so generateCase(i) == generate()[i].
  util::Rng rng(seed_ ^ (0x9E3779B97F4A7C15ULL *
                         static_cast<std::uint64_t>(index + 1)));

  // The paper samples 3 random minutes per day over 35 days; emulate by
  // drawing a random minute of the 35-day horizon.
  const std::int64_t minute = rng.uniformInt(
      0, 35LL * config_.background.minutes_per_day - 1);

  // Active leaves at this timestamp.
  std::vector<std::uint64_t> active;
  active.reserve(background_.leafCount());
  for (std::uint64_t leaf = 0; leaf < background_.leafCount(); ++leaf) {
    if (background_.isActive(leaf)) active.push_back(leaf);
  }

  // Randomness 1 — number and shape of RAPs.
  const auto n_raps = static_cast<std::int32_t>(
      rng.uniformInt(config_.min_raps, config_.max_raps));
  std::vector<AttributeCombination> raps;
  raps.reserve(static_cast<std::size_t>(n_raps));
  for (std::int32_t i = 0; i < n_raps; ++i) {
    const auto dim = static_cast<std::int32_t>(
        rng.uniformInt(config_.min_rap_dim, config_.max_rap_dim));
    raps.push_back(drawRap(rng, dim, raps, active));
  }

  // Randomness 2 — per-leaf deviations and back-derived forecasts.
  dataset::LeafTable table(schema_);
  for (const auto leaf_index : active) {
    const auto ac = dataset::leafFromIndex(schema_, leaf_index);
    const double v = background_.sampleVolume(leaf_index, minute, rng);
    if (v <= 0.0) continue;
    const bool injected =
        std::any_of(raps.begin(), raps.end(),
                    [&ac](const AttributeCombination& rap) {
                      return rap.matchesLeaf(ac);
                    });
    const double dev =
        injected ? rng.uniform(config_.anomalous_dev_lo, config_.anomalous_dev_hi)
                 : rng.uniform(config_.normal_dev_lo, config_.normal_dev_hi);
    const double f = (v + dev * config_.eps) / (1.0 - dev);  // paper Eq. 5
    bool verdict = injected;
    if (config_.label_noise > 0.0 && rng.bernoulli(config_.label_noise)) {
      verdict = !verdict;
    }
    table.addRow(ac, v, f, verdict);
  }

  Case out{std::to_string(index), std::move(table), std::move(raps)};
  return out;
}

RapmdGenerator::MultiKpiCase RapmdGenerator::generateMultiKpiCase(
    std::int32_t index) {
  // Reuse the scalar case's traffic and RAPs, re-expressed as a
  // success-ratio failure: requests stay at the healthy level, while
  // successes under a RAP drop by that leaf's injected Dev.
  Case base = generateCase(index);
  constexpr double kHealthyRate = 0.99;

  dataset::MultiKpiTable table(schema_, {"requests", "successes"});
  for (const auto& row : base.table.rows()) {
    // Recover the injected relative deviation from Eq. 4.
    const double dev = (row.f - row.v) / (row.f + config_.eps);
    dataset::MultiKpiRow out;
    out.ac = row.ac;
    const double requests = row.f;  // traffic unaffected by the failure
    const double healthy_successes = requests * kHealthyRate;
    const double successes = row.anomalous
                                 ? healthy_successes * (1.0 - dev)
                                 : healthy_successes;
    out.v = {requests, successes};
    out.f = {requests, healthy_successes};
    table.addRow(std::move(out));
  }
  return MultiKpiCase{std::move(base.id), std::move(table),
                      std::move(base.truth)};
}

std::vector<Case> RapmdGenerator::generate() {
  std::vector<Case> cases;
  cases.reserve(static_cast<std::size_t>(config_.num_cases));
  for (std::int32_t i = 0; i < config_.num_cases; ++i) {
    cases.push_back(generateCase(i));
  }
  RAP_LOG(Debug) << "RAPMD: generated " << cases.size() << " cases";
  return cases;
}

}  // namespace rap::gen
