#include "gen/timeseries.h"

#include <algorithm>

#include "dataset/cuboid.h"

namespace rap::gen {

using dataset::AttributeCombination;
using dataset::CuboidMask;

TimeSeriesGenerator::TimeSeriesGenerator(dataset::Schema schema,
                                         TimeSeriesConfig config,
                                         std::uint64_t seed)
    : schema_(std::move(schema)),
      config_(config),
      background_(schema_, config.background, seed),
      seed_(seed) {
  RAP_CHECK(config_.history_days >= 1);
  RAP_CHECK(config_.min_raps >= 1 && config_.min_raps <= config_.max_raps);
  RAP_CHECK(config_.min_rap_dim >= 1 &&
            config_.max_rap_dim <= schema_.attributeCount());
  RAP_CHECK(config_.drop_lo > 0.0 && config_.drop_hi <= 1.0 &&
            config_.drop_lo <= config_.drop_hi);
}

TimeSeriesCase TimeSeriesGenerator::generateCase(std::int32_t index) {
  util::Rng rng(seed_ ^ (0xA24BAED4963EE407ULL *
                         static_cast<std::uint64_t>(index + 1)));

  const std::int64_t per_day = config_.background.minutes_per_day;
  const std::int64_t history = config_.history_days * per_day;
  // Failure lands somewhere in the day after the history window.
  const std::int64_t failure_minute = history + rng.uniformInt(0, per_day - 1);

  // Draw RAPs the way RapmdGenerator does: any cuboid per RAP, mutually
  // non-related (overlap through different cuboids allowed).
  const auto n_raps = static_cast<std::int32_t>(
      rng.uniformInt(config_.min_raps, config_.max_raps));
  std::vector<AttributeCombination> raps;
  while (static_cast<std::int32_t>(raps.size()) < n_raps) {
    const auto dim = static_cast<std::int32_t>(
        rng.uniformInt(config_.min_rap_dim, config_.max_rap_dim));
    const auto cuboids =
        dataset::cuboidsAtLayer(dataset::allAttributesMask(schema_), dim);
    const CuboidMask mask = cuboids[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(cuboids.size()) - 1))];
    AttributeCombination rap(schema_.attributeCount());
    for (const auto attr : dataset::cuboidAttributes(mask)) {
      rap.setSlot(attr, static_cast<dataset::ElemId>(
                            rng.uniformInt(0, schema_.cardinality(attr) - 1)));
    }
    const bool related = std::any_of(
        raps.begin(), raps.end(), [&rap](const AttributeCombination& other) {
          return rap.covers(other) || other.covers(rap);
        });
    if (!related) raps.push_back(std::move(rap));
  }

  TimeSeriesCase out;
  out.id = std::to_string(index);
  out.truth = raps;
  out.failure_minute = failure_minute;
  for (std::uint64_t leaf = 0; leaf < background_.leafCount(); ++leaf) {
    if (!background_.isActive(leaf)) continue;
    forecast::LeafSeries s;
    s.leaf = dataset::leafFromIndex(schema_, leaf);
    s.history.reserve(static_cast<std::size_t>(history));
    // History ends at the failure minute so its diurnal phase lines up
    // with the observation the forecaster will be asked about.
    for (std::int64_t t = failure_minute - history; t < failure_minute; ++t) {
      s.history.push_back(background_.sampleVolume(leaf, t, rng));
    }
    s.current = background_.sampleVolume(leaf, failure_minute, rng);
    const bool hit = std::any_of(
        raps.begin(), raps.end(), [&s](const AttributeCombination& rap) {
          return rap.matchesLeaf(s.leaf);
        });
    if (hit) {
      s.current *= 1.0 - rng.uniform(config_.drop_lo, config_.drop_hi);
    }
    out.series.push_back(std::move(s));
  }
  return out;
}

}  // namespace rap::gen
