#include "gen/background.h"

#include <cmath>
#include <numbers>

namespace rap::gen {

CdnBackgroundModel::CdnBackgroundModel(const dataset::Schema& schema,
                                       BackgroundConfig config,
                                       std::uint64_t seed)
    : schema_(&schema), config_(config) {
  RAP_CHECK(config_.sparsity >= 0.0 && config_.sparsity < 1.0);
  RAP_CHECK(config_.diurnal_depth >= 0.0 && config_.diurnal_depth < 1.0);
  util::Rng rng(seed);
  base_rate_.resize(schema.leafCount());
  for (auto& rate : base_rate_) {
    if (rng.bernoulli(config_.sparsity)) {
      rate = 0.0;  // leaf never sees traffic
    } else {
      rate = rng.logNormal(config_.log_mean, config_.log_sigma);
    }
  }
}

bool CdnBackgroundModel::isActive(std::uint64_t leaf_index) const {
  RAP_CHECK(leaf_index < base_rate_.size());
  return base_rate_[leaf_index] > 0.0;
}

double CdnBackgroundModel::expectedVolume(std::uint64_t leaf_index,
                                          std::int64_t minute) const {
  RAP_CHECK(leaf_index < base_rate_.size());
  const double base = base_rate_[leaf_index];
  if (base <= 0.0) return 0.0;
  const double day_phase =
      2.0 * std::numbers::pi *
      static_cast<double>(minute % config_.minutes_per_day) /
      static_cast<double>(config_.minutes_per_day);
  // Peak in the evening (phase shift ~20:00).
  const double diurnal =
      1.0 + config_.diurnal_depth * std::sin(day_phase - 2.0 * std::numbers::pi * 20.0 / 24.0);
  const auto day = static_cast<double>(minute / config_.minutes_per_day);
  const double weekly =
      1.0 - config_.weekly_depth *
                (std::fmod(day, 7.0) >= 5.0 ? 1.0 : 0.0);  // weekend dip
  return base * diurnal * weekly;
}

double CdnBackgroundModel::sampleVolume(std::uint64_t leaf_index,
                                        std::int64_t minute,
                                        util::Rng& rng) const {
  const double expected = expectedVolume(leaf_index, minute);
  if (expected <= 0.0) return 0.0;
  const double jitter = 1.0 + config_.noise_sigma * rng.gaussian();
  return expected * std::max(0.05, jitter);
}

}  // namespace rap::gen
