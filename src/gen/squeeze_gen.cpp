#include "gen/squeeze_gen.h"

#include <algorithm>
#include <cmath>

#include "dataset/cuboid.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rap::gen {

using dataset::AttributeCombination;
using dataset::CuboidMask;
using dataset::Schema;

double squeezeNoiseSigma(std::int32_t level) noexcept {
  // B0 is the *lowest* noise level of the published dataset, not a
  // noise-free one: real forecasts always carry residual error.
  switch (level) {
    case 0:
      return 0.04;
    case 1:
      return 0.08;
    case 2:
      return 0.12;
    case 3:
      return 0.16;
    case 4:
      return 0.20;
    default:
      return 0.04;
  }
}

SqueezeGenerator::SqueezeGenerator(SqueezeGenConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      schema_(Schema::synthetic(config_.cardinalities)),
      background_(schema_, config_.background, seed),
      seed_(seed) {
  RAP_CHECK(config_.dev_lo > 0.0 && config_.dev_hi < 1.0 &&
            config_.dev_lo < config_.dev_hi);
}

Case SqueezeGenerator::generateCase(std::int32_t n_dims, std::int32_t n_raps,
                                    std::uint64_t case_seed,
                                    const std::string& id) {
  util::Rng rng(case_seed);
  const std::int64_t minute =
      rng.uniformInt(0, 35LL * config_.background.minutes_per_day - 1);

  // Pick the single cuboid all RAPs of this case share.
  const auto cuboids =
      dataset::cuboidsAtLayer(dataset::allAttributesMask(schema_), n_dims);
  RAP_CHECK(!cuboids.empty());
  const CuboidMask mask = cuboids[static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(cuboids.size()) - 1))];
  const auto attrs = dataset::cuboidAttributes(mask);

  // Active leaves and their combinations.
  std::vector<std::uint64_t> active;
  for (std::uint64_t leaf = 0; leaf < background_.leafCount(); ++leaf) {
    if (background_.isActive(leaf)) active.push_back(leaf);
  }
  RAP_CHECK(!active.empty());

  // Draw distinct RAPs inside the cuboid, each with enough active support.
  std::vector<AttributeCombination> raps;
  for (std::int32_t attempt = 0;
       attempt < 1024 && static_cast<std::int32_t>(raps.size()) < n_raps;
       ++attempt) {
    AttributeCombination rap(schema_.attributeCount());
    for (const auto attr : attrs) {
      rap.setSlot(attr, static_cast<dataset::ElemId>(
                            rng.uniformInt(0, schema_.cardinality(attr) - 1)));
    }
    if (std::find(raps.begin(), raps.end(), rap) != raps.end()) continue;
    std::uint32_t support = 0;
    for (const auto leaf_index : active) {
      if (rap.matchesLeaf(dataset::leafFromIndex(schema_, leaf_index))) {
        ++support;
        if (support >= config_.min_rap_support) break;
      }
    }
    if (support >= config_.min_rap_support) raps.push_back(std::move(rap));
  }
  RAP_CHECK_MSG(static_cast<std::int32_t>(raps.size()) == n_raps,
                "could not place " << n_raps << " RAPs in layer " << n_dims);

  // Horizontal assumption: deviation magnitudes differ between the RAPs
  // of the case (enforced minimum separation so clustering can tell them
  // apart, as the published dataset does).
  std::vector<double> devs;
  while (static_cast<std::int32_t>(devs.size()) < n_raps) {
    const double candidate = rng.uniform(config_.dev_lo, config_.dev_hi);
    const bool distinct =
        std::all_of(devs.begin(), devs.end(), [&](double d) {
          return std::fabs(d - candidate) >= config_.dev_separation;
        });
    if (distinct) devs.push_back(candidate);
  }

  // Build the table: forecast = expected traffic, actual = forecast
  // scaled down by the owning RAP's deviation (vertical assumption),
  // plus the noise-level jitter on every leaf.
  dataset::LeafTable table(schema_);
  const double detect_threshold = config_.dev_lo / 2.0;
  for (const auto leaf_index : active) {
    const auto ac = dataset::leafFromIndex(schema_, leaf_index);
    const double f = background_.expectedVolume(leaf_index, minute);
    if (f <= 0.0) continue;
    double v = f;
    std::int32_t owner = -1;
    for (std::size_t r = 0; r < raps.size(); ++r) {
      if (raps[r].matchesLeaf(ac)) {
        owner = static_cast<std::int32_t>(r);
        break;
      }
    }
    if (owner >= 0) {
      v = f * (1.0 - devs[static_cast<std::size_t>(owner)]);
    }
    if (config_.noise_sigma > 0.0) {
      v *= std::max(0.05, 1.0 + config_.noise_sigma * rng.gaussian());
    }
    // Leaf verdict: the relative deviation the pipeline's detector would
    // recover at half the minimum injected magnitude.
    const bool verdict = (f - v) / std::max(f, 1e-9) > detect_threshold;
    table.addRow(ac, v, f, verdict);
  }

  return Case{id, std::move(table), std::move(raps)};
}

SqueezeGroup SqueezeGenerator::generateGroup(std::int32_t n_dims,
                                             std::int32_t n_raps) {
  RAP_CHECK(n_dims >= 1 && n_dims <= schema_.attributeCount());
  RAP_CHECK(n_raps >= 1);
  SqueezeGroup group;
  group.n_dims = n_dims;
  group.n_raps = n_raps;
  group.cases.reserve(static_cast<std::size_t>(config_.cases_per_group));
  for (std::int32_t i = 0; i < config_.cases_per_group; ++i) {
    const std::uint64_t case_seed =
        seed_ ^ (0xD1B54A32D192ED03ULL *
                 static_cast<std::uint64_t>((n_dims * 100 + n_raps) * 1000 + i + 1));
    group.cases.push_back(generateCase(
        n_dims, n_raps, case_seed,
        util::strFormat("(%d,%d)#%d", n_dims, n_raps, i)));
  }
  return group;
}

std::vector<SqueezeGroup> SqueezeGenerator::generateAllGroups() {
  std::vector<SqueezeGroup> groups;
  for (std::int32_t n = 1; n <= 3; ++n) {
    for (std::int32_t m = 1; m <= 3; ++m) {
      groups.push_back(generateGroup(n, m));
    }
  }
  RAP_LOG(Debug) << "Squeeze-style dataset: " << groups.size() << " groups";
  return groups;
}

}  // namespace rap::gen
