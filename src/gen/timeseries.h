// Time-series RAPMD (the paper's §V-A collection shape): the background
// KPIs span ~35 days at fixed granularity and failures are injected at
// randomly chosen minutes.  Unlike RapmdGenerator — which emits the
// alarmed snapshot with the forecast already attached via Eq. 5 — this
// generator emits the RAW per-leaf history plus the failure minute, so
// the full production loop (forecast -> detect -> localize) can be
// exercised end-to-end with the rap::forecast pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "forecast/pipeline.h"
#include "gen/background.h"

namespace rap::gen {

struct TimeSeriesConfig {
  std::int32_t history_days = 5;   ///< history before the failure minute
  std::int32_t min_raps = 1;
  std::int32_t max_raps = 3;
  std::int32_t min_rap_dim = 1;
  std::int32_t max_rap_dim = 3;
  /// Traffic share lost by leaves under a RAP at the failure minute,
  /// drawn uniformly per leaf (Randomness 2's spirit, applied to raw
  /// traffic instead of Eq. 5 forecasts).
  double drop_lo = 0.3;
  double drop_hi = 0.9;
  BackgroundConfig background;
};

struct TimeSeriesCase {
  std::string id;
  std::vector<forecast::LeafSeries> series;  ///< history + failure minute
  std::vector<dataset::AttributeCombination> truth;
  std::int64_t failure_minute = 0;
};

class TimeSeriesGenerator {
 public:
  TimeSeriesGenerator(dataset::Schema schema, TimeSeriesConfig config,
                      std::uint64_t seed);

  const dataset::Schema& schema() const noexcept { return schema_; }

  /// Deterministic per index (independent of other calls).
  TimeSeriesCase generateCase(std::int32_t index);

 private:
  dataset::Schema schema_;
  TimeSeriesConfig config_;
  CdnBackgroundModel background_;
  std::uint64_t seed_;
};

}  // namespace rap::gen
