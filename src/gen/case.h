// A localization case: one timestamp's leaf table plus its ground-truth
// root anomaly patterns.  Produced by the generators, consumed by the
// evaluation harness.
#pragma once

#include <string>
#include <vector>

#include "dataset/attribute_combination.h"
#include "dataset/leaf_table.h"

namespace rap::gen {

struct Case {
  std::string id;
  dataset::LeafTable table;
  std::vector<dataset::AttributeCombination> truth;
};

}  // namespace rap::gen
