// Synthetic CDN background traffic (substitute for the paper's production
// KPI feed — see DESIGN.md).
//
// The paper's background data is the "Out_Flow" fundamental KPI of every
// most fine-grained combination of the Table I schema, sampled every 60 s
// for 35 days.  What the localization algorithms actually see per case is
// a single timestamp's leaf vector, so the model only needs to reproduce
// its cross-sectional properties:
//   * heavy-tailed per-leaf volume (few hot site/location pairs dominate) —
//     log-normal base rate per leaf;
//   * diurnal + weekly modulation so different timestamps differ;
//   * sparsity — a sizable fraction of leaves carries no traffic at a
//     given minute and is absent from the collected table.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/schema.h"
#include "util/rng.h"

namespace rap::gen {

struct BackgroundConfig {
  double log_mean = 3.0;    ///< mu of the per-leaf log-normal base rate
  double log_sigma = 1.2;   ///< sigma of the base rate
  double diurnal_depth = 0.45;  ///< peak-to-mean modulation, in [0,1)
  double weekly_depth = 0.15;   ///< weekend dip depth, in [0,1)
  double noise_sigma = 0.03;    ///< multiplicative per-sample jitter
  double sparsity = 0.15;       ///< fraction of leaves with no traffic
  std::int32_t minutes_per_day = 1440;
};

/// Deterministic per-leaf traffic model.  The base rate of each leaf is a
/// pure function of (seed, leaf index), so two timestamps of the same
/// model describe the same CDN.
class CdnBackgroundModel {
 public:
  CdnBackgroundModel(const dataset::Schema& schema, BackgroundConfig config,
                     std::uint64_t seed);

  const dataset::Schema& schema() const noexcept { return *schema_; }
  const BackgroundConfig& config() const noexcept { return config_; }

  std::uint64_t leafCount() const noexcept { return base_rate_.size(); }

  /// True when the leaf carries traffic at all (sparsity mask).
  bool isActive(std::uint64_t leaf_index) const;

  /// Expected (noise-free) traffic of a leaf at a minute-of-history index.
  double expectedVolume(std::uint64_t leaf_index,
                        std::int64_t minute) const;

  /// One sampled observation: expected volume times jitter.  Uses the
  /// caller's RNG so repeated draws differ.
  double sampleVolume(std::uint64_t leaf_index, std::int64_t minute,
                      util::Rng& rng) const;

 private:
  const dataset::Schema* schema_;
  BackgroundConfig config_;
  std::vector<double> base_rate_;  ///< per leaf; 0 == inactive
};

}  // namespace rap::gen
