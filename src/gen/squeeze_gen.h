// Squeeze-style semi-synthetic dataset generator (the "published Squeeze
// dataset" of the paper's §V-A, rebuilt from its documented assumptions;
// see DESIGN.md for the substitution note).
//
// Cases are grouped by (n_dims, n_raps) exactly as the paper's Fig. 8(a)
// axis labels "(1,1) ... (3,3)":
//   * all RAPs of one case live in a single cuboid of layer n_dims
//     (Squeeze/HotSpot single-cuboid assumption);
//   * Vertical assumption — every descendant leaf of one RAP gets the
//     SAME relative deviation;
//   * Horizontal assumption — deviations differ across the RAPs of a
//     case (and across cases), which is what Squeeze's deviation-score
//     clustering exploits;
//   * noise level Bk adds multiplicative Gaussian noise of increasing
//     sigma to every leaf's actual value; B0 (used by the paper's
//     comparison) is noise-free.
#pragma once

#include <cstdint>
#include <vector>

#include "gen/background.h"
#include "gen/case.h"

namespace rap::gen {

struct SqueezeGenConfig {
  /// Attribute cardinalities of the synthetic schema.
  std::vector<std::int32_t> cardinalities{10, 8, 12, 15};
  std::int32_t cases_per_group = 30;
  double dev_lo = 0.25;       ///< per-RAP deviation magnitude range
  double dev_hi = 0.85;
  double dev_separation = 0.08;  ///< min gap between two RAPs' deviations
  double noise_sigma = 0.0;      ///< B0 = 0; B1..B4 raise this
  /// Minimum leaves each RAP must cover.
  std::uint32_t min_rap_support = 3;
  BackgroundConfig background;
};

/// Noise sigma of the published dataset's level Bk (k in 0..4).
double squeezeNoiseSigma(std::int32_t level) noexcept;

struct SqueezeGroup {
  std::int32_t n_dims = 1;  ///< cuboid layer of the RAPs
  std::int32_t n_raps = 1;  ///< number of RAPs per case
  std::vector<Case> cases;
};

class SqueezeGenerator {
 public:
  SqueezeGenerator(SqueezeGenConfig config, std::uint64_t seed);

  const dataset::Schema& schema() const noexcept { return schema_; }

  /// One group of cases for the given (n_dims, n_raps).
  SqueezeGroup generateGroup(std::int32_t n_dims, std::int32_t n_raps);

  /// The nine paper groups (n, m) for n, m in 1..3.
  std::vector<SqueezeGroup> generateAllGroups();

 private:
  Case generateCase(std::int32_t n_dims, std::int32_t n_raps,
                    std::uint64_t case_seed, const std::string& id);

  SqueezeGenConfig config_;
  dataset::Schema schema_;
  CdnBackgroundModel background_;
  std::uint64_t seed_;
};

}  // namespace rap::gen
