// Window assembly: turning per-shard window fragments into whole sealed
// windows.
//
// Each shard buffers its hash-partition of the stream per epoch; when
// the watermark passes a window's end the shard hands its fragment to
// the WindowAssembler and promises (sealShardUpTo) that no further
// fragment at or below that epoch will follow.  A window is ready once
// EVERY shard has sealed past it — the assembler then releases windows
// in strictly increasing epoch order, which is what keeps the
// aggregate-KPI alarm's seasonal phase arithmetic honest downstream.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "dataset/leaf_table.h"
#include "stream/event.h"

namespace rap::stream {

/// One fully assembled event-time window, before detection.
struct SealedWindow {
  std::int64_t epoch = 0;
  std::int64_t start_ts = 0;  ///< inclusive
  std::int64_t end_ts = 0;    ///< exclusive
  std::vector<dataset::LeafRow> rows;  ///< concatenated shard fragments
  /// Shard ids that contributed fragments, ascending; -1 entries come
  /// from checkpoint-restored fragments whose origin is gone.  The
  /// sealer terminates each shard's trace flow against this list.
  std::vector<std::int32_t> contributors;
  /// Wall clock of the first fragment contribution for this epoch — the
  /// start of the rap_stream_window_e2e_seconds pipeline-latency clock.
  std::chrono::steady_clock::time_point first_seen{};
};

/// Trace-flow id for one window's hop between pipeline stages.  Lane 0
/// is the sealer -> localize-pool hop; lane (shard + 1) is shard
/// `shard`'s seal -> sealer hop.  Flow events sharing (name, id) chain
/// into one Perfetto arrow sequence, so every id folds in the epoch.
constexpr std::uint64_t windowFlowId(std::int64_t epoch,
                                     std::int32_t lane) noexcept {
  return (static_cast<std::uint64_t>(epoch) << 9) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lane)) &
          0x1ffu);
}

/// The flow name every window hop is emitted under (see windowFlowId).
inline constexpr const char* kWindowFlowName = "stream/window";

/// Thread-safe collector of shard fragments.  Epochs with no rows are
/// skipped entirely (a sparse stream produces no empty windows, matching
/// the batch grouping of the same events).
class WindowAssembler {
 public:
  WindowAssembler(std::int32_t shard_count, std::int64_t window_width);

  WindowAssembler(const WindowAssembler&) = delete;
  WindowAssembler& operator=(const WindowAssembler&) = delete;

  /// Appends one shard's fragment for `epoch`.  Must happen before that
  /// shard seals past the epoch.  `shard` identifies the contributor
  /// for trace correlation; pass -1 for fragments restored from a
  /// checkpoint (their producing shard no longer exists).
  void contribute(std::int32_t shard, std::int64_t epoch,
                  std::vector<dataset::LeafRow> rows);

  /// Shard `shard` promises no further contribute() at epoch <= `epoch`.
  /// Monotone per shard (lower values are ignored).
  void sealShardUpTo(std::int32_t shard, std::int64_t epoch);

  /// Lowest-epoch window every shard has sealed past, or nullopt.
  /// Windows are released in strictly increasing epoch order.
  std::optional<SealedWindow> popReady();

  bool hasReady() const;

  /// min over shards of their sealed-up-to epoch (WatermarkTracker::kNone
  /// while any shard has not sealed anything yet).
  std::int64_t sealedUpTo() const;

  /// Copy of every pending (partially sealed) fragment, for checkpoints.
  std::map<std::int64_t, std::vector<dataset::LeafRow>> snapshotPending()
      const;

 private:
  struct Pending {
    std::vector<dataset::LeafRow> rows;
    std::vector<std::int32_t> contributors;
    std::chrono::steady_clock::time_point first_seen{};
  };

  std::optional<SealedWindow> popReadyLocked();

  const std::int64_t window_width_;

  mutable std::mutex mutex_;
  std::map<std::int64_t, Pending> pending_;
  std::vector<std::int64_t> shard_sealed_;  ///< per shard, kNone initially
};

}  // namespace rap::stream
