#include "stream/window.h"

#include <algorithm>

#include "stream/watermark.h"
#include "util/status.h"

namespace rap::stream {

WindowAssembler::WindowAssembler(std::int32_t shard_count,
                                 std::int64_t window_width)
    : window_width_(window_width),
      shard_sealed_(static_cast<std::size_t>(shard_count),
                    WatermarkTracker::kNone) {
  RAP_CHECK(shard_count >= 1);
  RAP_CHECK(window_width >= 1);
}

void WindowAssembler::contribute(std::int32_t shard, std::int64_t epoch,
                                 std::vector<dataset::LeafRow> rows) {
  if (rows.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = pending_.try_emplace(epoch);
  Pending& slot = it->second;
  if (inserted) slot.first_seen = std::chrono::steady_clock::now();
  if (slot.rows.empty()) {
    slot.rows = std::move(rows);
  } else {
    slot.rows.insert(slot.rows.end(), std::make_move_iterator(rows.begin()),
                     std::make_move_iterator(rows.end()));
  }
  slot.contributors.push_back(shard);
}

void WindowAssembler::sealShardUpTo(std::int32_t shard, std::int64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& sealed = shard_sealed_[static_cast<std::size_t>(shard)];
  sealed = std::max(sealed, epoch);
}

std::int64_t WindowAssembler::sealedUpTo() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return *std::min_element(shard_sealed_.begin(), shard_sealed_.end());
}

std::map<std::int64_t, std::vector<dataset::LeafRow>>
WindowAssembler::snapshotPending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::int64_t, std::vector<dataset::LeafRow>> out;
  for (const auto& [epoch, pending] : pending_) out[epoch] = pending.rows;
  return out;
}

std::optional<SealedWindow> WindowAssembler::popReadyLocked() {
  if (pending_.empty()) return std::nullopt;
  const std::int64_t ready_up_to =
      *std::min_element(shard_sealed_.begin(), shard_sealed_.end());
  auto first = pending_.begin();
  if (ready_up_to == WatermarkTracker::kNone || first->first > ready_up_to) {
    return std::nullopt;
  }
  SealedWindow window;
  window.epoch = first->first;
  window.start_ts = first->first * window_width_;
  window.end_ts = window.start_ts + window_width_;
  window.rows = std::move(first->second.rows);
  window.contributors = std::move(first->second.contributors);
  window.first_seen = first->second.first_seen;
  std::sort(window.contributors.begin(), window.contributors.end());
  pending_.erase(first);
  return window;
}

std::optional<SealedWindow> WindowAssembler::popReady() {
  std::lock_guard<std::mutex> lock(mutex_);
  return popReadyLocked();
}

bool WindowAssembler::hasReady() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.empty()) return false;
  const std::int64_t ready_up_to =
      *std::min_element(shard_sealed_.begin(), shard_sealed_.end());
  return ready_up_to != WatermarkTracker::kNone &&
         pending_.begin()->first <= ready_up_to;
}

}  // namespace rap::stream
