#include "stream/queue.h"

#include "util/status.h"

namespace rap::stream {

BoundedEventQueue::BoundedEventQueue(std::size_t capacity,
                                     BackpressurePolicy policy)
    : capacity_(capacity), policy_(policy) {
  RAP_CHECK(capacity_ >= 1);
}

PushResult BoundedEventQueue::push(StreamEvent event) {
  std::vector<StreamEvent> one;
  one.push_back(std::move(event));
  return pushMany(std::move(one));
}

PushResult BoundedEventQueue::pushMany(std::vector<StreamEvent>&& batch) {
  PushResult result;
  if (batch.empty()) return result;
  bool wake_consumer = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto& event : batch) {
      if (closed_) {
        result.dropped_newest += 1;
        continue;
      }
      if (buffer_.size() >= capacity_) {
        switch (policy_) {
          case BackpressurePolicy::kBlock:
            // A consumer parked before this batch arrived has not been
            // notified yet (the batch notify runs after the loop) — wake
            // it now or producer and consumer wait on each other forever.
            not_empty_.notify_one();
            // Wait for the consumer; re-check closed afterwards (close()
            // wakes blocked producers so shutdown cannot deadlock).
            not_full_.wait(lock, [this] {
              return buffer_.size() < capacity_ || closed_;
            });
            if (closed_) {
              result.dropped_newest += 1;
              continue;
            }
            break;
          case BackpressurePolicy::kDropOldest:
            buffer_.pop_front();
            result.dropped_oldest += 1;
            break;
          case BackpressurePolicy::kDropNewest:
            result.dropped_newest += 1;
            continue;
        }
      }
      if (event.ts > result.max_accepted_ts) result.max_accepted_ts = event.ts;
      buffer_.push_back(std::move(event));
      result.accepted += 1;
      wake_consumer = true;
    }
  }
  batch.clear();
  if (wake_consumer) not_empty_.notify_one();
  return result;
}

bool BoundedEventQueue::drainOrWait(std::vector<StreamEvent>& out) {
  const std::size_t before = out.size();
  bool was_closed = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock,
                    [this] { return !buffer_.empty() || closed_ || nudged_; });
    nudged_ = false;
    while (!buffer_.empty()) {
      out.push_back(std::move(buffer_.front()));
      buffer_.pop_front();
    }
    was_closed = closed_;
  }
  const bool drained = out.size() > before;
  if (drained) not_full_.notify_all();
  return drained || !was_closed;
}

void BoundedEventQueue::drainNow(std::vector<StreamEvent>& out) {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (!buffer_.empty()) {
      out.push_back(std::move(buffer_.front()));
      buffer_.pop_front();
      drained = true;
    }
  }
  if (drained) not_full_.notify_all();
}

void BoundedEventQueue::nudge() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nudged_ = true;
  }
  not_empty_.notify_one();
}

void BoundedEventQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool BoundedEventQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t BoundedEventQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.size();
}

}  // namespace rap::stream
