#include "stream/shard.h"

#include <limits>

#include "obs/trace.h"
#include "util/status.h"

namespace rap::stream {

Shard::Shard(std::int32_t id, const StreamConfig& config,
             WatermarkTracker& watermark, WindowAssembler& assembler,
             StreamCounters& counters, ShardMetrics metrics,
             std::function<void()> on_progress)
    : id_(id),
      config_(config),
      watermark_(watermark),
      assembler_(assembler),
      counters_(counters),
      metrics_(metrics),
      on_progress_(std::move(on_progress)),
      queue_(config.queue_capacity, config.backpressure) {}

Shard::~Shard() {
  queue_.close();
  join();
}

void Shard::start() {
  RAP_CHECK_MSG(!consumer_.joinable(), "shard started twice");
  consumer_ = std::thread([this] { consumerLoop(); });
}

void Shard::join() {
  if (consumer_.joinable()) consumer_.join();
}

PushResult Shard::offer(std::vector<StreamEvent>&& batch) {
  PushResult result = queue_.pushMany(std::move(batch));
  if (result.max_accepted_ts != PushResult::kNoTimestamp) {
    // Watermark moves only after the events backing it are queued, so a
    // consumer that observes the new watermark can already drain them.
    watermark_.observe(result.max_accepted_ts);
  }
  // Evicted residents (kDropOldest) left the buffer without ever being
  // drained, so they must come off the depth too.
  const std::int64_t depth_delta =
      static_cast<std::int64_t>(result.accepted) -
      static_cast<std::int64_t>(result.dropped_oldest);
  if (depth_delta != 0) {
    counters_.queued.fetch_add(depth_delta, std::memory_order_relaxed);
  }
  return result;
}

void Shard::requestDrain(std::uint64_t token) {
  std::uint64_t seen = drain_requested_.load(std::memory_order_relaxed);
  while (token > seen && !drain_requested_.compare_exchange_weak(
                             seen, token, std::memory_order_release)) {
  }
  queue_.nudge();
}

void Shard::requestSnapshot(std::uint64_t token) {
  std::uint64_t seen = snapshot_requested_.load(std::memory_order_relaxed);
  while (token > seen && !snapshot_requested_.compare_exchange_weak(
                             seen, token, std::memory_order_release)) {
  }
  queue_.nudge();
}

ShardState Shard::snapshotState() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void Shard::restore(ShardState state) {
  RAP_CHECK_MSG(!consumer_.joinable(), "restore() after start()");
  sealed_up_to_ = state.sealed_up_to;
  open_ = std::move(state.open);
}

void Shard::bucketEvents(std::vector<StreamEvent>& batch) {
  if (batch.empty()) return;
  const std::int64_t mark = watermark_.watermark();
  std::uint64_t late_admitted = 0;
  std::uint64_t late_dropped = 0;
  for (auto& event : batch) {
    const std::int64_t epoch = epochOf(event.ts, config_.window_width);
    if (epoch <= sealed_up_to_) {
      late_dropped += 1;
      continue;
    }
    if (mark != WatermarkTracker::kNone && event.ts < mark) late_admitted += 1;
    open_[epoch].push_back(dataset::LeafRow{std::move(event.leaf), event.v,
                                            event.f, /*anomalous=*/false});
  }
  counters_.queued.fetch_sub(static_cast<std::int64_t>(batch.size()),
                             std::memory_order_relaxed);
  if (late_admitted > 0) {
    counters_.late_admitted.fetch_add(late_admitted, std::memory_order_relaxed);
  }
  if (late_dropped > 0) {
    counters_.late_dropped.fetch_add(late_dropped, std::memory_order_relaxed);
  }
  if (obs::metricsEnabled()) {
    if (late_admitted > 0) metrics_.late_admitted->increment(late_admitted);
    if (late_dropped > 0) metrics_.late_dropped->increment(late_dropped);
    metrics_.queue_depth->set(static_cast<double>(
        counters_.queued.load(std::memory_order_relaxed)));
  }
  batch.clear();
}

void Shard::sealUpTo(std::int64_t epoch) {
  for (auto it = open_.begin(); it != open_.end() && it->first <= epoch;) {
    if (obs::tracingEnabled()) {
      // The ingest-side stage of the window's trace lane: a span over
      // this shard's fragment hand-off, starting the flow the sealer
      // terminates in processWindow.
      RAP_TRACE_SPAN("stream/shard_seal",
                     {{"epoch", it->first},
                      {"shard", id_},
                      {"rows", static_cast<std::int64_t>(it->second.size())}});
      obs::traceFlow('s', kWindowFlowName, windowFlowId(it->first, id_ + 1),
                     {{"epoch", it->first}, {"shard", id_}});
      assembler_.contribute(id_, it->first, std::move(it->second));
    } else {
      assembler_.contribute(id_, it->first, std::move(it->second));
    }
    it = open_.erase(it);
  }
  assembler_.sealShardUpTo(id_, epoch);
  sealed_up_to_ = epoch;
  on_progress_();
}

void Shard::consumerLoop() {
  std::vector<StreamEvent> batch;
  for (;;) {
    batch.clear();
    const bool alive = queue_.drainOrWait(batch);
    bucketEvents(batch);

    const std::uint64_t drain_token =
        drain_requested_.load(std::memory_order_acquire);
    if (drain_token > drain_acked_.load(std::memory_order_relaxed)) {
      // Pick up events racing with the drain request, then flush all.
      queue_.drainNow(batch);
      bucketEvents(batch);
      sealUpTo(std::numeric_limits<std::int64_t>::max());
      drain_acked_.store(drain_token, std::memory_order_release);
      on_progress_();
    } else {
      const std::int64_t sealable =
          watermark_.sealableEpoch(config_.window_width);
      if (sealable != WatermarkTracker::kNone && sealable > sealed_up_to_) {
        sealUpTo(sealable);
      }
    }

    const std::uint64_t snapshot_token =
        snapshot_requested_.load(std::memory_order_acquire);
    if (snapshot_token > snapshot_acked_.load(std::memory_order_relaxed)) {
      // Pick up events racing with the request, seal everything the
      // current watermark allows (so the recorded frontier matches the
      // promises already made to the assembler), then copy — the shard
      // keeps its state and continues serving after the checkpoint.
      queue_.drainNow(batch);
      bucketEvents(batch);
      const std::int64_t sealable =
          watermark_.sealableEpoch(config_.window_width);
      if (sealable != WatermarkTracker::kNone && sealable > sealed_up_to_) {
        sealUpTo(sealable);
      }
      {
        std::lock_guard<std::mutex> lock(snapshot_mutex_);
        snapshot_.sealed_up_to = sealed_up_to_;
        snapshot_.open = open_;
      }
      snapshot_acked_.store(snapshot_token, std::memory_order_release);
      on_progress_();
    }

    if (!alive) {
      // Closed and empty: contribute whatever is still open, then exit.
      sealUpTo(std::numeric_limits<std::int64_t>::max());
      return;
    }
  }
}

}  // namespace rap::stream
