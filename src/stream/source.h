// Event sources for the streaming engine: turning the repo's generated
// cases into timestamped, shuffled, multi-producer event streams.
//
//   * eventsFromCase       — one labeled snapshot (gen::Case) spread
//     across a single window, deterministically shuffled;
//   * eventsFromTimeSeries — a TimeSeriesCase expanded minute by minute,
//     with the forecast attached at the source by a seasonal-naive
//     predictor (production collectors ship forecasts next to values);
//   * ReplaySource         — N producer threads feeding an engine in
//     batches, optionally paced against event time (speedup control).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gen/case.h"
#include "gen/timeseries.h"
#include "stream/engine.h"
#include "stream/event.h"

namespace rap::stream {

struct CaseEventsConfig {
  std::int64_t window_width = 60;
  /// Window the snapshot lands in (timestamps drawn inside it).
  std::int64_t epoch = 0;
  /// Seed of the deterministic shuffle + per-event timestamp jitter.
  std::uint64_t shuffle_seed = 1;
};

/// Flattens one labeled snapshot into a shuffled single-window stream.
/// Leaf verdicts are NOT carried over — the engine re-detects from
/// (v, f), as a production pipeline would.
std::vector<StreamEvent> eventsFromCase(const gen::Case& c,
                                        const CaseEventsConfig& config);

/// Expands a TimeSeriesCase into per-minute events covering the whole
/// history plus the failure minute: minute t becomes window t (width
/// `window_width`), each active leaf contributing one event with
///   v = observed value,
///   f = value one season earlier (running mean during the first season).
/// Events are ts-sorted with per-event jitter inside each window, so a
/// paced replay interleaves leaves realistically.
std::vector<StreamEvent> eventsFromTimeSeries(const gen::TimeSeriesCase& c,
                                              std::int64_t window_width,
                                              std::int32_t season_length,
                                              std::uint64_t shuffle_seed);

class ReplaySource {
 public:
  struct Config {
    std::size_t producers = 2;
    /// Event-time units replayed per wall-clock second; <= 0 replays at
    /// full speed.
    double speedup = 0.0;
    std::size_t batch_size = 256;
  };

  explicit ReplaySource(Config config) : config_(config) {}

  /// Feeds `events` (assumed ts-sorted when pacing) to the engine from
  /// `producers` threads, strided round-robin so every producer's slice
  /// stays ts-sorted.  Blocks until every event was offered; returns
  /// the aggregate push outcome.
  PushResult run(StreamEngine& engine, std::vector<StreamEvent> events) const;

 private:
  Config config_;
};

}  // namespace rap::stream
