#include "stream/quarantine.h"

#include "util/status.h"

namespace rap::stream {

QuarantineBuffer::QuarantineBuffer(std::size_t capacity)
    : capacity_(capacity) {
  RAP_CHECK(capacity_ >= 1);
}

void QuarantineBuffer::setCallback(InspectionCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(callback);
}

void QuarantineBuffer::add(StreamEvent event, std::string reason) {
  QuarantinedEvent entry{std::move(event), std::move(reason)};
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (callback_) callback_(entry);
  if (buffer_.size() >= capacity_) {
    buffer_.pop_front();
    overflowed_.fetch_add(1, std::memory_order_relaxed);
  }
  buffer_.push_back(std::move(entry));
}

std::vector<QuarantinedEvent> QuarantineBuffer::take() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QuarantinedEvent> out(std::make_move_iterator(buffer_.begin()),
                                    std::make_move_iterator(buffer_.end()));
  buffer_.clear();
  return out;
}

std::size_t QuarantineBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.size();
}

}  // namespace rap::stream
