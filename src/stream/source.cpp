#include "stream/source.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.h"
#include "util/status.h"

namespace rap::stream {

std::vector<StreamEvent> eventsFromCase(const gen::Case& c,
                                        const CaseEventsConfig& config) {
  RAP_CHECK(config.window_width > 0);
  util::Rng rng(config.shuffle_seed);
  const std::int64_t start = config.epoch * config.window_width;
  std::vector<StreamEvent> events;
  events.reserve(c.table.size());
  for (const auto& row : c.table.rows()) {
    StreamEvent event;
    event.leaf = row.ac;
    event.ts = start + rng.uniformInt(0, config.window_width - 1);
    event.v = row.v;
    event.f = row.f;
    events.push_back(std::move(event));
  }
  rng.shuffle(events);
  return events;
}

std::vector<StreamEvent> eventsFromTimeSeries(const gen::TimeSeriesCase& c,
                                              std::int64_t window_width,
                                              std::int32_t season_length,
                                              std::uint64_t shuffle_seed) {
  RAP_CHECK(window_width > 0);
  RAP_CHECK(season_length > 0);
  util::Rng rng(shuffle_seed);
  std::vector<StreamEvent> events;
  for (const auto& s : c.series) {
    const std::size_t minutes = s.history.size() + 1;  // + failure minute
    events.reserve(events.size() + minutes);
    double running_sum = 0.0;
    for (std::size_t t = 0; t < minutes; ++t) {
      const double v =
          (t < s.history.size()) ? s.history[t] : s.current;
      double f;
      if (t >= static_cast<std::size_t>(season_length)) {
        // Seasonal-naive: the value one season earlier.
        f = (t - season_length < s.history.size())
                ? s.history[t - season_length]
                : s.current;
      } else if (t > 0) {
        // First season: running mean of what we have seen so far.
        f = running_sum / static_cast<double>(t);
      } else {
        f = v;  // no history at all — forecast equals the observation
      }
      running_sum += v;
      StreamEvent event;
      event.leaf = s.leaf;
      event.ts = static_cast<std::int64_t>(t) * window_width +
                 rng.uniformInt(0, window_width - 1);
      event.v = v;
      event.f = f;
      events.push_back(std::move(event));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return a.ts < b.ts;
                   });
  return events;
}

PushResult ReplaySource::run(StreamEngine& engine,
                             std::vector<StreamEvent> events) const {
  const std::size_t producers = std::max<std::size_t>(1, config_.producers);
  const std::size_t batch_size = std::max<std::size_t>(1, config_.batch_size);
  const double speedup = config_.speedup;
  const std::int64_t ts0 = events.empty() ? 0 : events.front().ts;

  std::vector<PushResult> results(producers);
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const auto wall0 = std::chrono::steady_clock::now();
      PushResult local;
      std::vector<StreamEvent> batch;
      batch.reserve(batch_size);
      // Strided partition: producer p replays events p, p+N, p+2N, ...
      // Each slice stays ts-sorted, so pacing against the batch's first
      // timestamp keeps all producers roughly in event-time lockstep.
      for (std::size_t i = p; i < events.size(); i += producers) {
        if (batch.empty() && speedup > 0.0) {
          const double elapsed_event_time =
              static_cast<double>(events[i].ts - ts0);
          const auto due =
              wall0 + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(elapsed_event_time /
                                                        speedup));
          std::this_thread::sleep_until(due);
        }
        batch.push_back(events[i]);
        if (batch.size() >= batch_size) {
          local += engine.ingestBatch(std::move(batch));
          batch.clear();
          batch.reserve(batch_size);
        }
      }
      if (!batch.empty()) local += engine.ingestBatch(std::move(batch));
      results[p] = local;
    });
  }
  for (auto& t : threads) t.join();

  PushResult total;
  for (const auto& r : results) total += r;
  return total;
}

}  // namespace rap::stream
