// Event-time watermark policy.
//
// The tracker follows the maximum event timestamp accepted so far; the
// watermark trails it by the configured allowed lateness.  A window
// [e*W, (e+1)*W) may seal once watermark >= (e+1)*W: at that point every
// event the policy still admits for it has either arrived or will be
// counted late.  Updates are a single relaxed CAS-max, so producers on
// the ingest hot path never serialize here.
#pragma once

#include <atomic>
#include <cstdint>

#include "stream/event.h"

namespace rap::stream {

class WatermarkTracker {
 public:
  /// Sentinel for "no event seen yet" / "nothing sealable".
  static constexpr std::int64_t kNone = INT64_MIN;

  explicit WatermarkTracker(std::int64_t allowed_lateness)
      : lateness_(allowed_lateness) {}

  WatermarkTracker(const WatermarkTracker&) = delete;
  WatermarkTracker& operator=(const WatermarkTracker&) = delete;

  /// Folds one accepted event time into the maximum (monotone).
  void observe(std::int64_t ts) noexcept {
    std::int64_t seen = max_ts_.load(std::memory_order_relaxed);
    while (ts > seen &&
           !max_ts_.compare_exchange_weak(seen, ts, std::memory_order_relaxed)) {
    }
  }

  std::int64_t maxTimestamp() const noexcept {
    return max_ts_.load(std::memory_order_relaxed);
  }

  /// Current watermark, or kNone before the first event.
  std::int64_t watermark() const noexcept {
    const std::int64_t seen = max_ts_.load(std::memory_order_relaxed);
    return seen == kNone ? kNone : seen - lateness_;
  }

  /// Highest epoch whose window may be sealed for width-`width` windows
  /// (kNone when no window is sealable yet).
  std::int64_t sealableEpoch(std::int64_t width) const noexcept {
    const std::int64_t mark = watermark();
    return mark == kNone ? kNone : epochOf(mark, width) - 1;
  }

  std::int64_t allowedLateness() const noexcept { return lateness_; }

 private:
  std::atomic<std::int64_t> max_ts_{kNone};
  const std::int64_t lateness_;
};

}  // namespace rap::stream
