// StreamEngine — the streaming front-end of the paper's Fig. 1 workflow.
//
//   producers ──ingest──> shard queues ──consumers──> window fragments
//                                            │ watermark seals
//                                            v
//                                     WindowAssembler
//                                            │ whole windows, epoch order
//                                            v
//              sealer thread: detect -> aggregate alarm -> trigger
//                                            │ snapshot on trigger
//                                            v
//                         ThreadPool: RapMiner::localize (never blocks
//                                     ingestion or sealing)
//
// Lifecycle: construct -> start() -> ingest()/ingestBatch() from any
// number of threads -> drain() (flush everything buffered, wait for the
// resulting localizations) -> stop() (drain + join; terminal).
//
// Threading contract:
//   * ingest/ingestBatch: any thread, concurrently.
//   * drain/stop: one control thread; quiesce producers first — events
//     racing a drain may be counted late and dropped.
//   * callbacks: the window callback runs on the sealer thread, the
//     localization callback on a pool worker; both must be thread-safe
//     with respect to the caller's own state and must not call back
//     into the engine.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "alarm/monitor.h"
#include "core/rapminer.h"
#include "core/types.h"
#include "dataset/leaf_table.h"
#include "dataset/schema.h"
#include "detect/detector.h"
#include "obs/metrics.h"
#include "stream/config.h"
#include "stream/quarantine.h"
#include "stream/shard.h"
#include "stream/watermark.h"
#include "stream/window.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rap::io {
struct StreamCheckpoint;
}  // namespace rap::io

namespace rap::stream {

class PipelineLagCollector;

/// Point-in-time snapshot of the engine's counters.
struct StreamStats {
  std::uint64_t ingested = 0;
  std::uint64_t rejected = 0;
  /// Rejected events routed to the dead-letter buffer (validation
  /// failures; monotone even after the buffer evicts or is drained).
  std::uint64_t rejected_quarantined = 0;
  std::uint64_t quarantine_overflowed = 0;
  std::uint64_t dropped_oldest = 0;
  std::uint64_t dropped_newest = 0;
  std::uint64_t late_admitted = 0;
  std::uint64_t late_dropped = 0;
  std::uint64_t windows_sealed = 0;
  /// Sealed windows abandoned by a seal-path failure (fault injection or
  /// an exception out of detection): counted, never silently lost.
  std::uint64_t windows_dropped = 0;
  std::uint64_t alarms = 0;
  std::uint64_t localizations = 0;
  /// Localizations that returned a partial (degraded) candidate set.
  std::uint64_t localizations_degraded = 0;
  /// Localize tasks that failed outright (injected fault / exception).
  std::uint64_t localize_failures = 0;
  std::int64_t queue_depth = 0;  ///< events buffered across all shards
  std::int64_t watermark = WatermarkTracker::kNone;
};

class StreamEngine {
 public:
  /// Sealed window as handed to the window callback: verdicts applied,
  /// alarm consulted.  The table reference is valid only for the call.
  struct WindowInfo {
    std::int64_t epoch = 0;
    std::int64_t start_ts = 0;
    std::int64_t end_ts = 0;
    const dataset::LeafTable& table;
    std::uint32_t anomalous_rows = 0;
    bool alarmed = false;
    bool localize_dispatched = false;
  };

  /// One finished localization.
  struct Localization {
    std::int64_t epoch = 0;
    std::int64_t start_ts = 0;
    std::int64_t end_ts = 0;
    std::size_t rows = 0;
    std::uint32_t anomalous_rows = 0;
    bool alarmed = false;
    core::LocalizationResult result;
  };

  using WindowCallback = std::function<void(const WindowInfo&)>;
  using LocalizationCallback = std::function<void(const Localization&)>;

  StreamEngine(dataset::Schema schema, StreamConfig config);
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Builds an engine whose shards, assembler, and watermark resume from
  /// the checkpoint at `path` (see io/checkpoint.h): the restarted
  /// engine picks up at the next unsealed epoch — epochs the checkpoint
  /// recorded as sealed are never sealed again, and buffered fragments
  /// survive the restart.  config.shards / window_width must match the
  /// checkpoint.  The engine is returned un-started.
  static util::Result<std::unique_ptr<StreamEngine>> restore(
      dataset::Schema schema, StreamConfig config, const std::string& path);

  /// Callbacks must be installed before start().
  void setWindowCallback(WindowCallback callback);
  void setLocalizationCallback(LocalizationCallback callback);
  /// Inspection hook for quarantined records; runs on the producer
  /// thread that hit the bad event.  Thread-safe to install any time.
  void setQuarantineCallback(QuarantineBuffer::InspectionCallback callback);

  void start();

  /// Thread-safe producer entry points.  Malformed events (wrong arity,
  /// wildcard slots, out-of-range ids) are counted as rejected, never
  /// aborted on — a daemon must survive a bad producer.
  PushResult ingest(StreamEvent event);
  PushResult ingestBatch(std::vector<StreamEvent> events);

  /// Flushes every buffered event into sealed windows and blocks until
  /// the resulting localizations finish.  The engine keeps running, but
  /// every epoch is sealed afterwards: later events count as late.
  void drain();

  /// drain() + join every thread.  Terminal and idempotent.
  void stop();

  /// Writes a consistent checkpoint to `path` while the engine keeps
  /// running: every shard flushes its queue, seals what the current
  /// watermark allows, and snapshots its state; the sealer finishes all
  /// ready windows first so the checkpoint holds only still-open
  /// fragments.  Quiesce producers for the duration of the call (as with
  /// drain()) — events racing a checkpoint may land on either side of
  /// the cut.  Fails (Status, never a crash) on I/O errors or when the
  /// engine is not running.
  util::Status checkpoint(const std::string& path);

  bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !stopped_.load(std::memory_order_acquire);
  }

  StreamStats stats() const;

  /// Moves out the localizations finished so far, sorted by epoch.
  std::vector<Localization> takeLocalizations();

  /// Moves out the quarantined records buffered so far, oldest first.
  std::vector<QuarantinedEvent> takeQuarantined();

  const dataset::Schema& schema() const noexcept { return schema_; }
  const StreamConfig& config() const noexcept { return config_; }

  // Read-only probes sampled by the PipelineLagCollector and the admin
  // /statusz endpoint; all safe to call concurrently with full ingest
  // load.

  /// Ingest frontier: maximum event timestamp accepted so far
  /// (WatermarkTracker::kNone before the first event).
  std::int64_t maxEventTimestamp() const noexcept {
    return watermark_.maxTimestamp();
  }

  /// Sealed frontier: highest epoch EVERY shard has sealed past
  /// (WatermarkTracker::kNone until all shards have sealed something).
  std::int64_t sealedFrontierEpoch() const { return assembler_.sealedUpTo(); }

  /// Per-shard producer-queue depths, indexed by shard id.
  std::vector<std::size_t> shardQueueDepths() const;

  /// Localizations queued or running on the localization pool.
  std::size_t localizeInFlight() const;

  std::size_t localizeThreads() const noexcept {
    return config_.localize_threads;
  }

  /// steady_clock point of start(); epoch value before the engine starts.
  /// The admin /statusz endpoint derives uptime from it.
  std::chrono::steady_clock::time_point startTime() const noexcept {
    return start_time_;
  }

 private:
  struct EngineMetrics {
    obs::Counter* ingested = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* dropped_oldest = nullptr;
    obs::Counter* dropped_newest = nullptr;
    obs::Counter* windows_sealed = nullptr;
    obs::Counter* windows_dropped = nullptr;
    obs::Counter* alarms = nullptr;
    obs::Counter* localizations = nullptr;
    obs::Counter* localizations_degraded = nullptr;
    obs::Counter* localize_failures = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* watermark = nullptr;
    obs::Histogram* seal_seconds = nullptr;
    obs::Histogram* localize_seconds = nullptr;
    /// Wall time from a window's first fragment contribution to its
    /// localization completing — the whole-pipeline latency signal.
    obs::Histogram* window_e2e_seconds = nullptr;
    ShardMetrics shard;
  };

  /// nullptr when the event is valid, else a static reason string
  /// (arity mismatch, wildcard / out-of-range id, non-finite KPI value).
  const char* invalidReason(const StreamEvent& event) const noexcept;
  void maybeBroadcastSeal();
  void onShardProgress();
  void sealerLoop();
  void processWindow(SealedWindow window);
  bool allShardsAcked(std::uint64_t token) const;
  bool allShardsSnapshotAcked(std::uint64_t token) const;
  util::Result<io::StreamCheckpoint> captureCheckpoint();
  void installCheckpoint(const io::StreamCheckpoint& checkpoint);

  dataset::Schema schema_;
  StreamConfig config_;

  StreamCounters counters_;
  WatermarkTracker watermark_;
  WindowAssembler assembler_;
  QuarantineBuffer quarantine_;
  EngineMetrics metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;

  detect::RelativeDeviationDetector detector_;
  core::RapMiner miner_;
  std::unique_ptr<alarm::AlarmManager> alarm_;  ///< sealer thread only
  /// Dedicated pool for the within-layer search fan-out (sized by
  /// config.miner.parallel.threads), shared by every in-flight
  /// localization.  Deliberately distinct from pool_: localize tasks
  /// block on their layer fan-outs, so running both task kinds on one
  /// pool could deadlock with every worker blocked waiting.  Declared
  /// before pool_ so it is destroyed after the localize tasks that
  /// borrow it.
  std::unique_ptr<util::ThreadPool> search_pool_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Background gauge sampler, owned iff
  /// config.lag_sample_interval_seconds > 0 (see stream/lag_collector.h).
  std::unique_ptr<PipelineLagCollector> lag_collector_;
  std::chrono::steady_clock::time_point start_time_{};

  std::atomic<std::uint64_t> windows_sealed_{0};
  std::atomic<std::uint64_t> windows_dropped_{0};
  std::atomic<std::uint64_t> alarms_{0};
  std::atomic<std::uint64_t> localizations_{0};
  std::atomic<std::uint64_t> localizations_degraded_{0};
  std::atomic<std::uint64_t> localize_failures_{0};
  std::atomic<std::int64_t> last_broadcast_epoch_{WatermarkTracker::kNone};

  std::thread sealer_;
  std::mutex sealer_mutex_;
  std::condition_variable sealer_cv_;
  std::condition_variable drain_cv_;
  bool progress_ = false;            ///< guarded by sealer_mutex_
  bool sealer_should_stop_ = false;  ///< guarded by sealer_mutex_
  std::uint64_t sealer_acked_drain_ = 0;  ///< guarded by sealer_mutex_
  std::atomic<std::uint64_t> drain_token_{0};
  std::uint64_t sealer_acked_snapshot_ = 0;  ///< guarded by sealer_mutex_
  std::atomic<std::uint64_t> snapshot_token_{0};

  std::mutex results_mutex_;
  std::vector<Localization> results_;

  WindowCallback window_cb_;
  LocalizationCallback localize_cb_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace rap::stream
