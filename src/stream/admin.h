// Engine-aware admin endpoints.
//
// The obs layer serves process-wide surfaces (/metrics, /tracez); this
// glue upgrades two of them with live StreamEngine state:
//
//   /healthz  200 "ok" while the engine is running, 503 after stop()
//             — a real readiness probe instead of bare liveness.
//   /statusz  one JSON document an operator can curl mid-incident:
//             build identity, uptime, the full StreamStats snapshot,
//             the config the engine actually runs with, and the
//             pipeline probes (frontiers, queue depths, pool load).
//
// Lives in src/stream (not obs) because obs must not depend on the
// engine.  Install before server.start(); the handlers only touch the
// engine's thread-safe accessors, so they are scrape-safe under load.
#pragma once

#include <string>

#include "obs/admin_server.h"
#include "stream/engine.h"

namespace rap::stream {

/// Installs /healthz and /statusz for `engine` on `server` (replacing
/// the generic /healthz from registerObsEndpoints).  The engine must
/// outlive the server.
void installEngineAdminEndpoints(obs::AdminServer& server,
                                 const StreamEngine& engine);

/// The /statusz document; exposed for tests.  `server` may be null
/// (the admin block is then omitted).
std::string renderStatusz(const StreamEngine& engine,
                          const obs::AdminServer* server);

}  // namespace rap::stream
