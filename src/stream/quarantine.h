// Dead-letter buffer for records that fail validation at ingest.
//
// The engine must neither crash on a poison record nor drop it silently:
// a malformed event (wrong arity, wildcard or out-of-range element id,
// non-finite KPI value) is routed here with a human-readable reason so
// an operator can inspect what a broken producer is sending.  The buffer
// is BOUNDED — a firehose of garbage evicts the oldest quarantined
// records (counted as overflow) instead of growing without limit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "stream/event.h"

namespace rap::stream {

/// One rejected record with the validation failure that sent it here.
struct QuarantinedEvent {
  StreamEvent event;
  std::string reason;
};

class QuarantineBuffer {
 public:
  /// Called synchronously (on the quarantining thread, i.e. a producer)
  /// for every record quarantined, BEFORE it enters the buffer.  Must be
  /// thread-safe; install before concurrent use.
  using InspectionCallback = std::function<void(const QuarantinedEvent&)>;

  explicit QuarantineBuffer(std::size_t capacity);

  QuarantineBuffer(const QuarantineBuffer&) = delete;
  QuarantineBuffer& operator=(const QuarantineBuffer&) = delete;

  void setCallback(InspectionCallback callback);

  /// Thread-safe.  Evicts the oldest resident when full (counted).
  void add(StreamEvent event, std::string reason);

  /// Moves out everything quarantined so far, oldest first.
  std::vector<QuarantinedEvent> take();

  /// Records ever quarantined (monotone, includes later-evicted ones).
  std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  /// Residents evicted because the buffer was full.
  std::uint64_t overflowed() const noexcept {
    return overflowed_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<QuarantinedEvent> buffer_;
  InspectionCallback callback_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> overflowed_{0};
};

}  // namespace rap::stream
