#include "stream/admin.h"

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/build_info.h"
#include "stream/watermark.h"
#include "util/strings.h"

namespace rap::stream {

namespace {

const char* backpressureName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop_oldest";
    case BackpressurePolicy::kDropNewest:
      return "drop_newest";
  }
  return "unknown";
}

const char* triggerName(TriggerPolicy policy) {
  switch (policy) {
    case TriggerPolicy::kOnAlarm:
      return "on_alarm";
    case TriggerPolicy::kAnomalousWindow:
      return "anomalous_window";
    case TriggerPolicy::kEveryWindow:
      return "every_window";
  }
  return "unknown";
}

void appendField(std::string& out, const char* key, std::uint64_t value) {
  out += util::strFormat("\"%s\":%llu", key,
                         static_cast<unsigned long long>(value));
}

/// Event-time fields use the kNone sentinel; render it as JSON null so
/// a dashboard never mistakes INT64_MIN for a timestamp.
void appendMaybe(std::string& out, const char* key, std::int64_t value) {
  if (value == WatermarkTracker::kNone) {
    out += util::strFormat("\"%s\":null", key);
  } else {
    out += util::strFormat("\"%s\":%lld", key,
                           static_cast<long long>(value));
  }
}

}  // namespace

std::string renderStatusz(const StreamEngine& engine,
                          const obs::AdminServer* server) {
  const StreamStats stats = engine.stats();
  const StreamConfig& config = engine.config();

  std::string out = "{";
  out += util::strFormat("\"running\":%s,",
                         engine.running() ? "true" : "false");
  double uptime = 0.0;
  if (engine.startTime() != std::chrono::steady_clock::time_point{}) {
    const std::chrono::duration<double> up =
        std::chrono::steady_clock::now() - engine.startTime();
    uptime = up.count();
  }
  out += util::strFormat("\"uptime_seconds\":%.3f,", uptime);
  out += "\"build\":" + obs::buildInfoJson() + ",";

  out += "\"stats\":{";
  appendField(out, "ingested", stats.ingested);
  out += ",";
  appendField(out, "rejected", stats.rejected);
  out += ",";
  appendField(out, "rejected_quarantined", stats.rejected_quarantined);
  out += ",";
  appendField(out, "quarantine_overflowed", stats.quarantine_overflowed);
  out += ",";
  appendField(out, "dropped_oldest", stats.dropped_oldest);
  out += ",";
  appendField(out, "dropped_newest", stats.dropped_newest);
  out += ",";
  appendField(out, "late_admitted", stats.late_admitted);
  out += ",";
  appendField(out, "late_dropped", stats.late_dropped);
  out += ",";
  appendField(out, "windows_sealed", stats.windows_sealed);
  out += ",";
  appendField(out, "windows_dropped", stats.windows_dropped);
  out += ",";
  appendField(out, "alarms", stats.alarms);
  out += ",";
  appendField(out, "localizations", stats.localizations);
  out += ",";
  appendField(out, "localizations_degraded", stats.localizations_degraded);
  out += ",";
  appendField(out, "localize_failures", stats.localize_failures);
  out += util::strFormat(",\"queue_depth\":%lld,",
                         static_cast<long long>(stats.queue_depth));
  appendMaybe(out, "watermark", stats.watermark);
  out += "},";

  out += "\"pipeline\":{";
  appendMaybe(out, "max_event_ts", engine.maxEventTimestamp());
  out += ",";
  appendMaybe(out, "sealed_frontier_epoch", engine.sealedFrontierEpoch());
  out += ",\"shard_queue_depths\":[";
  const std::vector<std::size_t> depths = engine.shardQueueDepths();
  for (std::size_t i = 0; i < depths.size(); ++i) {
    if (i > 0) out += ",";
    out += util::strFormat("%llu",
                           static_cast<unsigned long long>(depths[i]));
  }
  out += util::strFormat(
      "],\"localize_in_flight\":%llu,\"localize_threads\":%llu},",
      static_cast<unsigned long long>(engine.localizeInFlight()),
      static_cast<unsigned long long>(engine.localizeThreads()));

  out += util::strFormat(
      "\"config\":{\"shards\":%d,\"queue_capacity\":%llu,"
      "\"backpressure\":\"%s\",\"window_width\":%lld,"
      "\"allowed_lateness\":%lld,\"trigger\":\"%s\","
      "\"detect_threshold\":%.9g,\"detect_two_sided\":%s,"
      "\"top_k\":%d,\"localize_threads\":%llu,"
      "\"localize_deadline_seconds\":%.9g,\"quarantine_capacity\":%llu,"
      "\"lag_sample_interval_seconds\":%.9g}",
      config.shards,
      static_cast<unsigned long long>(config.queue_capacity),
      backpressureName(config.backpressure),
      static_cast<long long>(config.window_width),
      static_cast<long long>(config.allowed_lateness),
      triggerName(config.trigger), config.detect_threshold,
      config.detect_two_sided ? "true" : "false", config.top_k,
      static_cast<unsigned long long>(config.localize_threads),
      config.localize_deadline_seconds,
      static_cast<unsigned long long>(config.quarantine_capacity),
      config.lag_sample_interval_seconds);

  if (server != nullptr) {
    out += util::strFormat(
        ",\"admin\":{\"requests_served\":%llu}",
        static_cast<unsigned long long>(server->requestsServed()));
  }
  out += "}";
  return out;
}

void installEngineAdminEndpoints(obs::AdminServer& server,
                                 const StreamEngine& engine) {
  server.handle("/healthz", [&engine](const obs::HttpRequest&) {
    obs::HttpResponse response;
    if (engine.running()) {
      response.body = "ok\n";
    } else {
      response.status = 503;
      response.body = "stream engine stopped\n";
    }
    return response;
  });
  server.handle("/statusz", [&engine, &server](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    response.body = renderStatusz(engine, &server) + "\n";
    return response;
  });
}

}  // namespace rap::stream
