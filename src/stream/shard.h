// One shard of the ingestion engine: a bounded queue plus the consumer
// thread that buckets its hash-partition of the stream into per-epoch
// window fragments and seals them against the watermark.
//
// Producers only ever touch the queue (offer); the consumer thread owns
// every other member, so the shard needs no lock of its own beyond the
// queue's.  Sealing decisions are local: the shard compares the shared
// watermark against its own open epochs, hands sealed fragments to the
// WindowAssembler, and drops events that arrive for epochs it has
// already sealed (counted, never silent).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "stream/config.h"
#include "stream/queue.h"
#include "stream/watermark.h"
#include "stream/window.h"

namespace rap::stream {

/// Ingest-side counters shared by all shards (all relaxed atomics); the
/// engine snapshots them for stats() and mirrors them into rap::obs.
struct StreamCounters {
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<std::uint64_t> rejected{0};  ///< malformed / after shutdown
  std::atomic<std::uint64_t> dropped_oldest{0};
  std::atomic<std::uint64_t> dropped_newest{0};
  std::atomic<std::uint64_t> late_admitted{0};  ///< late but window open
  std::atomic<std::uint64_t> late_dropped{0};   ///< window already sealed
  std::atomic<std::int64_t> queued{0};          ///< current depth, all shards
};

/// Obs handles the consumer thread updates (resolved once by the engine;
/// only touched when obs::metricsEnabled()).
struct ShardMetrics {
  obs::Counter* late_admitted = nullptr;
  obs::Counter* late_dropped = nullptr;
  obs::Gauge* queue_depth = nullptr;
};

/// One shard's durable state: its seal frontier plus the window
/// fragments it has bucketed but not yet contributed.  Captured by the
/// snapshot protocol (checkpoint) and re-injected by restore().
struct ShardState {
  std::int64_t sealed_up_to = WatermarkTracker::kNone;
  std::map<std::int64_t, std::vector<dataset::LeafRow>> open;
};

class Shard {
 public:
  Shard(std::int32_t id, const StreamConfig& config,
        WatermarkTracker& watermark, WindowAssembler& assembler,
        StreamCounters& counters, ShardMetrics metrics,
        std::function<void()> on_progress);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void start();

  /// Seeds consumer-thread state from a checkpoint.  Must run before
  /// start(); events at epochs <= state.sealed_up_to will count late
  /// (exactly-once sealing across a kill/restore cycle).
  void restore(ShardState state);

  /// Snapshot request: the consumer flushes its queue into buckets,
  /// seals everything the current watermark allows, records a copy of
  /// its state (non-destructive — the shard keeps running), and acks
  /// `token`.  Quiesce producers first, as with requestDrain.
  void requestSnapshot(std::uint64_t token);
  std::uint64_t snapshotAck() const {
    return snapshot_acked_.load(std::memory_order_acquire);
  }
  /// The state recorded by the latest acked snapshot.
  ShardState snapshotState() const;

  /// Producer side: offers events to the bounded queue (backpressure
  /// policy applies) and advances the watermark by the accepted events.
  PushResult offer(std::vector<StreamEvent>&& batch);

  /// Flush request: the consumer will move every buffered event into its
  /// window fragments, seal ALL open epochs, and acknowledge `token`.
  /// After a drain the shard treats every future event as late.
  void requestDrain(std::uint64_t token);
  std::uint64_t drainAck() const {
    return drain_acked_.load(std::memory_order_acquire);
  }

  /// Wakes the consumer to re-check the watermark / drain state.
  void nudge() { queue_.nudge(); }

  /// Terminal: closes the queue; the consumer flushes and exits.
  void close() { queue_.close(); }
  void join();

  std::size_t queueDepth() const { return queue_.size(); }

 private:
  void consumerLoop();
  void bucketEvents(std::vector<StreamEvent>& batch);
  /// Contributes every open epoch <= `epoch` and seals up to it.
  void sealUpTo(std::int64_t epoch);

  const std::int32_t id_;
  const StreamConfig& config_;
  WatermarkTracker& watermark_;
  WindowAssembler& assembler_;
  StreamCounters& counters_;
  const ShardMetrics metrics_;
  const std::function<void()> on_progress_;

  BoundedEventQueue queue_;

  // Consumer-thread state.
  std::map<std::int64_t, std::vector<dataset::LeafRow>> open_;
  std::int64_t sealed_up_to_ = WatermarkTracker::kNone;

  std::atomic<std::uint64_t> drain_requested_{0};
  std::atomic<std::uint64_t> drain_acked_{0};

  std::atomic<std::uint64_t> snapshot_requested_{0};
  std::atomic<std::uint64_t> snapshot_acked_{0};
  mutable std::mutex snapshot_mutex_;
  ShardState snapshot_;  ///< guarded by snapshot_mutex_

  std::thread consumer_;
};

}  // namespace rap::stream
