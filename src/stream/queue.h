// Bounded MPSC event queue with explicit backpressure policies — the
// buffer between producer threads and one shard's consumer.
//
// Producers push single events or whole batches (one lock per batch);
// the consumer drains everything queued in one swap-like move, so queue
// cost per event amortizes to a few moves.  Every drop is reported to
// the caller through PushResult so the engine can count it — the queue
// itself never loses data silently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "stream/config.h"
#include "stream/event.h"

namespace rap::stream {

/// Outcome of offering events to a bounded queue.
struct PushResult {
  std::size_t accepted = 0;
  std::size_t dropped_oldest = 0;  ///< residents evicted (kDropOldest)
  std::size_t dropped_newest = 0;  ///< arrivals rejected (kDropNewest / closed)
  /// Maximum event time among accepted events; kNoTimestamp when none.
  /// Dropped events never advance the watermark.
  std::int64_t max_accepted_ts = kNoTimestamp;

  static constexpr std::int64_t kNoTimestamp = INT64_MIN;

  PushResult& operator+=(const PushResult& other) noexcept {
    accepted += other.accepted;
    dropped_oldest += other.dropped_oldest;
    dropped_newest += other.dropped_newest;
    if (other.max_accepted_ts > max_accepted_ts) {
      max_accepted_ts = other.max_accepted_ts;
    }
    return *this;
  }
};

class BoundedEventQueue {
 public:
  BoundedEventQueue(std::size_t capacity, BackpressurePolicy policy);

  BoundedEventQueue(const BoundedEventQueue&) = delete;
  BoundedEventQueue& operator=(const BoundedEventQueue&) = delete;

  /// Offers one event / a whole batch under one lock.  kBlock waits for
  /// room (and accepts everything unless the queue closes mid-wait);
  /// the drop policies never wait.  Events in `batch` are consumed.
  PushResult push(StreamEvent event);
  PushResult pushMany(std::vector<StreamEvent>&& batch);

  /// Consumer side: appends every queued event to `out`.  Blocks until
  /// events arrive, nudge() is called, or the queue closes.  Returns
  /// false only when the queue is closed and nothing was drained (the
  /// terminal state).
  bool drainOrWait(std::vector<StreamEvent>& out);

  /// Non-blocking drain (used for the final flush).
  void drainNow(std::vector<StreamEvent>& out);

  /// Wakes the consumer without delivering events (watermark advanced,
  /// drain requested, shutdown).  Spurious wakeups are expected by the
  /// consumer loop.
  void nudge();

  /// No further pushes are accepted; blocked producers wake and report
  /// their remaining events as dropped_newest.
  void close();

  bool closed() const;
  std::size_t size() const;

 private:
  const std::size_t capacity_;
  const BackpressurePolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;  ///< also signalled by nudge/close
  std::condition_variable not_full_;
  std::deque<StreamEvent> buffer_;
  bool closed_ = false;
  bool nudged_ = false;
};

}  // namespace rap::stream
