#include "stream/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/fault.h"
#include "io/checkpoint.h"
#include "obs/trace.h"
#include "stream/lag_collector.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/timer.h"

namespace rap::stream {

namespace {

/// Canonical row order for assembled windows: the sealed table's content
/// is a pure function of the admitted events, independent of producer
/// interleaving and shard scheduling — localization results are
/// reproducible run to run.
bool rowLess(const dataset::LeafRow& a, const dataset::LeafRow& b) noexcept {
  if (a.ac.slots() != b.ac.slots()) return a.ac.slots() < b.ac.slots();
  if (a.v != b.v) return a.v < b.v;
  return a.f < b.f;
}

/// The engine owns the search fan-out pool (search_pool_) and hands it
/// to localize() per call, so the miner itself must not spin up a
/// second, idle pool for the same thread budget.  The stream-level
/// localization deadline, when set, overrides the miner's own.
core::RapMinerConfig minerConfigForStream(const StreamConfig& config) {
  core::RapMinerConfig miner = config.miner;
  miner.parallel.threads = 1;
  if (config.localize_deadline_seconds > 0.0) {
    miner.search.deadline_seconds = config.localize_deadline_seconds;
  }
  return miner;
}

}  // namespace

StreamEngine::StreamEngine(dataset::Schema schema, StreamConfig config)
    : schema_(std::move(schema)),
      config_(config),
      watermark_(config.allowed_lateness),
      assembler_(config.shards, config.window_width),
      quarantine_(config.quarantine_capacity),
      detector_(config.detect_threshold, config.detect_two_sided),
      miner_(minerConfigForStream(config)) {
  RAP_CHECK(config_.shards >= 1);
  RAP_CHECK(config_.window_width >= 1);
  RAP_CHECK(config_.allowed_lateness >= 0);
  RAP_CHECK(config_.queue_capacity >= 1);
  RAP_CHECK(config_.localize_threads >= 1);
  RAP_CHECK(config_.quarantine_capacity >= 1);
  RAP_CHECK(std::isfinite(config_.localize_deadline_seconds) &&
            config_.localize_deadline_seconds >= 0.0);

  auto& reg = obs::defaultRegistry();
  // Empty metric_tenant keeps the unlabeled legacy series; a catalog
  // tenant gets its own {tenant="..."} series family.
  const obs::Labels labels =
      config_.metric_tenant.empty()
          ? obs::Labels{}
          : obs::Labels{{"tenant", config_.metric_tenant}};
  metrics_.ingested = &reg.counter("rap_stream_ingested_total", labels);
  metrics_.rejected = &reg.counter("rap_stream_rejected_total", labels);
  metrics_.quarantined = &reg.counter("rap_stream_quarantined_total", labels);
  metrics_.dropped_oldest =
      &reg.counter("rap_stream_dropped_oldest_total", labels);
  metrics_.dropped_newest =
      &reg.counter("rap_stream_dropped_newest_total", labels);
  metrics_.windows_sealed =
      &reg.counter("rap_stream_windows_sealed_total", labels);
  metrics_.windows_dropped =
      &reg.counter("rap_stream_windows_dropped_total", labels);
  metrics_.alarms = &reg.counter("rap_stream_alarms_total", labels);
  metrics_.localizations =
      &reg.counter("rap_stream_localizations_total", labels);
  metrics_.localizations_degraded =
      &reg.counter("rap_stream_localizations_degraded_total", labels);
  metrics_.localize_failures =
      &reg.counter("rap_stream_localize_failures_total", labels);
  metrics_.queue_depth = &reg.gauge("rap_stream_queue_depth", labels);
  metrics_.watermark = &reg.gauge("rap_stream_watermark", labels);
  metrics_.seal_seconds =
      &reg.histogram("rap_stream_window_seal_seconds",
                     obs::exponentialBuckets(1e-5, 4.0, 10), labels);
  metrics_.localize_seconds =
      &reg.histogram("rap_stream_localize_seconds",
                     obs::exponentialBuckets(1e-4, 4.0, 10), labels);
  metrics_.window_e2e_seconds =
      &reg.histogram("rap_stream_window_e2e_seconds",
                     obs::exponentialBuckets(1e-3, 4.0, 10), labels);
  metrics_.shard.late_admitted =
      &reg.counter("rap_stream_late_admitted_total", labels);
  metrics_.shard.late_dropped =
      &reg.counter("rap_stream_late_dropped_total", labels);
  metrics_.shard.queue_depth = metrics_.queue_depth;

  if (config_.trigger == TriggerPolicy::kOnAlarm) {
    alarm_ = std::make_unique<alarm::AlarmManager>(config_.monitor,
                                                   config_.alarm_debounce);
  }

  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (std::int32_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, config_, watermark_, assembler_, counters_, metrics_.shard,
        [this] { onShardProgress(); }));
  }
}

StreamEngine::~StreamEngine() { stop(); }

void StreamEngine::setWindowCallback(WindowCallback callback) {
  RAP_CHECK_MSG(!started_.load(), "install callbacks before start()");
  window_cb_ = std::move(callback);
}

void StreamEngine::setLocalizationCallback(LocalizationCallback callback) {
  RAP_CHECK_MSG(!started_.load(), "install callbacks before start()");
  localize_cb_ = std::move(callback);
}

void StreamEngine::setQuarantineCallback(
    QuarantineBuffer::InspectionCallback callback) {
  quarantine_.setCallback(std::move(callback));
}

void StreamEngine::start() {
  RAP_CHECK_MSG(!started_.load(), "engine started twice");
  RAP_CHECK_MSG(!stopped_.load(), "engine is terminal after stop()");
  const std::int32_t search_threads =
      core::resolveThreads(config_.miner.parallel.threads);
  if (search_threads > 1) {
    search_pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(search_threads - 1));
  }
  pool_ = std::make_unique<util::ThreadPool>(config_.localize_threads);
  for (auto& shard : shards_) shard->start();
  sealer_ = std::thread([this] { sealerLoop(); });
  start_time_ = std::chrono::steady_clock::now();
  started_.store(true, std::memory_order_release);
  if (config_.lag_sample_interval_seconds > 0.0) {
    PipelineLagCollector::Options options;
    options.interval_seconds = config_.lag_sample_interval_seconds;
    lag_collector_ = std::make_unique<PipelineLagCollector>(*this, options);
    lag_collector_->start();
  }
}

const char* StreamEngine::invalidReason(
    const StreamEvent& event) const noexcept {
  if (event.leaf.attributeCount() != schema_.attributeCount()) {
    return "attribute arity does not match schema";
  }
  for (dataset::AttrId a = 0; a < schema_.attributeCount(); ++a) {
    const dataset::ElemId elem = event.leaf.slot(a);
    // Rejects wildcards (kWildcard == -1) and out-of-range ids alike.
    if (elem < 0) return "wildcard or negative element id";
    if (elem >= schema_.cardinality(a)) return "element id out of range";
  }
  if (!std::isfinite(event.v)) return "non-finite actual value";
  if (!std::isfinite(event.f)) return "non-finite forecast value";
  return nullptr;
}

PushResult StreamEngine::ingest(StreamEvent event) {
  std::vector<StreamEvent> one;
  one.push_back(std::move(event));
  return ingestBatch(std::move(one));
}

PushResult StreamEngine::ingestBatch(std::vector<StreamEvent> events) {
  PushResult total;
  if (events.empty()) return total;
  std::uint64_t rejected = 0;
  std::uint64_t quarantined = 0;
  if (!running()) {
    rejected = events.size();
  } else if (const fault::Action injected = RAP_FAULT_HIT("stream.ingest");
             injected == fault::Action::kDrop ||
             injected == fault::Action::kError) {
    // Injected ingest failure: the whole batch is discarded — counted as
    // dropped_newest, never silently.
    total.dropped_newest = events.size();
  } else {
    std::vector<std::vector<StreamEvent>> parts(shards_.size());
    dataset::AcHash hasher;
    for (auto& event : events) {
      if (const char* reason = invalidReason(event)) {
        rejected += 1;
        quarantined += 1;
        quarantine_.add(std::move(event), reason);
        continue;
      }
      const std::size_t shard = hasher(event.leaf) % shards_.size();
      parts[shard].push_back(std::move(event));
    }
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i].empty()) total += shards_[i]->offer(std::move(parts[i]));
    }
  }

  if (total.accepted > 0) {
    counters_.ingested.fetch_add(total.accepted, std::memory_order_relaxed);
  }
  if (rejected > 0) {
    counters_.rejected.fetch_add(rejected, std::memory_order_relaxed);
  }
  if (total.dropped_oldest > 0) {
    counters_.dropped_oldest.fetch_add(total.dropped_oldest,
                                       std::memory_order_relaxed);
  }
  if (total.dropped_newest > 0) {
    counters_.dropped_newest.fetch_add(total.dropped_newest,
                                       std::memory_order_relaxed);
  }
  if (obs::metricsEnabled()) {
    if (total.accepted > 0) metrics_.ingested->increment(total.accepted);
    if (rejected > 0) metrics_.rejected->increment(rejected);
    if (quarantined > 0) metrics_.quarantined->increment(quarantined);
    if (total.dropped_oldest > 0) {
      metrics_.dropped_oldest->increment(total.dropped_oldest);
    }
    if (total.dropped_newest > 0) {
      metrics_.dropped_newest->increment(total.dropped_newest);
    }
    metrics_.queue_depth->set(static_cast<double>(
        counters_.queued.load(std::memory_order_relaxed)));
  }
  maybeBroadcastSeal();
  return total;
}

void StreamEngine::maybeBroadcastSeal() {
  // Wake every shard when the sealable frontier crosses a new epoch, so
  // shards that happen to be idle still seal (and the assembler's
  // min-over-shards frontier advances).  At most one broadcast per
  // window width of event time.
  const std::int64_t sealable = watermark_.sealableEpoch(config_.window_width);
  if (sealable == WatermarkTracker::kNone) return;
  std::int64_t seen = last_broadcast_epoch_.load(std::memory_order_relaxed);
  if (sealable <= seen) return;
  if (last_broadcast_epoch_.compare_exchange_strong(seen, sealable,
                                                    std::memory_order_relaxed)) {
    for (auto& shard : shards_) shard->nudge();
  }
}

void StreamEngine::onShardProgress() {
  {
    std::lock_guard<std::mutex> lock(sealer_mutex_);
    progress_ = true;
  }
  sealer_cv_.notify_one();
}

bool StreamEngine::allShardsAcked(std::uint64_t token) const {
  for (const auto& shard : shards_) {
    if (shard->drainAck() < token) return false;
  }
  return true;
}

bool StreamEngine::allShardsSnapshotAcked(std::uint64_t token) const {
  for (const auto& shard : shards_) {
    if (shard->snapshotAck() < token) return false;
  }
  return true;
}

void StreamEngine::sealerLoop() {
  std::unique_lock<std::mutex> lock(sealer_mutex_);
  for (;;) {
    sealer_cv_.wait(lock, [this] { return progress_ || sealer_should_stop_; });
    progress_ = false;
    const bool stopping = sealer_should_stop_;
    lock.unlock();

    while (auto window = assembler_.popReady()) {
      const std::int64_t epoch = window->epoch;
      try {
        processWindow(std::move(*window));
      } catch (const std::exception& e) {
        // A seal-path failure must never take down the sealer thread:
        // the window is dropped (counted, logged) and the engine keeps
        // sealing subsequent windows.
        windows_dropped_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metricsEnabled()) metrics_.windows_dropped->increment();
        RAP_LOG_KV(Warn, {"epoch", epoch}, {"error", e.what()})
            << "window dropped: seal failure";
      }
    }

    lock.lock();
    const std::uint64_t token = drain_token_.load(std::memory_order_acquire);
    if (token > sealer_acked_drain_ && allShardsAcked(token) &&
        !assembler_.hasReady()) {
      sealer_acked_drain_ = token;
      drain_cv_.notify_all();
    }
    const std::uint64_t snapshot_token =
        snapshot_token_.load(std::memory_order_acquire);
    if (snapshot_token > sealer_acked_snapshot_ &&
        allShardsSnapshotAcked(snapshot_token) && !assembler_.hasReady()) {
      // Every shard has recorded its cut and no window is left ready:
      // the assembler's pending set is now exactly the partially sealed
      // fragments the checkpoint must carry.
      sealer_acked_snapshot_ = snapshot_token;
      drain_cv_.notify_all();
    }
    if (stopping && !progress_ && !assembler_.hasReady()) return;
  }
}

void StreamEngine::processWindow(SealedWindow window) {
  switch (RAP_FAULT_HIT("stream.seal")) {
    case fault::Action::kError:
    case fault::Action::kDrop:
      windows_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metricsEnabled()) metrics_.windows_dropped->increment();
      RAP_LOG_KV(Warn, {"epoch", window.epoch})
          << "window dropped: injected seal fault";
      return;
    default:
      break;
  }

  util::WallTimer timer;
  RAP_TRACE_SPAN("stream/seal_window",
                 {{"epoch", window.epoch},
                  {"rows", static_cast<std::int64_t>(window.rows.size())}});
  if (obs::tracingEnabled()) {
    // Terminate each contributing shard's seal -> sealer flow inside
    // this span, so Perfetto draws one arrow per fragment converging on
    // the seal slice.  Checkpoint-restored fragments (-1) have no
    // originating span to link from.
    for (const std::int32_t shard : window.contributors) {
      if (shard < 0) continue;
      obs::traceFlow('f', kWindowFlowName, windowFlowId(window.epoch, shard + 1),
                     {{"epoch", window.epoch}, {"shard", shard}});
    }
  }
  std::sort(window.rows.begin(), window.rows.end(), rowLess);

  dataset::LeafTable table(schema_);
  table.reserve(window.rows.size());
  for (auto& row : window.rows) table.addRow(std::move(row));
  window.rows.clear();

  const std::uint32_t flagged = detector_.run(table);
  bool alarmed = false;
  if (alarm_) alarmed = alarm_->observe(table.totalV()).has_value();

  bool localize = false;
  switch (config_.trigger) {
    case TriggerPolicy::kOnAlarm:
      localize = alarmed;
      break;
    case TriggerPolicy::kAnomalousWindow:
      localize = flagged > 0;
      break;
    case TriggerPolicy::kEveryWindow:
      localize = !table.empty();
      break;
  }

  windows_sealed_.fetch_add(1, std::memory_order_relaxed);
  if (alarmed) alarms_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metricsEnabled()) {
    metrics_.windows_sealed->increment();
    if (alarmed) metrics_.alarms->increment();
    metrics_.seal_seconds->observe(timer.elapsedSeconds());
    metrics_.watermark->set(static_cast<double>(watermark_.watermark()));
  }

  if (window_cb_) {
    const WindowInfo info{window.epoch, window.start_ts, window.end_ts,
                          table,        flagged,         alarmed,
                          localize};
    window_cb_(info);
  }
  if (!localize) return;

  // Snapshot ships to the pool; ingestion and sealing never wait on the
  // search.  ThreadPool tasks must not throw — localize inputs were
  // validated at ingest, so the only throw paths left are injected
  // faults (and whatever a chaotic deployment surprises us with), which
  // are contained here as counted failures.
  // Start the sealer -> localize-pool flow while still inside the seal
  // span: the arrow leaves this slice and lands on the pool worker's
  // localize slice, completing the window's cross-thread lane.
  obs::traceFlow('s', kWindowFlowName, windowFlowId(window.epoch, 0),
                 {{"epoch", window.epoch}});
  pool_->submit([this, epoch = window.epoch, start = window.start_ts,
                 end = window.end_ts, flagged, alarmed,
                 first_seen = window.first_seen,
                 table = std::move(table)]() mutable {
    RAP_TRACE_SPAN("stream/localize", {{"epoch", epoch}});
    obs::traceFlow('f', kWindowFlowName, windowFlowId(epoch, 0),
                   {{"epoch", epoch}});
    util::WallTimer localize_timer;
    Localization out;
    out.epoch = epoch;
    out.start_ts = start;
    out.end_ts = end;
    out.rows = table.size();
    out.anomalous_rows = flagged;
    out.alarmed = alarmed;
    try {
      switch (RAP_FAULT_HIT("stream.localize")) {
        case fault::Action::kError:
        case fault::Action::kDrop:
          localize_failures_.fetch_add(1, std::memory_order_relaxed);
          if (obs::metricsEnabled()) metrics_.localize_failures->increment();
          RAP_LOG_KV(Warn, {"epoch", epoch})
              << "localization failed: injected fault";
          return;
        default:
          break;
      }
      // miner_ persists across epochs, so its internal WorkspacePool
      // retains the search kernel + scratch: steady-state epochs reuse
      // capacity instead of reallocating, and concurrent localize_pool_
      // workers each lease their own workspace from it.
      out.result = miner_.localize(table, config_.top_k, search_pool_.get());
    } catch (const std::exception& e) {
      localize_failures_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metricsEnabled()) metrics_.localize_failures->increment();
      RAP_LOG_KV(Warn, {"epoch", epoch}, {"error", e.what()})
          << "localization failed";
      return;
    }
    localizations_.fetch_add(1, std::memory_order_relaxed);
    if (out.result.degraded) {
      localizations_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    if (obs::metricsEnabled()) {
      metrics_.localizations->increment();
      if (out.result.degraded) metrics_.localizations_degraded->increment();
      metrics_.localize_seconds->observe(localize_timer.elapsedSeconds());
      if (first_seen != std::chrono::steady_clock::time_point{}) {
        // Whole-pipeline latency: first fragment contribution (wall
        // clock, stamped by the assembler) to localization done.
        const std::chrono::duration<double> e2e =
            std::chrono::steady_clock::now() - first_seen;
        metrics_.window_e2e_seconds->observe(e2e.count());
      }
    }
    if (localize_cb_) localize_cb_(out);
    std::lock_guard<std::mutex> lock(results_mutex_);
    results_.push_back(std::move(out));
  });
}

util::Result<io::StreamCheckpoint> StreamEngine::captureCheckpoint() {
  if (!running()) {
    return util::Status::failedPrecondition(
        "checkpoint() requires a running engine");
  }
  const std::uint64_t token =
      snapshot_token_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (auto& shard : shards_) shard->requestSnapshot(token);
  {
    std::unique_lock<std::mutex> lock(sealer_mutex_);
    drain_cv_.wait(lock,
                   [this, token] { return sealer_acked_snapshot_ >= token; });
  }
  // In-flight localizations finish before the cut is serialized, so a
  // restore never re-localizes a window this run already owned.
  pool_->wait();

  io::StreamCheckpoint checkpoint;
  checkpoint.shards = config_.shards;
  checkpoint.window_width = config_.window_width;
  checkpoint.max_event_ts = watermark_.maxTimestamp();
  checkpoint.shard_sealed_up_to.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardState state = shards_[i]->snapshotState();
    checkpoint.shard_sealed_up_to[i] = state.sealed_up_to;
    for (auto& [epoch, rows] : state.open) {
      io::StreamCheckpoint::Fragment fragment;
      fragment.shard = static_cast<std::int32_t>(i);
      fragment.epoch = epoch;
      fragment.rows = std::move(rows);
      checkpoint.fragments.push_back(std::move(fragment));
    }
  }
  for (auto& [epoch, rows] : assembler_.snapshotPending()) {
    io::StreamCheckpoint::Fragment fragment;
    fragment.shard = -1;
    fragment.epoch = epoch;
    fragment.rows = std::move(rows);
    checkpoint.fragments.push_back(std::move(fragment));
  }
  return checkpoint;
}

util::Status StreamEngine::checkpoint(const std::string& path) {
  util::WallTimer timer;
  auto captured = captureCheckpoint();
  RAP_RETURN_IF_ERROR(captured.status());
  RAP_RETURN_IF_ERROR(io::saveStreamCheckpoint(captured.value(), path));
  RAP_LOG_KV(Info, {"path", path},
             {"fragments",
              static_cast<std::int64_t>(captured.value().fragments.size())},
             {"seconds", timer.elapsedSeconds()})
      << "stream checkpoint saved";
  return util::Status::ok();
}

void StreamEngine::installCheckpoint(const io::StreamCheckpoint& checkpoint) {
  RAP_CHECK_MSG(!started_.load(), "restore only before start()");
  RAP_CHECK(checkpoint.shard_sealed_up_to.size() == shards_.size());
  if (checkpoint.max_event_ts != io::StreamCheckpoint::kNone) {
    watermark_.observe(checkpoint.max_event_ts);
  }
  std::vector<ShardState> states(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    states[i].sealed_up_to = checkpoint.shard_sealed_up_to[i];
  }
  for (const auto& fragment : checkpoint.fragments) {
    if (fragment.shard < 0) {
      // Already past the shards when checkpointed: contribute straight
      // to the assembler, pending the remaining shards' seals.  The
      // originating shard is gone, so the fragment carries no flow lane.
      assembler_.contribute(-1, fragment.epoch, fragment.rows);
    } else {
      auto& open = states[static_cast<std::size_t>(fragment.shard)]
                       .open[fragment.epoch];
      open.insert(open.end(), fragment.rows.begin(), fragment.rows.end());
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (states[i].sealed_up_to != WatermarkTracker::kNone) {
      assembler_.sealShardUpTo(static_cast<std::int32_t>(i),
                               states[i].sealed_up_to);
    }
    shards_[i]->restore(std::move(states[i]));
  }
}

util::Result<std::unique_ptr<StreamEngine>> StreamEngine::restore(
    dataset::Schema schema, StreamConfig config, const std::string& path) {
  auto loaded = io::loadStreamCheckpoint(path);
  RAP_RETURN_IF_ERROR(loaded.status());
  const io::StreamCheckpoint& checkpoint = loaded.value();
  if (checkpoint.shards != config.shards) {
    return util::Status::invalidArgument(
        util::strFormat("checkpoint has %d shards, config wants %d",
                        checkpoint.shards, config.shards));
  }
  if (checkpoint.window_width != config.window_width) {
    return util::Status::invalidArgument(util::strFormat(
        "checkpoint window_width %lld does not match config %lld",
        static_cast<long long>(checkpoint.window_width),
        static_cast<long long>(config.window_width)));
  }
  auto engine = std::make_unique<StreamEngine>(std::move(schema), config);
  engine->installCheckpoint(checkpoint);
  RAP_LOG_KV(
      Info, {"path", path},
      {"fragments", static_cast<std::int64_t>(checkpoint.fragments.size())},
      {"max_event_ts", checkpoint.max_event_ts})
      << "stream engine restored from checkpoint";
  return engine;
}

void StreamEngine::drain() {
  RAP_CHECK_MSG(started_.load(), "drain() requires a started engine");
  const std::uint64_t token =
      drain_token_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (auto& shard : shards_) shard->requestDrain(token);
  {
    std::unique_lock<std::mutex> lock(sealer_mutex_);
    drain_cv_.wait(lock, [this, token] { return sealer_acked_drain_ >= token; });
  }
  pool_->wait();
  // The hot path only touches these gauges when events move; refresh
  // them here so a scrape right after a drain sees the settled state
  // (depth 0, final watermark) instead of the last in-flight sample.
  if (obs::metricsEnabled()) {
    metrics_.queue_depth->set(static_cast<double>(
        counters_.queued.load(std::memory_order_relaxed)));
    metrics_.watermark->set(static_cast<double>(watermark_.watermark()));
  }
}

void StreamEngine::stop() {
  if (!started_.load() || stopped_.load()) return;
  if (lag_collector_) lag_collector_->stop();
  drain();
  stopped_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->close();
  for (auto& shard : shards_) shard->join();
  {
    std::lock_guard<std::mutex> lock(sealer_mutex_);
    sealer_should_stop_ = true;
    progress_ = true;
  }
  sealer_cv_.notify_all();
  sealer_.join();
  pool_->wait();
  RAP_LOG_KV(Info, {"windows", windows_sealed_.load()},
             {"localizations", localizations_.load()})
      << "stream engine stopped";
}

StreamStats StreamEngine::stats() const {
  StreamStats stats;
  stats.ingested = counters_.ingested.load(std::memory_order_relaxed);
  stats.rejected = counters_.rejected.load(std::memory_order_relaxed);
  stats.rejected_quarantined = quarantine_.total();
  stats.quarantine_overflowed = quarantine_.overflowed();
  stats.dropped_oldest =
      counters_.dropped_oldest.load(std::memory_order_relaxed);
  stats.dropped_newest =
      counters_.dropped_newest.load(std::memory_order_relaxed);
  stats.late_admitted = counters_.late_admitted.load(std::memory_order_relaxed);
  stats.late_dropped = counters_.late_dropped.load(std::memory_order_relaxed);
  stats.windows_sealed = windows_sealed_.load(std::memory_order_relaxed);
  stats.windows_dropped = windows_dropped_.load(std::memory_order_relaxed);
  stats.alarms = alarms_.load(std::memory_order_relaxed);
  stats.localizations = localizations_.load(std::memory_order_relaxed);
  stats.localizations_degraded =
      localizations_degraded_.load(std::memory_order_relaxed);
  stats.localize_failures =
      localize_failures_.load(std::memory_order_relaxed);
  stats.queue_depth = counters_.queued.load(std::memory_order_relaxed);
  stats.watermark = watermark_.watermark();
  return stats;
}

std::vector<std::size_t> StreamEngine::shardQueueDepths() const {
  std::vector<std::size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard : shards_) depths.push_back(shard->queueDepth());
  return depths;
}

std::size_t StreamEngine::localizeInFlight() const {
  // pool_ exists from start() on and outlives stop(); before start()
  // nothing can be in flight.
  return pool_ ? pool_->inFlight() : 0;
}

std::vector<QuarantinedEvent> StreamEngine::takeQuarantined() {
  return quarantine_.take();
}

std::vector<StreamEngine::Localization> StreamEngine::takeLocalizations() {
  std::vector<Localization> out;
  {
    std::lock_guard<std::mutex> lock(results_mutex_);
    out.swap(results_);
  }
  std::sort(out.begin(), out.end(),
            [](const Localization& a, const Localization& b) {
              return a.epoch < b.epoch;
            });
  return out;
}

}  // namespace rap::stream
