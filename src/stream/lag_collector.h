// Background pipeline-lag sampler for a running StreamEngine.
//
// Counters tell you what happened; an operator watching a live daemon
// also needs to know how far behind it is RIGHT NOW.  The collector is
// one thread that periodically samples the engine's read-only state and
// publishes gauges:
//
//   rap_stream_watermark_lag_seconds      watermark minus sealed
//                                         frontier, in event-time units
//                                         (< window width while sealing
//                                         keeps up; grows on a stall)
//   rap_stream_shard_queue_depth{shard=i} per-shard buffered events
//   rap_stream_localize_pool_in_flight    localizations queued + running
//   rap_stream_localize_pool_utilization  in_flight / worker count,
//                                         saturates at 1.0
//
// It also refreshes the engine's own rap_stream_queue_depth and
// rap_stream_watermark gauges, which the hot path only updates when
// events move — a stalled pipeline would otherwise scrape stale depth.
//
// The engine owns a collector when config.lag_sample_interval_seconds
// is > 0 (started/stopped with the engine); tests construct one
// directly and call sampleOnce().  Every sampled accessor is
// thread-safe, so the collector may run alongside full ingest load.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace rap::stream {

class StreamEngine;

class PipelineLagCollector {
 public:
  struct Options {
    double interval_seconds = 0.25;
    /// Registry the gauges land in; nullptr = obs::defaultRegistry().
    obs::MetricsRegistry* registry = nullptr;
  };

  explicit PipelineLagCollector(const StreamEngine& engine);
  PipelineLagCollector(const StreamEngine& engine, Options options);
  ~PipelineLagCollector();

  PipelineLagCollector(const PipelineLagCollector&) = delete;
  PipelineLagCollector& operator=(const PipelineLagCollector&) = delete;

  /// Spawns the sampler thread.  Idempotent-hostile like the engine:
  /// start exactly once.
  void start();

  /// Stops and joins the sampler.  Idempotent; also run by the
  /// destructor.
  void stop();

  /// Takes one sample synchronously (also what the thread does each
  /// tick).  Exposed so tests assert gauge values deterministically.
  void sampleOnce();

  std::uint64_t samplesTaken() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void samplerLoop();

  const StreamEngine& engine_;
  const Options options_;

  obs::Gauge* watermark_lag_;
  obs::Gauge* pool_in_flight_;
  obs::Gauge* pool_utilization_;
  obs::Gauge* queue_depth_;
  obs::Gauge* watermark_;
  std::vector<obs::Gauge*> shard_depth_;  ///< one per shard, label shard=i

  std::atomic<std::uint64_t> samples_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  ///< guarded by mutex_
  std::thread sampler_;
};

}  // namespace rap::stream
