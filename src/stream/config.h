// Configuration of the streaming ingestion engine (src/stream).
//
// The engine is a sharded, thread-safe front-end to the batch pipeline:
// producers push leaf-level KPI rows, shards buffer them into event-time
// windows, a watermark policy seals windows, and sealed windows flow
// through detection -> alarm -> localization.  Every policy knob a
// deployment would tune lives here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "alarm/monitor.h"
#include "core/rapminer.h"

namespace rap::stream {

/// What a full shard queue does to new arrivals.
enum class BackpressurePolicy {
  kBlock,       ///< producers wait for room (lossless, propagates pressure)
  kDropOldest,  ///< evict the oldest queued event (keep freshest data)
  kDropNewest,  ///< reject the arriving event (keep admitted data)
};

/// When a sealed window is handed to RapMiner::localize.
enum class TriggerPolicy {
  kOnAlarm,          ///< the paper's Fig. 1 workflow: aggregate-KPI alarm
  kAnomalousWindow,  ///< any window with >= 1 anomalous leaf
  kEveryWindow,      ///< every non-empty window (benchmarks, backfills)
};

struct StreamConfig {
  /// Number of hash partitions (and consumer threads).
  std::int32_t shards = 4;
  /// Per-shard bounded queue capacity, in events.
  std::size_t queue_capacity = 1 << 16;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// Event-time units per window; windows are [e*width, (e+1)*width).
  std::int64_t window_width = 60;
  /// Watermark slack: a window seals once the maximum event time seen
  /// exceeds its end by this much.  0 = seal as soon as a later window's
  /// event arrives.
  std::int64_t allowed_lateness = 0;

  TriggerPolicy trigger = TriggerPolicy::kOnAlarm;
  /// Aggregate-KPI monitor fed one observation (the window's total
  /// actual value) per sealed window; used only with kOnAlarm.
  alarm::MonitorConfig monitor;
  alarm::AlarmManager::Config alarm_debounce;

  /// Per-leaf detection on sealed windows (RelativeDeviationDetector).
  double detect_threshold = 0.095;
  bool detect_two_sided = false;

  /// miner.parallel.threads > 1 (or 0 on a multi-core host) makes the
  /// engine run the within-layer search fan-out on a dedicated pool
  /// shared by all in-flight localizations — distinct from
  /// localize_threads, which bounds how many windows localize at once.
  core::RapMinerConfig miner;
  /// Patterns kept per localization (RapMiner::localize's k).
  std::int32_t top_k = 5;
  /// Workers of the localization pool; search never blocks ingestion.
  std::size_t localize_threads = 2;

  /// Per-window localization budget, in wall seconds.  > 0 overrides
  /// miner.search.deadline_seconds: a search that exhausts the budget
  /// returns its best candidates so far with result.degraded = true
  /// instead of stalling the pipeline.  0 = no deadline.
  double localize_deadline_seconds = 0.0;

  /// Capacity of the dead-letter buffer holding events that fail
  /// validation at ingest (see stream/quarantine.h).
  std::size_t quarantine_capacity = 1024;

  /// Sampling period of the background PipelineLagCollector publishing
  /// watermark lag, per-shard queue depths, and localize-pool
  /// utilization gauges (see stream/lag_collector.h).  0 disables the
  /// sampler thread entirely — the default, so batch-style embeddings
  /// pay nothing.
  double lag_sample_interval_seconds = 0.0;

  /// Tenant name stamped as a {tenant="..."} label on every
  /// rap_stream_* series this engine (and its lag collector) creates.
  /// Empty — the default — keeps the unlabeled legacy series, so a
  /// single-engine process is unchanged; the multi-tenant catalog sets
  /// it so per-tenant engines never share a series.
  std::string metric_tenant;
};

}  // namespace rap::stream
