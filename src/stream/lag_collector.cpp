#include "stream/lag_collector.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "stream/engine.h"
#include "stream/watermark.h"
#include "util/status.h"

namespace rap::stream {

PipelineLagCollector::PipelineLagCollector(const StreamEngine& engine)
    : PipelineLagCollector(engine, Options{}) {}

PipelineLagCollector::PipelineLagCollector(const StreamEngine& engine,
                                           Options options)
    : engine_(engine), options_(options) {
  RAP_CHECK(options_.interval_seconds > 0.0);
  auto& reg =
      options_.registry ? *options_.registry : obs::defaultRegistry();
  // Mirror the engine's tenant labeling so the collector refreshes the
  // same series family the engine publishes (tenant first, shard after).
  const obs::Labels labels =
      engine.config().metric_tenant.empty()
          ? obs::Labels{}
          : obs::Labels{{"tenant", engine.config().metric_tenant}};
  watermark_lag_ = &reg.gauge("rap_stream_watermark_lag_seconds", labels);
  pool_in_flight_ =
      &reg.gauge("rap_stream_localize_pool_in_flight", labels);
  pool_utilization_ =
      &reg.gauge("rap_stream_localize_pool_utilization", labels);
  queue_depth_ = &reg.gauge("rap_stream_queue_depth", labels);
  watermark_ = &reg.gauge("rap_stream_watermark", labels);
  const std::int32_t shards = engine.config().shards;
  shard_depth_.reserve(static_cast<std::size_t>(shards));
  for (std::int32_t i = 0; i < shards; ++i) {
    obs::Labels shard_labels = labels;
    shard_labels.emplace_back("shard", std::to_string(i));
    shard_depth_.push_back(
        &reg.gauge("rap_stream_shard_queue_depth", shard_labels));
  }
}

PipelineLagCollector::~PipelineLagCollector() { stop(); }

void PipelineLagCollector::start() {
  RAP_CHECK_MSG(!sampler_.joinable(), "lag collector started twice");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  sampler_ = std::thread([this] { samplerLoop(); });
}

void PipelineLagCollector::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void PipelineLagCollector::sampleOnce() {
  const StreamStats stats = engine_.stats();

  // Event-time distance between the watermark (what the policy says is
  // sealable) and the sealed frontier (what actually sealed).  Stays
  // under one window width while sealing keeps up — deliberately
  // excluding the allowed-lateness slack, which is policy, not backlog
  // — and grows without bound when a shard or the sealer stalls.
  double lag = 0.0;
  if (stats.watermark != WatermarkTracker::kNone) {
    const std::int64_t width = engine_.config().window_width;
    const std::int64_t current = epochOf(stats.watermark, width);
    const std::int64_t frontier = engine_.sealedFrontierEpoch();
    if (frontier == WatermarkTracker::kNone) {
      // Nothing sealed yet: measure into the watermark's own window.
      lag = static_cast<double>(stats.watermark - current * width);
    } else if (frontier < current) {
      // frontier + 1 <= current, so the product cannot overflow the way
      // a post-drain frontier (INT64_MAX) would.
      lag = static_cast<double>(stats.watermark - (frontier + 1) * width);
    }  // frontier at/past the watermark's epoch (e.g. after drain): 0.
    lag = std::max(0.0, lag);
  }
  watermark_lag_->set(lag);

  const auto depths = engine_.shardQueueDepths();
  for (std::size_t i = 0; i < depths.size() && i < shard_depth_.size(); ++i) {
    shard_depth_[i]->set(static_cast<double>(depths[i]));
  }
  // The engine-wide gauges mirror stats() exactly (not the per-shard
  // sum, which misses events sitting in consumer batches mid-drain).
  queue_depth_->set(static_cast<double>(stats.queue_depth));
  watermark_->set(static_cast<double>(stats.watermark));

  const std::size_t in_flight = engine_.localizeInFlight();
  const std::size_t workers = std::max<std::size_t>(1, engine_.localizeThreads());
  pool_in_flight_->set(static_cast<double>(in_flight));
  pool_utilization_->set(
      std::min(1.0, static_cast<double>(in_flight) /
                        static_cast<double>(workers)));

  samples_.fetch_add(1, std::memory_order_relaxed);
}

void PipelineLagCollector::samplerLoop() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(options_.interval_seconds));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_requested_) return;
    lock.unlock();
    sampleOnce();
    lock.lock();
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
  }
}

}  // namespace rap::stream
