// StreamEvent — one leaf-level KPI measurement on the wire: the fully
// concrete attribute combination, its event timestamp, the actual value
// and the forecast attached upstream by the collector (a production
// deployment of the paper's pipeline computes forecasts next to the
// collection layer, so localization inputs arrive ready-made).
//
// Timestamps are abstract event-time units (the replay harnesses use
// "seconds"); windows of width W cover [e*W, (e+1)*W) for epoch e.
#pragma once

#include <cstdint>

#include "dataset/attribute_combination.h"

namespace rap::stream {

struct StreamEvent {
  dataset::AttributeCombination leaf;  ///< fully concrete combination
  std::int64_t ts = 0;                 ///< event time
  double v = 0.0;                      ///< actual KPI value
  double f = 0.0;                      ///< forecast KPI value
};

/// Floor division, correct for negative timestamps (epochs must tile the
/// whole time axis, not mirror around zero).
constexpr std::int64_t floorDiv(std::int64_t a, std::int64_t b) noexcept {
  const std::int64_t q = a / b;
  return q * b == a ? q : q - (((a < 0) != (b < 0)) ? 1 : 0);
}

/// Epoch (window index) of an event-time stamp for width-`width` windows.
constexpr std::int64_t epochOf(std::int64_t ts, std::int64_t width) noexcept {
  return floorDiv(ts, width);
}

}  // namespace rap::stream
