// Divergence measures.  Adtributor's "surprise" is the Jensen–Shannon
// divergence between the forecast and actual probability of one attribute
// element (NSDI'14 §3.2), evaluated on the 2-point distribution
// {element, rest}.
#pragma once

#include <vector>

namespace rap::stats {

/// KL divergence sum term p*ln(p/q); 0 when p == 0.
double klTerm(double p, double q) noexcept;

/// Jensen–Shannon divergence between discrete distributions p and q
/// (same arity; entries are clamped at 0 and renormalized).  Symmetric,
/// bounded by ln 2.
double jsDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) noexcept;

/// Adtributor's per-element surprise: JS divergence of the scalar pair
/// (p, 1-p) vs (q, 1-q) reduced to the 0.5*(p ln 2p/(p+q) + q ln 2q/(p+q))
/// form of the paper — the contribution of this single element.
double surprise(double p, double q) noexcept;

}  // namespace rap::stats
