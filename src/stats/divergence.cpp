#include "stats/divergence.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace rap::stats {

double klTerm(double p, double q) noexcept {
  if (p <= 0.0) return 0.0;
  if (q <= 0.0) return p * std::log(p / 1e-300);
  return p * std::log(p / q);
}

double jsDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) noexcept {
  RAP_CHECK(p.size() == q.size());
  // Clamp and renormalize defensively.
  auto normalized = [](const std::vector<double>& in) {
    std::vector<double> out(in.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = std::max(0.0, in[i]);
      sum += out[i];
    }
    if (sum > 0.0) {
      for (double& x : out) x /= sum;
    }
    return out;
  };
  const std::vector<double> pn = normalized(p);
  const std::vector<double> qn = normalized(q);
  double d = 0.0;
  for (std::size_t i = 0; i < pn.size(); ++i) {
    const double m = 0.5 * (pn[i] + qn[i]);
    d += 0.5 * klTerm(pn[i], m) + 0.5 * klTerm(qn[i], m);
  }
  return d;
}

double surprise(double p, double q) noexcept {
  const double pp = std::max(0.0, p);
  const double qq = std::max(0.0, q);
  const double m = pp + qq;
  if (m <= 0.0) return 0.0;
  double s = 0.0;
  if (pp > 0.0) s += 0.5 * pp * std::log(2.0 * pp / m);
  if (qq > 0.0) s += 0.5 * qq * std::log(2.0 * qq / m);
  return s;
}

}  // namespace rap::stats
