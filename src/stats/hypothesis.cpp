#include "stats/hypothesis.h"

#include <cmath>

namespace rap::stats {

double normalCdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double twoProportionPValue(std::uint64_t k1, std::uint64_t n1,
                           std::uint64_t k2, std::uint64_t n2) noexcept {
  if (n1 == 0 || n2 == 0) return 1.0;
  const double p1 = static_cast<double>(k1) / static_cast<double>(n1);
  const double p2 = static_cast<double>(k2) / static_cast<double>(n2);
  const double pooled = static_cast<double>(k1 + k2) /
                        static_cast<double>(n1 + n2);
  const double variance =
      pooled * (1.0 - pooled) *
      (1.0 / static_cast<double>(n1) + 1.0 / static_cast<double>(n2));
  if (variance <= 0.0) return (p1 == p2) ? 1.0 : 0.0;
  const double z = (p1 - p2) / std::sqrt(variance);
  return 2.0 * (1.0 - normalCdf(std::fabs(z)));
}

double chiSquare2x2(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                    std::uint64_t d) noexcept {
  const double n = static_cast<double>(a + b + c + d);
  const double r1 = static_cast<double>(a + b);
  const double r2 = static_cast<double>(c + d);
  const double c1 = static_cast<double>(a + c);
  const double c2 = static_cast<double>(b + d);
  if (r1 == 0.0 || r2 == 0.0 || c1 == 0.0 || c2 == 0.0) return 0.0;
  const double det = static_cast<double>(a) * static_cast<double>(d) -
                     static_cast<double>(b) * static_cast<double>(c);
  double num = std::fabs(det) - n / 2.0;  // Yates correction
  if (num < 0.0) num = 0.0;
  return n * num * num / (r1 * r2 * c1 * c2);
}

double chiSquarePValue1Df(double statistic) noexcept {
  if (statistic <= 0.0) return 1.0;
  // Chi-square(1) survival = erfc(sqrt(x/2)).
  return std::erfc(std::sqrt(statistic / 2.0));
}

}  // namespace rap::stats
