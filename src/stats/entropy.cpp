#include "stats/entropy.h"

#include <cmath>

namespace rap::stats {

double binaryEntropy(double p) noexcept {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -(p * std::log(p) + (1.0 - p) * std::log(1.0 - p));
}

double entropyFromCounts(const std::vector<std::uint64_t>& counts) noexcept {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

double datasetInfo(std::uint64_t positives, std::uint64_t total) noexcept {
  if (total == 0) return 0.0;
  return binaryEntropy(static_cast<double>(positives) /
                       static_cast<double>(total));
}

double splitInfo(const std::vector<BranchCounts>& branches) noexcept {
  std::uint64_t total = 0;
  for (const auto& b : branches) total += b.total;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& b : branches) {
    if (b.total == 0) continue;
    const double weight =
        static_cast<double>(b.total) / static_cast<double>(total);
    const double p =
        static_cast<double>(b.positives) / static_cast<double>(b.total);
    h += weight * binaryEntropy(p);
  }
  return h;
}

double classificationPower(
    std::uint64_t positives, std::uint64_t total,
    const std::vector<BranchCounts>& branches) noexcept {
  const double info = datasetInfo(positives, total);
  if (info <= 0.0) return 0.0;
  const double split = splitInfo(branches);
  const double cp = (info - split) / info;
  // Guard tiny negative values from floating-point cancellation.
  return cp < 0.0 ? 0.0 : cp;
}

}  // namespace rap::stats
