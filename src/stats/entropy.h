// Shannon entropy and information gain (paper Eq. 1, following Quinlan's
// decision-tree attribute selection).  All logarithms are natural; the
// Classification Power is a ratio of entropies so the base cancels.
#pragma once

#include <cstdint>
#include <vector>

namespace rap::stats {

/// Entropy of a Bernoulli(p) label: -(p ln p + (1-p) ln(1-p)); 0 at the
/// endpoints by continuity.
double binaryEntropy(double p) noexcept;

/// Entropy of a discrete distribution given raw non-negative counts.
double entropyFromCounts(const std::vector<std::uint64_t>& counts) noexcept;

/// Counts for one branch of an attribute split.
struct BranchCounts {
  std::uint64_t positives = 0;  ///< anomalous leaves in the branch
  std::uint64_t total = 0;      ///< all leaves in the branch
};

/// Info(D): entropy of the anomalous/normal label over the whole dataset
/// (Eq. 1b), given total positives and total size.
double datasetInfo(std::uint64_t positives, std::uint64_t total) noexcept;

/// Info_attr(D): size-weighted entropy after splitting by an attribute
/// (Eq. 1c).
double splitInfo(const std::vector<BranchCounts>& branches) noexcept;

/// Classification Power (Eq. 1a): (Info(D) - Info_attr(D)) / Info(D).
/// Returns 0 when Info(D) == 0 (no anomalies or all anomalous — no label
/// uncertainty left for any attribute to explain).
double classificationPower(std::uint64_t positives, std::uint64_t total,
                           const std::vector<BranchCounts>& branches) noexcept;

}  // namespace rap::stats
