#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace rap::stats {

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) noexcept {
  return std::sqrt(variance(xs));
}

double quantile(std::vector<double> xs, double q) noexcept {
  if (xs.empty()) return 0.0;
  RAP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) noexcept {
  return quantile(std::move(xs), 0.5);
}

void RunningStats::add(double x) noexcept {
  n_ += 1;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace rap::stats
