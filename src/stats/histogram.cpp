#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace rap::stats {

Histogram::Histogram(double lo, double hi, std::int32_t bins)
    : lo_(lo), hi_(hi) {
  RAP_CHECK_MSG(bins >= 1, "need at least one bin");
  RAP_CHECK_MSG(hi > lo, "empty histogram range");
  counts_.assign(static_cast<std::size_t>(bins), 0);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double value) noexcept {
  counts_[static_cast<std::size_t>(binOf(value))] += 1;
  total_ += 1;
}

void Histogram::addAll(const std::vector<double>& values) noexcept {
  for (const double v : values) add(v);
}

std::uint64_t Histogram::count(std::int32_t bin) const {
  RAP_CHECK(bin >= 0 && bin < binCount());
  return counts_[static_cast<std::size_t>(bin)];
}

std::int32_t Histogram::binOf(double value) const noexcept {
  const auto raw = static_cast<std::int64_t>(
      std::floor((value - lo_) / width_));
  const std::int64_t clamped =
      std::clamp<std::int64_t>(raw, 0, binCount() - 1);
  return static_cast<std::int32_t>(clamped);
}

double Histogram::binCenter(std::int32_t bin) const {
  RAP_CHECK(bin >= 0 && bin < binCount());
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::vector<double> Histogram::smoothedCounts(std::int32_t radius) const {
  RAP_CHECK(radius >= 0);
  std::vector<double> out(counts_.size(), 0.0);
  const auto n = static_cast<std::int32_t>(counts_.size());
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int32_t lo = std::max(0, i - radius);
    const std::int32_t hi = std::min(n - 1, i + radius);
    double sum = 0.0;
    for (std::int32_t j = lo; j <= hi; ++j) {
      sum += static_cast<double>(counts_[static_cast<std::size_t>(j)]);
    }
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<DensityCluster> densityClusters(const Histogram& hist,
                                            std::int32_t smooth_radius,
                                            double valley_ratio) {
  const std::vector<double> density = hist.smoothedCounts(smooth_radius);
  const std::int32_t n = hist.binCount();

  // Mark cut points: bins that are empty in the raw histogram, or strict
  // local minima of the smoothed density sufficiently below both
  // neighbouring peaks.
  std::vector<bool> is_cut(static_cast<std::size_t>(n), false);
  for (std::int32_t i = 0; i < n; ++i) {
    if (hist.count(i) == 0) {
      is_cut[static_cast<std::size_t>(i)] = true;
    }
  }
  for (std::int32_t i = 1; i + 1 < n; ++i) {
    const double here = density[static_cast<std::size_t>(i)];
    // Find the peak to the left and to the right.
    double left_peak = 0.0;
    for (std::int32_t j = i - 1; j >= 0; --j) {
      left_peak = std::max(left_peak, density[static_cast<std::size_t>(j)]);
    }
    double right_peak = 0.0;
    for (std::int32_t j = i + 1; j < n; ++j) {
      right_peak = std::max(right_peak, density[static_cast<std::size_t>(j)]);
    }
    const double smaller_peak = std::min(left_peak, right_peak);
    if (smaller_peak > 0.0 && here < valley_ratio * smaller_peak &&
        here <= density[static_cast<std::size_t>(i - 1)] &&
        here <= density[static_cast<std::size_t>(i + 1)]) {
      is_cut[static_cast<std::size_t>(i)] = true;
    }
  }

  // Collect maximal runs of non-cut bins carrying at least one sample.
  std::vector<DensityCluster> clusters;
  std::int32_t run_start = -1;
  for (std::int32_t i = 0; i <= n; ++i) {
    const bool in_run =
        i < n && !is_cut[static_cast<std::size_t>(i)] && hist.count(i) > 0;
    if (in_run && run_start < 0) run_start = i;
    if (!in_run && run_start >= 0) {
      DensityCluster c;
      c.lo = hist.binCenter(run_start) - hist.binWidth() / 2.0;
      c.hi = hist.binCenter(i - 1) + hist.binWidth() / 2.0;
      for (std::int32_t j = run_start; j < i; ++j) c.weight += hist.count(j);
      clusters.push_back(c);
      run_start = -1;
    }
  }
  // Isolated non-empty cut bins (empty bins never carry weight) still hold
  // samples; attach each as its own cluster so no sample is lost.
  for (std::int32_t i = 0; i < n; ++i) {
    if (is_cut[static_cast<std::size_t>(i)] && hist.count(i) > 0) {
      DensityCluster c;
      c.lo = hist.binCenter(i) - hist.binWidth() / 2.0;
      c.hi = hist.binCenter(i) + hist.binWidth() / 2.0;
      c.weight = hist.count(i);
      clusters.push_back(c);
    }
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const DensityCluster& a, const DensityCluster& b) {
              return a.lo < b.lo;
            });
  return clusters;
}

std::vector<std::int32_t> assignToClusters(
    const std::vector<double>& values,
    const std::vector<DensityCluster>& clusters) noexcept {
  std::vector<std::int32_t> out(values.size(), -1);
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      // Tolerance absorbs the rounding of bin-edge arithmetic, so a value
      // sitting exactly on a cluster boundary is never orphaned.
      const double eps =
          1e-9 * std::max(1.0, std::fabs(clusters[c].hi - clusters[c].lo));
      if (values[i] >= clusters[c].lo - eps &&
          values[i] <= clusters[c].hi + eps) {
        out[i] = static_cast<std::int32_t>(c);
        break;
      }
    }
  }
  return out;
}

}  // namespace rap::stats
