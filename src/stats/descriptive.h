// Descriptive statistics helpers shared by the generators (to calibrate
// background traffic), the detectors (n-sigma residuals) and the report
// tables.
#pragma once

#include <vector>

namespace rap::stats {

double mean(const std::vector<double>& xs) noexcept;
/// Unbiased sample variance; 0 for fewer than two samples.
double variance(const std::vector<double>& xs) noexcept;
double stddev(const std::vector<double>& xs) noexcept;
/// Linear-interpolated quantile, q in [0,1]; 0 for an empty vector.
double quantile(std::vector<double> xs, double q) noexcept;
double median(std::vector<double> xs) noexcept;

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace rap::stats
