// Hypothesis tests used by the iDice baseline's change detection: the
// two-proportion z-test checks whether the anomaly proportion under an
// attribute combination deviates significantly from the background, and
// the chi-square statistic backs the isolation-power ranking.
#pragma once

#include <cstdint>

namespace rap::stats {

/// Standard normal CDF.
double normalCdf(double z) noexcept;

/// Two-proportion z-test.  Sample 1: k1 successes of n1; sample 2: k2 of
/// n2.  Returns the two-sided p-value (1.0 when a sample is empty).
double twoProportionPValue(std::uint64_t k1, std::uint64_t n1,
                           std::uint64_t k2, std::uint64_t n2) noexcept;

/// Pearson chi-square statistic of the 2x2 table
///   [ a  b ]
///   [ c  d ]
/// with the 0.5 Yates continuity correction; 0 when a margin is empty.
double chiSquare2x2(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                    std::uint64_t d) noexcept;

/// p-value of a chi-square statistic with 1 degree of freedom.
double chiSquarePValue1Df(double statistic) noexcept;

}  // namespace rap::stats
