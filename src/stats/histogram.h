// 1-D histogram plus the density-based clustering the Squeeze baseline
// uses to group leaves by deviation score (ISSRE'19 §IV-B): build a
// histogram of the scores, smooth it, and cut clusters at density valleys.
#pragma once

#include <cstdint>
#include <vector>

namespace rap::stats {

class Histogram {
 public:
  /// Equal-width bins spanning [lo, hi]; values outside are clamped to the
  /// boundary bins.  bins >= 1.
  Histogram(double lo, double hi, std::int32_t bins);

  void add(double value) noexcept;
  void addAll(const std::vector<double>& values) noexcept;

  std::int32_t binCount() const noexcept {
    return static_cast<std::int32_t>(counts_.size());
  }
  std::uint64_t count(std::int32_t bin) const;
  std::uint64_t totalCount() const noexcept { return total_; }

  std::int32_t binOf(double value) const noexcept;
  double binCenter(std::int32_t bin) const;
  double binWidth() const noexcept { return width_; }

  /// Moving-average smoothed counts (window = 2*radius + 1, edge-truncated).
  std::vector<double> smoothedCounts(std::int32_t radius) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// A density cluster over the histogram's value axis.
struct DensityCluster {
  double lo = 0.0;  ///< inclusive lower value bound
  double hi = 0.0;  ///< inclusive upper value bound
  std::uint64_t weight = 0;  ///< samples inside
};

/// Splits the histogram at valleys of the smoothed density: a boundary is
/// placed at any bin whose smoothed count is a strict local minimum and
/// below `valley_ratio` x the smaller of the two neighbouring peaks.
/// Empty-bin runs always separate clusters.
std::vector<DensityCluster> densityClusters(const Histogram& hist,
                                            std::int32_t smooth_radius,
                                            double valley_ratio);

/// Assign each value to the index of the cluster containing it, or -1 if
/// it falls outside every cluster (cannot happen when clusters came from
/// the same histogram and values are in range).
std::vector<std::int32_t> assignToClusters(
    const std::vector<double>& values,
    const std::vector<DensityCluster>& clusters) noexcept;

}  // namespace rap::stats
