// RapMiner — the public facade of the paper's contribution.
//
//   rap::core::RapMiner miner(config);
//   rap::core::LocalizationResult result = miner.localize(table, k);
//
// The input LeafTable must carry per-leaf anomaly verdicts (run one of
// the rap::detect detectors first, or load a labeled table).  localize()
// performs:
//   1. Algorithm 1 — CP-based redundant attribute deletion (cp.t_cp);
//   2. Algorithm 2 — AC-guided layer-by-layer top-down search
//      (search.t_conf, early stop), serial or parallel per
//      parallel.threads — the two schedules are bit-identical;
//   3. RAPScore ranking (Eq. 3) and truncation to the top k patterns.
//
// Configuration is nested by pipeline stage:
//
//   RapMinerConfig config;
//   config.cp.t_cp = 0.001;             // Algorithm 1
//   config.search.t_conf = 0.9;         // Algorithm 2
//   config.parallel.threads = 8;        // within-layer fan-out
//
// For validated construction (util::Status instead of RAP_CHECK aborts
// on out-of-range thresholds) use RapMiner::Builder.
#pragma once

#include <memory>

#include "core/classification_power.h"
#include "core/search.h"
#include "core/types.h"
#include "dataset/leaf_table.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rap::core {

/// Stage 1 (Algorithm 1) knobs.
struct CpConfig {
  /// Criteria 1 threshold; the paper recommends "a very small value"
  /// (below 0.1) and studies sensitivity across a sweep (Fig. 10(a)).
  /// On the synthetic RAPMD background the noise floor of a
  /// RAP-unrelated attribute's CP sits just under this default (around
  /// 3e-4 for clean labels); bench/fig10a sweeps the full range.
  double t_cp = 0.0005;
  /// Disable stage 1 to reproduce the Table VI ablation.
  bool enable_attribute_deletion = true;
};

struct RapMinerConfig {
  CpConfig cp;              ///< Algorithm 1 (Criteria 1)
  SearchConfig search;      ///< Algorithm 2 (Criteria 2/3, visit order)
  ParallelConfig parallel;  ///< within-layer cuboid fan-out
};

/// Pre-PR3 flat configuration shape, kept for one release so downstream
/// code migrates at its own pace.  Converts to the nested shape; the
/// conversion is deprecated, the fields map 1:1:
///   t_cp, enable_attribute_deletion -> cp.*
///   t_conf, early_stop, cuboid_order -> search.{t_conf, early_stop, order}
struct LegacyRapMinerConfig {
  double t_cp = 0.0005;
  double t_conf = 0.8;
  bool enable_attribute_deletion = true;
  bool early_stop = true;
  CuboidOrder cuboid_order = CuboidOrder::kCpWeighted;

  [[deprecated(
      "flat RapMinerConfig is deprecated; use the nested "
      "RapMinerConfig{cp, search, parallel}")]]
  operator RapMinerConfig() const {  // NOLINT: implicit by design (shim)
    RapMinerConfig config;
    config.cp.t_cp = t_cp;
    config.cp.enable_attribute_deletion = enable_attribute_deletion;
    config.search.t_conf = t_conf;
    config.search.early_stop = early_stop;
    config.search.order = cuboid_order;
    return config;
  }
};

class RapMiner {
 public:
  /// Aborts (RAP_CHECK) on out-of-range thresholds — construction from a
  /// compile-time config is a programming error when invalid.  For
  /// user-supplied configuration use Builder, which validates first.
  explicit RapMiner(RapMinerConfig config = {});

  /// Validating construction for user-supplied (flag/file) thresholds.
  ///
  ///   auto miner = RapMiner::Builder().tConf(t).threads(n).build();
  ///   if (!miner.isOk()) { ... miner.status() ... }
  class Builder {
   public:
    Builder() = default;
    /// Replace the whole config (then refine with the setters below).
    Builder& config(RapMinerConfig config);
    Builder& tCp(double t_cp);
    Builder& tConf(double t_conf);
    Builder& attributeDeletion(bool enable);
    Builder& earlyStop(bool enable);
    Builder& cuboidOrder(CuboidOrder order);
    Builder& threads(std::int32_t threads);
    /// Wall-clock budget for Algorithm 2 (seconds; 0 disables).
    Builder& deadlineSeconds(double seconds);
    /// Cuboid-layer cap for Algorithm 2 (0 = unlimited).
    Builder& maxLayers(std::int32_t layers);

    /// kInvalidArgument when t_cp is outside [0, 1), t_conf outside
    /// (0, 1], the deadline is negative, the layer cap is negative, or
    /// threads is negative.  NaN and infinities are rejected explicitly
    /// for every floating-point threshold — NaN compares false against
    /// both ends of a range check, so it must never reach the miner.
    util::Status validate() const;

    /// validate() then construct; never aborts.
    util::Result<RapMiner> build() const;

   private:
    RapMinerConfig config_;
  };

  const RapMinerConfig& config() const noexcept { return config_; }

  /// Mines the root anomaly patterns of one labeled leaf table and
  /// returns the top `k` by RAPScore (k <= 0 returns all candidates).
  ///
  /// An input with nothing to localize — an empty table, a schema with
  /// no attributes, or no anomalous leaf — returns an empty result
  /// immediately: patterns empty, every counter zero, stats.layers and
  /// stats.classification_power empty and stats.early_stopped false
  /// (the search never started, so it cannot have stopped early).
  LocalizationResult localize(const dataset::LeafTable& table,
                              std::int32_t k) const;

  /// Same, but the within-layer fan-out runs on the caller's pool
  /// (overriding parallel.threads; nullptr falls back to the config).
  /// The pool must not run tasks that block on this search — give the
  /// miner a dedicated search pool, not the pool the caller's own
  /// blocking task runs on (see stream::StreamEngine).
  LocalizationResult localize(const dataset::LeafTable& table, std::int32_t k,
                              util::ThreadPool* pool) const;

  /// Same, aggregating through workspaces checked out of `workspaces`
  /// instead of the miner's own retained pool — callers that rebuild a
  /// miner per request (svc::JobManager) share one WorkspacePool across
  /// those miners so the serving hot path still reuses the kernel
  /// transpose and scratch capacity.  nullptr uses the miner's pool.
  LocalizationResult localize(const dataset::LeafTable& table, std::int32_t k,
                              util::ThreadPool* pool,
                              WorkspacePool* workspaces) const;

  /// The miner's own fan-out pool (nullptr when parallel.threads <= 1),
  /// for callers of the WorkspacePool overload that want the config's
  /// parallelism rather than an external pool.
  util::ThreadPool* searchPool() const noexcept { return pool_.get(); }

 private:
  RapMinerConfig config_;
  /// Owned fan-out workers (parallel.threads - 1 of them; the calling
  /// thread is the last worker).  Shared so RapMiner stays copyable.
  std::shared_ptr<util::ThreadPool> pool_;
  /// Retained search workspaces: repeated localize() calls (and
  /// concurrent ones — each checks out its own workspace) reuse the
  /// transposed columns and aggregation scratch instead of reallocating
  /// per call.  Shared so RapMiner stays copyable.
  std::shared_ptr<WorkspacePool> workspaces_;
};

/// Eq. 3: RAPScore = Confidence / sqrt(Layer).
double rapScore(double confidence, std::int32_t layer) noexcept;

}  // namespace rap::core
