// RapMiner — the public facade of the paper's contribution.
//
//   rap::core::RapMiner miner(config);
//   rap::core::LocalizationResult result = miner.localize(table, k);
//
// The input LeafTable must carry per-leaf anomaly verdicts (run one of
// the rap::detect detectors first, or load a labeled table).  localize()
// performs:
//   1. Algorithm 1 — CP-based redundant attribute deletion (t_cp);
//   2. Algorithm 2 — AC-guided layer-by-layer top-down search (t_conf,
//      early stop);
//   3. RAPScore ranking (Eq. 3) and truncation to the top k patterns.
#pragma once

#include "core/classification_power.h"
#include "core/search.h"
#include "core/types.h"
#include "dataset/leaf_table.h"

namespace rap::core {

struct RapMinerConfig {
  /// Criteria 1 threshold; the paper recommends "a very small value"
  /// (below 0.1) and studies sensitivity across a sweep (Fig. 10(a)).
  /// On the synthetic RAPMD background the noise floor of a
  /// RAP-unrelated attribute's CP sits just under this default (around
  /// 3e-4 for clean labels); bench/fig10a sweeps the full range.
  double t_cp = 0.0005;
  /// Criteria 2 threshold; "relatively large", studied over
  /// [0.55, 0.95] (Fig. 10(b)).
  double t_conf = 0.8;
  /// Disable stage 1 to reproduce the Table VI ablation.
  bool enable_attribute_deletion = true;
  /// Disable the Algorithm 2 early stop (lines 9-11).
  bool early_stop = true;
  /// Cuboid visit order within a layer (ablation knob).
  CuboidOrder cuboid_order = CuboidOrder::kCpWeighted;
};

class RapMiner {
 public:
  explicit RapMiner(RapMinerConfig config = {});

  const RapMinerConfig& config() const noexcept { return config_; }

  /// Mines the root anomaly patterns of one labeled leaf table and
  /// returns the top `k` by RAPScore (k <= 0 returns all candidates).
  LocalizationResult localize(const dataset::LeafTable& table,
                              std::int32_t k) const;

 private:
  RapMinerConfig config_;
};

/// Eq. 3: RAPScore = Confidence / sqrt(Layer).
double rapScore(double confidence, std::int32_t layer) noexcept;

}  // namespace rap::core
