// Stage 2 of RAPMiner: Anomaly-Confidence guided layer-by-layer top-down
// search (paper §IV-D, Algorithm 2).
//
// BFS over the cuboid lattice of the surviving attributes, coarsest layer
// first.  Within each layer, cuboids with higher total classification
// power are visited first (Algorithm 1 returns attributes sorted by CP,
// and the search honors that order), which makes the early stop bite
// sooner.  A combination with Confidence > t_conf (Criteria 2) whose
// ancestors were all normal becomes a candidate RAP; its entire
// descendant sub-DAG is pruned (Criteria 3).  The search early-stops as
// soon as the candidates cover every anomalous leaf.
//
// Support counts come from dataset::GroupByKernel: per-attribute element
// code columns are transposed once per search, and each cuboid is then
// aggregated in a single dense mixed-radix pass instead of per-row
// AttributeCombination probing.
//
// Two schedules produce bit-identical results:
//   * acGuidedSearch        — the serial reference implementation;
//   * acGuidedSearchParallel — evaluates each layer's cuboids
//     concurrently on a util::ThreadPool, then replays Criteria 2/3
//     acceptance, pruning and the early stop in the canonical visit
//     order during a deterministic single-threaded merge.  Acceptance
//     decisions only ever depend on candidates from strictly lower
//     layers (an accepted candidate cannot be an ancestor of a
//     same-layer combination), so evaluating a layer's cuboids out of
//     order is safe; the merge re-imposes the canonical order for
//     acceptance and bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "dataset/leaf_table.h"
#include "util/thread_pool.h"

namespace rap::core {

/// Visit order of cuboids within one layer (ablation knob; the paper's
/// Algorithm 2 uses the CP-sorted attribute order of Algorithm 1).
enum class CuboidOrder {
  kCpWeighted,  ///< cuboids of higher-CP attributes first (the paper)
  kNumeric,     ///< plain ascending mask order (ablation baseline)
};

struct SearchConfig {
  double t_conf = 0.8;      ///< Criteria 2 confidence threshold
  bool early_stop = true;   ///< Algorithm 2 lines 9-11
  CuboidOrder order = CuboidOrder::kCpWeighted;
  /// Cooperative wall-clock budget for Algorithm 2 in seconds (0 = no
  /// deadline).  Checked before every cuboid aggregation; on expiry the
  /// search returns the candidates accepted so far with
  /// stats.degraded_reason = "deadline" instead of finishing the
  /// lattice.  Granularity is one cuboid: a single aggregation is never
  /// interrupted mid-sweep.
  double deadline_seconds = 0.0;
  /// Hard cap on the cuboid layers visited (0 = all).  A search that
  /// still has layers left when the cap is reached returns degraded
  /// with stats.degraded_reason = "layer-cap".
  std::int32_t max_layers = 0;
};

/// Concurrency of the within-layer cuboid fan-out.
struct ParallelConfig {
  /// Total worker count including the calling thread: 1 runs the serial
  /// reference path, 0 resolves to the hardware concurrency, N > 1 adds
  /// N - 1 pool workers next to the caller.
  std::int32_t threads = 1;
};

/// Resolves a ParallelConfig::threads value to an actual concurrency
/// level >= 1 (0 becomes the hardware concurrency).
std::int32_t resolveThreads(std::int32_t threads) noexcept;

/// Runs Algorithm 2 over the cuboids formed by `kept_attributes` (the
/// output of Algorithm 1; its order determines cuboid visit order).
/// Returns all candidate RAPs with confidence and layer filled in; the
/// caller ranks them (Eq. 3) and truncates to k.  `stats` accumulates
/// search-effort counters.  Serial reference schedule.
std::vector<ScoredPattern> acGuidedSearch(
    const dataset::LeafTable& table,
    const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, SearchStats& stats);

/// Same search, same results bit for bit, but each layer's cuboid
/// aggregations fan out across `pool` (the calling thread participates
/// too).  The pool must not be used for tasks that block on this search.
/// When the layer early-stops mid-way, aggregations computed past the
/// stop point are discarded, so stats match the serial schedule exactly.
std::vector<ScoredPattern> acGuidedSearchParallel(
    const dataset::LeafTable& table,
    const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, util::ThreadPool& pool, SearchStats& stats);

}  // namespace rap::core
