// Stage 2 of RAPMiner: Anomaly-Confidence guided layer-by-layer top-down
// search (paper §IV-D, Algorithm 2).
//
// BFS over the cuboid lattice of the surviving attributes, coarsest layer
// first.  Within each layer, cuboids with higher total classification
// power are visited first (Algorithm 1 returns attributes sorted by CP,
// and the search honors that order), which makes the early stop bite
// sooner.  A combination with Confidence > t_conf (Criteria 2) whose
// ancestors were all normal becomes a candidate RAP; its entire
// descendant sub-DAG is pruned (Criteria 3).  The search early-stops as
// soon as the candidates cover every anomalous leaf.
//
// Support counts come from dataset::GroupByKernel: per-attribute element
// code columns are transposed once per search (reusing the capacity of a
// retained SearchWorkspace across searches), and each cuboid is then
// aggregated in a single sparse mixed-radix pass — touched cells only —
// instead of per-row AttributeCombination probing.
//
// Two schedules produce bit-identical results:
//   * acGuidedSearch        — the serial reference implementation;
//   * acGuidedSearchParallel — evaluates each layer's cuboids
//     concurrently on a util::ThreadPool, then replays Criteria 2/3
//     acceptance, pruning and the early stop in the canonical visit
//     order during a deterministic single-threaded merge.  Acceptance
//     decisions only ever depend on candidates from strictly lower
//     layers (an accepted candidate cannot be an ancestor of a
//     same-layer combination), so evaluating a layer's cuboids out of
//     order is safe; the merge re-imposes the canonical order for
//     acceptance and bookkeeping.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/types.h"
#include "dataset/groupby_kernel.h"
#include "dataset/leaf_table.h"
#include "util/thread_pool.h"

namespace rap::core {

/// Visit order of cuboids within one layer (ablation knob; the paper's
/// Algorithm 2 uses the CP-sorted attribute order of Algorithm 1).
enum class CuboidOrder {
  kCpWeighted,  ///< cuboids of higher-CP attributes first (the paper)
  kNumeric,     ///< plain ascending mask order (ablation baseline)
};

struct SearchConfig {
  double t_conf = 0.8;      ///< Criteria 2 confidence threshold
  bool early_stop = true;   ///< Algorithm 2 lines 9-11
  CuboidOrder order = CuboidOrder::kCpWeighted;
  /// Cooperative wall-clock budget for Algorithm 2 in seconds (0 = no
  /// deadline).  Checked before every cuboid aggregation; on expiry the
  /// search returns the candidates accepted so far with
  /// stats.degraded_reason = "deadline" instead of finishing the
  /// lattice.  Granularity is one cuboid: a single aggregation is never
  /// interrupted mid-sweep.
  double deadline_seconds = 0.0;
  /// Hard cap on the cuboid layers visited (0 = all).  A search that
  /// still has layers left when the cap is reached returns degraded
  /// with stats.degraded_reason = "layer-cap".
  std::int32_t max_layers = 0;
};

/// Concurrency of the within-layer cuboid fan-out.
struct ParallelConfig {
  /// Total worker count including the calling thread: 1 runs the serial
  /// reference path, 0 resolves to the hardware concurrency, N > 1 adds
  /// N - 1 pool workers next to the caller.
  std::int32_t threads = 1;
};

/// Resolves a ParallelConfig::threads value to an actual concurrency
/// level >= 1 (0 becomes the hardware concurrency).
std::int32_t resolveThreads(std::int32_t threads) noexcept;

/// Visit order of cuboids within one layer: descending rank-weight of
/// the member attributes, where the highest-CP attribute (first in
/// `kept`) weighs most; ties break on the mask for determinism.
/// Weights are integer bit-sums (2^(n - rank) per member), computed
/// once per cuboid — exposed so tests can pin the order against the
/// O(C·log C·n) floating-point reference it replaced.
std::vector<dataset::CuboidMask> orderedCuboids(
    const std::vector<dataset::AttrId>& kept, std::int32_t layer,
    CuboidOrder order);

/// Reusable memory plane for one Algorithm-2 search: the transposed
/// group-by kernel, one GroupByScratch per fan-out worker (slot 0 is
/// the calling thread) and the per-cuboid output buffers of the layer
/// prefetch.  Every buffer grows to its workload's high-water mark and
/// is then reused, so repeated searches over same-shaped tables perform
/// no steady-state heap allocation in the aggregation hot path.  A
/// workspace serves one search at a time; the members are implementation
/// state — treat them as opaque outside src/core and tests.
struct SearchWorkspace {
  SearchWorkspace() = default;
  SearchWorkspace(const SearchWorkspace&) = delete;
  SearchWorkspace& operator=(const SearchWorkspace&) = delete;

  dataset::GroupByKernel kernel;
  /// Per-worker scratches; sized to the widest fan-out seen so far.
  std::vector<dataset::GroupByScratch> scratch;
  /// Parallel schedule: slot i holds cuboid i's groups for the layer
  /// being merged (grow-only; stale entries past layer_counts[i] keep
  /// their heap buffers alive for reuse).
  std::vector<std::vector<dataset::GroupAggregate>> layer_groups;
  std::vector<std::size_t> layer_counts;
  /// Serial schedule: the single reused group buffer.
  std::vector<dataset::GroupAggregate> serial_groups;
};

/// Thread-safe checkout/return pool of SearchWorkspaces.  RapMiner owns
/// one across localize() calls (and svc::JobManager shares one across
/// per-request miners), so the steady-state serving path reuses the
/// kernel transpose and scratch capacity instead of reallocating them
/// per localization.  Concurrent localizations each check out their own
/// workspace; returned workspaces are retained up to a small cap.
class WorkspacePool {
 public:
  /// RAII checkout: holds a workspace for one search and returns it to
  /// the pool on destruction (workspaces abandoned by an exception are
  /// simply dropped — the pool re-creates on the next acquire).
  class Lease {
   public:
    Lease(WorkspacePool& pool, std::unique_ptr<SearchWorkspace> ws)
        : pool_(&pool), ws_(std::move(ws)) {}
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (ws_ != nullptr) pool_->release(std::move(ws_));
    }
    SearchWorkspace& get() noexcept { return *ws_; }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<SearchWorkspace> ws_;
  };

  Lease lease() { return Lease(*this, acquire()); }

  std::unique_ptr<SearchWorkspace> acquire();
  void release(std::unique_ptr<SearchWorkspace> ws);

  /// Workspaces currently retained (idle), for tests.
  std::size_t retained() const;

 private:
  /// Retention cap: bounds idle memory at (peak concurrency seen) up to
  /// this many workspaces; anything beyond is freed on release.
  static constexpr std::size_t kMaxRetained = 16;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<SearchWorkspace>> free_;
};

/// Runs Algorithm 2 over the cuboids formed by `kept_attributes` (the
/// output of Algorithm 1; its order determines cuboid visit order).
/// Returns all candidate RAPs with confidence and layer filled in; the
/// caller ranks them (Eq. 3) and truncates to k.  `stats` accumulates
/// search-effort counters.  Serial reference schedule.
std::vector<ScoredPattern> acGuidedSearch(
    const dataset::LeafTable& table,
    const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, SearchStats& stats);

/// Same, but aggregating through a caller-retained workspace: the
/// kernel transpose reuses the workspace's column capacity and every
/// per-cuboid buffer is recycled, so repeated searches over same-shaped
/// tables allocate nothing in the hot path.  Results are bit-identical
/// to the workspace-free overload.
std::vector<ScoredPattern> acGuidedSearch(
    const dataset::LeafTable& table,
    const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, SearchWorkspace& workspace,
    SearchStats& stats);

/// Same search, same results bit for bit, but each layer's cuboid
/// aggregations fan out across `pool` (the calling thread participates
/// too).  The pool must not be used for tasks that block on this search.
/// When the layer early-stops mid-way, aggregations computed past the
/// stop point are discarded, so stats match the serial schedule exactly.
std::vector<ScoredPattern> acGuidedSearchParallel(
    const dataset::LeafTable& table,
    const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, util::ThreadPool& pool, SearchStats& stats);

/// Parallel schedule through a caller-retained workspace (per-worker
/// scratches live in the workspace; the kernel is shared read-only by
/// all fan-out workers).
std::vector<ScoredPattern> acGuidedSearchParallel(
    const dataset::LeafTable& table,
    const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, util::ThreadPool& pool,
    SearchWorkspace& workspace, SearchStats& stats);

}  // namespace rap::core
