// Stage 2 of RAPMiner: Anomaly-Confidence guided layer-by-layer top-down
// search (paper §IV-D, Algorithm 2).
//
// BFS over the cuboid lattice of the surviving attributes, coarsest layer
// first.  Within each layer, cuboids with higher total classification
// power are visited first (Algorithm 1 returns attributes sorted by CP,
// and the search honors that order), which makes the early stop bite
// sooner.  A combination with Confidence > t_conf (Criteria 2) whose
// ancestors were all normal becomes a candidate RAP; its entire
// descendant sub-DAG is pruned (Criteria 3).  The search early-stops as
// soon as the candidates cover every anomalous leaf.
#pragma once

#include <vector>

#include "core/types.h"
#include "dataset/leaf_table.h"

namespace rap::core {

/// Visit order of cuboids within one layer (ablation knob; the paper's
/// Algorithm 2 uses the CP-sorted attribute order of Algorithm 1).
enum class CuboidOrder {
  kCpWeighted,  ///< cuboids of higher-CP attributes first (the paper)
  kNumeric,     ///< plain ascending mask order (ablation baseline)
};

struct SearchConfig {
  double t_conf = 0.8;      ///< Criteria 2 confidence threshold
  bool early_stop = true;   ///< Algorithm 2 lines 9-11
  CuboidOrder order = CuboidOrder::kCpWeighted;
};

/// Runs Algorithm 2 over the cuboids formed by `kept_attributes` (the
/// output of Algorithm 1; its order determines cuboid visit order).
/// Returns all candidate RAPs with confidence and layer filled in; the
/// caller ranks them (Eq. 3) and truncates to k.  `stats` accumulates
/// search-effort counters.
std::vector<ScoredPattern> acGuidedSearch(
    const dataset::LeafTable& table,
    const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, SearchStats& stats);

}  // namespace rap::core
