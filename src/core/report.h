// Operator-facing rendering of a localization result: the ranked RAPs,
// the per-attribute classification powers, and the search-effort
// summary.  This is what an on-call engineer reads when the alarm fires
// (paper Fig. 1: "switch the impacted users to the backup system").
#pragma once

#include <string>

#include "core/types.h"
#include "dataset/schema.h"

namespace rap::core {

struct ReportOptions {
  bool include_stats = true;    ///< append the search-effort block
  bool include_powers = true;   ///< append per-attribute CP values
};

/// Multi-line, human-readable report.  Stable format (tests rely on the
/// section headers, tools should not parse it — use the structs).
std::string renderReport(const dataset::Schema& schema,
                         const LocalizationResult& result,
                         const ReportOptions& options = {});

}  // namespace rap::core
