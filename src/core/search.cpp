#include "core/search.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "dataset/cuboid.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace rap::core {

using dataset::AttributeCombination;
using dataset::CuboidMask;
using dataset::GroupAggregate;
using dataset::GroupByKernel;
using dataset::LeafTable;

std::vector<CuboidMask> orderedCuboids(
    const std::vector<dataset::AttrId>& kept, std::int32_t layer,
    CuboidOrder order) {
  CuboidMask allowed = 0;
  for (const auto attr : kept) allowed |= (1u << attr);

  std::vector<CuboidMask> cuboids = dataset::cuboidsAtLayer(allowed, layer);
  if (order == CuboidOrder::kNumeric) return cuboids;

  // Weight = sum over member attributes of 2^(n - rank), so earlier
  // (higher-CP) attributes dominate the ordering.  The weights are
  // computed once per cuboid as integer bit-sums (n <= 32 member
  // attributes keeps every term, and their sum, exact in 64 bits — the
  // same values the former std::pow(2.0, n - rank) comparator produced,
  // evaluated O(C·log C) fewer times).
  const auto n = static_cast<std::int32_t>(kept.size());
  std::vector<std::pair<std::uint64_t, CuboidMask>> keyed;
  keyed.reserve(cuboids.size());
  for (const auto mask : cuboids) {
    std::uint64_t weight = 0;
    for (std::int32_t rank = 0; rank < n; ++rank) {
      if ((mask & (1u << kept[static_cast<std::size_t>(rank)])) != 0) {
        weight += std::uint64_t{1} << (n - rank);
      }
    }
    keyed.emplace_back(weight, mask);
  }
  // (weight desc, mask asc) is a total order, so plain sort is stable
  // enough; the mask tiebreak pins equal-weight cuboids exactly like
  // the former stable_sort did.
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (std::size_t i = 0; i < keyed.size(); ++i) cuboids[i] = keyed[i].second;
  return cuboids;
}

namespace {

/// Aggregates every cuboid of one layer concurrently: `pool` workers and
/// the calling thread pull cuboid indices off a shared cursor (balanced
/// even when cuboid sizes differ wildly) and write disjoint slots of
/// `ws.layer_groups` / `ws.layer_counts` through per-worker scratches.
/// Returns the number of pool helpers actually enlisted (the layer used
/// helpers + 1 threads), and only once every helper task has exited, so
/// the borrowed stack state cannot dangle even if the caller early-stops
/// the layer right after.
std::size_t aggregateLayer(const std::vector<CuboidMask>& cuboids,
                           util::ThreadPool& pool, SearchWorkspace& ws) {
  const std::size_t n = cuboids.size();
  if (ws.layer_groups.size() < n) ws.layer_groups.resize(n);
  if (ws.layer_counts.size() < n) ws.layer_counts.resize(n);
  const std::size_t helpers = std::min(pool.threadCount(), n > 0 ? n - 1 : 0);
  if (ws.scratch.size() < helpers + 1) ws.scratch.resize(helpers + 1);

  std::atomic<std::size_t> cursor{0};
  const auto work = [&cuboids, &cursor, &ws, n](std::size_t worker) {
    dataset::GroupByScratch& scratch = ws.scratch[worker];
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      ws.layer_counts[i] =
          ws.kernel.groupByInto(cuboids[i], scratch, ws.layer_groups[i]);
    }
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t exited = 0;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([&work, &mutex, &cv, &exited, h] {
      work(h + 1);
      // Notify while holding the lock: the waiter owns the cv's storage
      // (caller stack) and may destroy it the moment it observes the
      // final count, so the notify must complete before the count is
      // visible.
      std::lock_guard<std::mutex> lock(mutex);
      ++exited;
      cv.notify_all();
    });
  }
  work(0);
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&exited, helpers] { return exited == helpers; });
  return helpers;
}

/// Shared Algorithm 2 driver.  The two schedules differ only in how a
/// layer's per-cuboid aggregates are produced: the serial path computes
/// them lazily inside the merge loop (so an early stop skips the rest of
/// the layer entirely), the parallel path precomputes the whole layer via
/// aggregateLayer and the merge then consumes the slots in canonical
/// order.  Everything the result depends on — acceptance, pruning,
/// early-stop, counters — happens in the single-threaded merge below, in
/// the exact order of the serial reference, which is what makes the two
/// schedules bit-identical.  All aggregation memory lives in `ws`, so a
/// retained workspace makes the steady-state hot path allocation-free.
std::vector<ScoredPattern> searchImpl(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, util::ThreadPool* pool, SearchWorkspace& ws,
    SearchStats& stats) {
  // Deadline bookkeeping: one timer read per cuboid, and only when a
  // deadline is configured — the default (0 = none) costs one branch.
  const util::WallTimer search_timer;
  const bool has_deadline = config.deadline_seconds > 0.0;
  const auto deadlineExpired = [&]() {
    return has_deadline &&
           search_timer.elapsedSeconds() > config.deadline_seconds;
  };

  ws.kernel.rebind(table);
  if (ws.scratch.empty()) ws.scratch.resize(1);
  std::vector<ScoredPattern> candidates;
  std::vector<AttributeCombination> candidate_acs;  // for pruning

  // Concurrency actually used: 1 until some layer enlists pool helpers;
  // aggregateLayer reports how many it took (a layer with c cuboids
  // never uses more than c threads, so small tenants report honestly).
  stats.search_threads = 1;

  // Early-stop bookkeeping: the anomalous rows not yet covered by any
  // accepted candidate.  Each acceptance filters the remainder, so the
  // coverage test costs O(remaining) instead of O(all anomalous) per
  // accepted candidate.
  std::vector<dataset::RowId> uncovered =
      config.early_stop ? table.anomalousRows()
                        : std::vector<dataset::RowId>{};

  // Accumulates the current layer's effort; flushed into stats.layers
  // when the layer finishes (or the early stop fires inside it).
  LayerSearchStats layer_stats;
  const auto flushLayer = [&stats, &layer_stats]() {
    stats.cuboids_visited += layer_stats.cuboids_visited;
    stats.combinations_evaluated += layer_stats.combinations_evaluated;
    stats.combinations_pruned += layer_stats.combinations_pruned;
    stats.candidates_found += layer_stats.candidates_found;
    stats.layers.push_back(layer_stats);
  };

  const auto max_layer = static_cast<std::int32_t>(kept_attributes.size());
  for (std::int32_t layer = 1; layer <= max_layer; ++layer) {
    // Degraded exits, checked between layers so every accepted candidate
    // below the cut is returned intact: the configured layer cap, the
    // cooperative deadline, and (chaos builds) an injected abort.
    if (config.max_layers > 0 && layer > config.max_layers) {
      stats.degraded_reason = "layer-cap";
      return candidates;
    }
    if (deadlineExpired()) {
      stats.degraded_reason = "deadline";
      return candidates;
    }
    switch (RAP_FAULT_HIT("search.layer")) {
      case fault::Action::kError:
      case fault::Action::kDrop:
        stats.degraded_reason = "fault";
        return candidates;
      default:
        break;
    }

    RAP_TRACE_SPAN("search/layer", {{"layer", layer}});
    const util::WallTimer layer_timer;
    layer_stats = LayerSearchStats{};
    layer_stats.layer = layer;

    const std::vector<CuboidMask> cuboids =
        orderedCuboids(kept_attributes, layer, config.order);

    // Parallel schedule: aggregate the whole layer up front.  Wasted
    // only when the early stop fires mid-layer (the merge then discards
    // the slots past the stop point).
    const bool parallel = pool != nullptr && cuboids.size() > 1;
    if (parallel) {
      const util::WallTimer aggregate_timer;
      const std::size_t helpers = aggregateLayer(cuboids, *pool, ws);
      stats.search_threads =
          std::max(stats.search_threads,
                   static_cast<std::int32_t>(helpers) + 1);
      layer_stats.seconds_aggregate = aggregate_timer.elapsedSeconds();
    }

    for (std::size_t i = 0; i < cuboids.size(); ++i) {
      // Mid-layer deadline: stop before the next aggregation, keep the
      // effort already spent in the stats (the layer entry is partial,
      // like an early-stopped one).
      if (deadlineExpired()) {
        stats.degraded_reason = "deadline";
        layer_stats.seconds = layer_timer.elapsedSeconds();
        flushLayer();
        return candidates;
      }
      layer_stats.cuboids_visited += 1;
      std::size_t group_count = 0;
      const std::vector<GroupAggregate>* groups = nullptr;
      if (parallel) {
        groups = &ws.layer_groups[i];
        group_count = ws.layer_counts[i];
      } else {
        const util::WallTimer aggregate_timer;
        group_count =
            ws.kernel.groupByInto(cuboids[i], ws.scratch[0], ws.serial_groups);
        groups = &ws.serial_groups;
        layer_stats.seconds_aggregate += aggregate_timer.elapsedSeconds();
      }
      for (std::size_t gi = 0; gi < group_count; ++gi) {
        const GroupAggregate& group = (*groups)[gi];
        // Criteria 3: skip the descendants of accepted candidates.  An
        // accepted candidate always sits at a strictly lower layer, so
        // the ancestor test is exact.
        const bool pruned = std::any_of(
            candidate_acs.begin(), candidate_acs.end(),
            [&group](const AttributeCombination& ac) {
              return ac.isAncestorOf(group.ac);
            });
        if (pruned) {
          layer_stats.combinations_pruned += 1;
          continue;
        }

        layer_stats.combinations_evaluated += 1;
        const double confidence = group.confidence();
        if (confidence > config.t_conf) {  // Criteria 2
          ScoredPattern pattern;
          pattern.ac = group.ac;
          pattern.confidence = confidence;
          pattern.layer = layer;
          candidates.push_back(pattern);
          candidate_acs.push_back(group.ac);
          layer_stats.candidates_found += 1;

          // Early stop (Algorithm 2 lines 9-11): the candidate set
          // already explains every anomalous leaf.
          if (config.early_stop) {
            std::erase_if(uncovered, [&](dataset::RowId id) {
              return group.ac.matchesLeaf(table.row(id).ac);
            });
            if (uncovered.empty()) {
              stats.early_stopped = true;
              layer_stats.seconds = layer_timer.elapsedSeconds();
              flushLayer();
              return candidates;
            }
          }
        }
      }
    }
    layer_stats.seconds = layer_timer.elapsedSeconds();
    flushLayer();
  }
  return candidates;
}

}  // namespace

std::int32_t resolveThreads(std::int32_t threads) noexcept {
  if (threads > 0) return threads;
  return std::max(1, static_cast<std::int32_t>(
                         std::thread::hardware_concurrency()));
}

std::unique_ptr<SearchWorkspace> WorkspacePool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      auto ws = std::move(free_.back());
      free_.pop_back();
      return ws;
    }
  }
  return std::make_unique<SearchWorkspace>();
}

void WorkspacePool::release(std::unique_ptr<SearchWorkspace> ws) {
  if (ws == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_.size() < kMaxRetained) free_.push_back(std::move(ws));
}

std::size_t WorkspacePool::retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

std::vector<ScoredPattern> acGuidedSearch(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, SearchStats& stats) {
  SearchWorkspace workspace;
  return searchImpl(table, kept_attributes, config, /*pool=*/nullptr,
                    workspace, stats);
}

std::vector<ScoredPattern> acGuidedSearch(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, SearchWorkspace& workspace,
    SearchStats& stats) {
  return searchImpl(table, kept_attributes, config, /*pool=*/nullptr,
                    workspace, stats);
}

std::vector<ScoredPattern> acGuidedSearchParallel(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, util::ThreadPool& pool, SearchStats& stats) {
  SearchWorkspace workspace;
  return searchImpl(table, kept_attributes, config, &pool, workspace, stats);
}

std::vector<ScoredPattern> acGuidedSearchParallel(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, util::ThreadPool& pool,
    SearchWorkspace& workspace, SearchStats& stats) {
  return searchImpl(table, kept_attributes, config, &pool, workspace, stats);
}

}  // namespace rap::core
