#include "core/search.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "dataset/cuboid.h"
#include "dataset/groupby_kernel.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace rap::core {

using dataset::AttributeCombination;
using dataset::CuboidMask;
using dataset::GroupAggregate;
using dataset::GroupByKernel;
using dataset::LeafTable;

namespace {

/// Visit order of cuboids within one layer: descending rank-weight of the
/// member attributes, where the highest-CP attribute (first in
/// kept_attributes) weighs most.  Ties break on the mask for determinism.
std::vector<CuboidMask> orderedCuboids(
    const std::vector<dataset::AttrId>& kept, std::int32_t layer,
    CuboidOrder order) {
  CuboidMask allowed = 0;
  for (const auto attr : kept) allowed |= (1u << attr);

  std::vector<CuboidMask> cuboids = dataset::cuboidsAtLayer(allowed, layer);
  if (order == CuboidOrder::kNumeric) return cuboids;

  // Weight = sum over member attributes of 2^(n - rank), so earlier
  // (higher-CP) attributes dominate the ordering.
  const auto n = static_cast<std::int32_t>(kept.size());
  auto weight = [&](CuboidMask mask) {
    double w = 0.0;
    for (std::int32_t rank = 0; rank < n; ++rank) {
      if ((mask & (1u << kept[static_cast<std::size_t>(rank)])) != 0) {
        w += std::pow(2.0, n - rank);
      }
    }
    return w;
  };
  std::stable_sort(cuboids.begin(), cuboids.end(),
                   [&](CuboidMask a, CuboidMask b) {
                     const double wa = weight(a);
                     const double wb = weight(b);
                     return wa != wb ? wa > wb : a < b;
                   });
  return cuboids;
}

/// Aggregates every cuboid of one layer concurrently: `pool` workers and
/// the calling thread pull cuboid indices off a shared cursor (balanced
/// even when cuboid sizes differ wildly) and write disjoint slots of
/// `groups`.  Returns only once every helper task has exited, so the
/// borrowed stack state cannot dangle even if the caller early-stops the
/// layer right after.
void aggregateLayer(const GroupByKernel& kernel,
                    const std::vector<CuboidMask>& cuboids,
                    util::ThreadPool& pool,
                    std::vector<std::vector<GroupAggregate>>& groups) {
  const std::size_t n = cuboids.size();
  groups.assign(n, {});
  std::atomic<std::size_t> cursor{0};
  const auto work = [&kernel, &cuboids, &groups, &cursor, n] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      groups[i] = kernel.groupBy(cuboids[i]);
    }
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t exited = 0;
  const std::size_t helpers = std::min(pool.threadCount(), n > 0 ? n - 1 : 0);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([&work, &mutex, &cv, &exited] {
      work();
      // Notify while holding the lock: the waiter owns the cv's storage
      // (caller stack) and may destroy it the moment it observes the
      // final count, so the notify must complete before the count is
      // visible.
      std::lock_guard<std::mutex> lock(mutex);
      ++exited;
      cv.notify_all();
    });
  }
  work();
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&exited, helpers] { return exited == helpers; });
}

/// Shared Algorithm 2 driver.  The two schedules differ only in how a
/// layer's per-cuboid aggregates are produced: the serial path computes
/// them lazily inside the merge loop (so an early stop skips the rest of
/// the layer entirely), the parallel path precomputes the whole layer via
/// aggregateLayer and the merge then consumes the slots in canonical
/// order.  Everything the result depends on — acceptance, pruning,
/// early-stop, counters — happens in the single-threaded merge below, in
/// the exact order of the serial reference, which is what makes the two
/// schedules bit-identical.
std::vector<ScoredPattern> searchImpl(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, util::ThreadPool* pool, SearchStats& stats) {
  // Deadline bookkeeping: one timer read per cuboid, and only when a
  // deadline is configured — the default (0 = none) costs one branch.
  const util::WallTimer search_timer;
  const bool has_deadline = config.deadline_seconds > 0.0;
  const auto deadlineExpired = [&]() {
    return has_deadline &&
           search_timer.elapsedSeconds() > config.deadline_seconds;
  };

  const GroupByKernel kernel(table);
  std::vector<ScoredPattern> candidates;
  std::vector<AttributeCombination> candidate_acs;  // for pruning

  stats.search_threads =
      pool == nullptr ? 1 : static_cast<std::int32_t>(pool->threadCount()) + 1;

  // Early-stop bookkeeping: the anomalous rows not yet covered by any
  // accepted candidate.  Each acceptance filters the remainder, so the
  // coverage test costs O(remaining) instead of O(all anomalous) per
  // accepted candidate.
  std::vector<dataset::RowId> uncovered =
      config.early_stop ? table.anomalousRows()
                        : std::vector<dataset::RowId>{};

  // Accumulates the current layer's effort; flushed into stats.layers
  // when the layer finishes (or the early stop fires inside it).
  LayerSearchStats layer_stats;
  const auto flushLayer = [&stats, &layer_stats]() {
    stats.cuboids_visited += layer_stats.cuboids_visited;
    stats.combinations_evaluated += layer_stats.combinations_evaluated;
    stats.combinations_pruned += layer_stats.combinations_pruned;
    stats.candidates_found += layer_stats.candidates_found;
    stats.layers.push_back(layer_stats);
  };

  const auto max_layer = static_cast<std::int32_t>(kept_attributes.size());
  for (std::int32_t layer = 1; layer <= max_layer; ++layer) {
    // Degraded exits, checked between layers so every accepted candidate
    // below the cut is returned intact: the configured layer cap, the
    // cooperative deadline, and (chaos builds) an injected abort.
    if (config.max_layers > 0 && layer > config.max_layers) {
      stats.degraded_reason = "layer-cap";
      return candidates;
    }
    if (deadlineExpired()) {
      stats.degraded_reason = "deadline";
      return candidates;
    }
    switch (RAP_FAULT_HIT("search.layer")) {
      case fault::Action::kError:
      case fault::Action::kDrop:
        stats.degraded_reason = "fault";
        return candidates;
      default:
        break;
    }

    RAP_TRACE_SPAN("search/layer", {{"layer", layer}});
    const util::WallTimer layer_timer;
    layer_stats = LayerSearchStats{};
    layer_stats.layer = layer;

    const std::vector<CuboidMask> cuboids =
        orderedCuboids(kept_attributes, layer, config.order);

    // Parallel schedule: aggregate the whole layer up front.  Wasted
    // only when the early stop fires mid-layer (the merge then discards
    // the slots past the stop point).
    std::vector<std::vector<GroupAggregate>> prefetched;
    const bool parallel = pool != nullptr && cuboids.size() > 1;
    if (parallel) {
      const util::WallTimer aggregate_timer;
      aggregateLayer(kernel, cuboids, *pool, prefetched);
      layer_stats.seconds_aggregate = aggregate_timer.elapsedSeconds();
    }

    for (std::size_t i = 0; i < cuboids.size(); ++i) {
      // Mid-layer deadline: stop before the next aggregation, keep the
      // effort already spent in the stats (the layer entry is partial,
      // like an early-stopped one).
      if (deadlineExpired()) {
        stats.degraded_reason = "deadline";
        layer_stats.seconds = layer_timer.elapsedSeconds();
        flushLayer();
        return candidates;
      }
      layer_stats.cuboids_visited += 1;
      std::vector<GroupAggregate> groups;
      if (parallel) {
        groups = std::move(prefetched[i]);
      } else {
        const util::WallTimer aggregate_timer;
        groups = kernel.groupBy(cuboids[i]);
        layer_stats.seconds_aggregate += aggregate_timer.elapsedSeconds();
      }
      for (const auto& group : groups) {
        // Criteria 3: skip the descendants of accepted candidates.  An
        // accepted candidate always sits at a strictly lower layer, so
        // the ancestor test is exact.
        const bool pruned = std::any_of(
            candidate_acs.begin(), candidate_acs.end(),
            [&group](const AttributeCombination& ac) {
              return ac.isAncestorOf(group.ac);
            });
        if (pruned) {
          layer_stats.combinations_pruned += 1;
          continue;
        }

        layer_stats.combinations_evaluated += 1;
        const double confidence = group.confidence();
        if (confidence > config.t_conf) {  // Criteria 2
          ScoredPattern pattern;
          pattern.ac = group.ac;
          pattern.confidence = confidence;
          pattern.layer = layer;
          candidates.push_back(pattern);
          candidate_acs.push_back(group.ac);
          layer_stats.candidates_found += 1;

          // Early stop (Algorithm 2 lines 9-11): the candidate set
          // already explains every anomalous leaf.
          if (config.early_stop) {
            std::erase_if(uncovered, [&](dataset::RowId id) {
              return group.ac.matchesLeaf(table.row(id).ac);
            });
            if (uncovered.empty()) {
              stats.early_stopped = true;
              layer_stats.seconds = layer_timer.elapsedSeconds();
              flushLayer();
              return candidates;
            }
          }
        }
      }
    }
    layer_stats.seconds = layer_timer.elapsedSeconds();
    flushLayer();
  }
  return candidates;
}

}  // namespace

std::int32_t resolveThreads(std::int32_t threads) noexcept {
  if (threads > 0) return threads;
  return std::max(1, static_cast<std::int32_t>(
                         std::thread::hardware_concurrency()));
}

std::vector<ScoredPattern> acGuidedSearch(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, SearchStats& stats) {
  return searchImpl(table, kept_attributes, config, /*pool=*/nullptr, stats);
}

std::vector<ScoredPattern> acGuidedSearchParallel(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, util::ThreadPool& pool, SearchStats& stats) {
  return searchImpl(table, kept_attributes, config, &pool, stats);
}

}  // namespace rap::core
