#include "core/search.h"

#include <algorithm>
#include <cmath>

#include "dataset/cuboid.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace rap::core {

using dataset::AttributeCombination;
using dataset::CuboidMask;
using dataset::LeafTable;

namespace {

/// Visit order of cuboids within one layer: descending rank-weight of the
/// member attributes, where the highest-CP attribute (first in
/// kept_attributes) weighs most.  Ties break on the mask for determinism.
std::vector<CuboidMask> orderedCuboids(
    const std::vector<dataset::AttrId>& kept, std::int32_t layer,
    CuboidOrder order) {
  CuboidMask allowed = 0;
  for (const auto attr : kept) allowed |= (1u << attr);

  std::vector<CuboidMask> cuboids = dataset::cuboidsAtLayer(allowed, layer);
  if (order == CuboidOrder::kNumeric) return cuboids;

  // Weight = sum over member attributes of 2^(n - rank), so earlier
  // (higher-CP) attributes dominate the ordering.
  const auto n = static_cast<std::int32_t>(kept.size());
  auto weight = [&](CuboidMask mask) {
    double w = 0.0;
    for (std::int32_t rank = 0; rank < n; ++rank) {
      if ((mask & (1u << kept[static_cast<std::size_t>(rank)])) != 0) {
        w += std::pow(2.0, n - rank);
      }
    }
    return w;
  };
  std::stable_sort(cuboids.begin(), cuboids.end(),
                   [&](CuboidMask a, CuboidMask b) {
                     const double wa = weight(a);
                     const double wb = weight(b);
                     return wa != wb ? wa > wb : a < b;
                   });
  return cuboids;
}

}  // namespace

std::vector<ScoredPattern> acGuidedSearch(
    const LeafTable& table, const std::vector<dataset::AttrId>& kept_attributes,
    const SearchConfig& config, SearchStats& stats) {
  std::vector<ScoredPattern> candidates;
  std::vector<AttributeCombination> candidate_acs;  // for pruning

  // Early-stop bookkeeping: the anomalous rows not yet covered by any
  // accepted candidate.  Each acceptance filters the remainder, so the
  // coverage test costs O(remaining) instead of O(all anomalous) per
  // accepted candidate.
  std::vector<dataset::RowId> uncovered =
      config.early_stop ? table.anomalousRows()
                        : std::vector<dataset::RowId>{};

  // Accumulates the current layer's effort; flushed into stats.layers
  // when the layer finishes (or the early stop fires inside it).
  LayerSearchStats layer_stats;
  const auto flushLayer = [&stats, &layer_stats]() {
    stats.cuboids_visited += layer_stats.cuboids_visited;
    stats.combinations_evaluated += layer_stats.combinations_evaluated;
    stats.combinations_pruned += layer_stats.combinations_pruned;
    stats.candidates_found += layer_stats.candidates_found;
    stats.layers.push_back(layer_stats);
  };

  const auto max_layer = static_cast<std::int32_t>(kept_attributes.size());
  for (std::int32_t layer = 1; layer <= max_layer; ++layer) {
    RAP_TRACE_SPAN("search/layer", {{"layer", layer}});
    const util::WallTimer layer_timer;
    layer_stats = LayerSearchStats{};
    layer_stats.layer = layer;
    for (const CuboidMask mask :
         orderedCuboids(kept_attributes, layer, config.order)) {
      layer_stats.cuboids_visited += 1;
      for (const auto& group : table.groupBy(mask)) {
        // Criteria 3: skip the descendants of accepted candidates.  An
        // accepted candidate always sits at a strictly lower layer, so
        // the ancestor test is exact.
        const bool pruned = std::any_of(
            candidate_acs.begin(), candidate_acs.end(),
            [&group](const AttributeCombination& ac) {
              return ac.isAncestorOf(group.ac);
            });
        if (pruned) {
          layer_stats.combinations_pruned += 1;
          continue;
        }

        layer_stats.combinations_evaluated += 1;
        const double confidence = group.confidence();
        if (confidence > config.t_conf) {  // Criteria 2
          ScoredPattern pattern;
          pattern.ac = group.ac;
          pattern.confidence = confidence;
          pattern.layer = layer;
          candidates.push_back(pattern);
          candidate_acs.push_back(group.ac);
          layer_stats.candidates_found += 1;

          // Early stop (Algorithm 2 lines 9-11): the candidate set
          // already explains every anomalous leaf.
          if (config.early_stop) {
            std::erase_if(uncovered, [&](dataset::RowId id) {
              return group.ac.matchesLeaf(table.row(id).ac);
            });
            if (uncovered.empty()) {
              stats.early_stopped = true;
              layer_stats.seconds = layer_timer.elapsedSeconds();
              flushLayer();
              return candidates;
            }
          }
        }
      }
    }
    layer_stats.seconds = layer_timer.elapsedSeconds();
    flushLayer();
  }
  return candidates;
}

}  // namespace rap::core
