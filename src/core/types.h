// Result types of the RAPMiner pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/attribute_combination.h"

namespace rap::core {

/// One localized root anomaly pattern with its ranking signals.
struct ScoredPattern {
  dataset::AttributeCombination ac;
  double confidence = 0.0;  ///< Confidence(ac => Anomaly), Criteria 2
  std::int32_t layer = 0;   ///< cuboid layer the pattern was found in
  double score = 0.0;       ///< RAPScore = confidence / sqrt(layer), Eq. 3
};

/// Search effort spent inside one cuboid layer of Algorithm 2.
struct LayerSearchStats {
  std::int32_t layer = 0;  ///< cuboid layer (1 = single attributes)
  std::uint64_t cuboids_visited = 0;
  std::uint64_t combinations_evaluated = 0;
  /// Combinations skipped by Criteria 3 (descendant of an accepted RAP).
  std::uint64_t combinations_pruned = 0;
  std::uint64_t candidates_found = 0;
  double seconds = 0.0;  ///< wall time spent in this layer
  /// Wall time spent aggregating the layer's cuboids (the dense group-by
  /// kernel).  Under the parallel schedule this is the fan-out + join
  /// time of the whole layer, so seconds / seconds_aggregate exposes the
  /// per-layer speedup next to the serial baseline.
  double seconds_aggregate = 0.0;
};

/// Search-effort counters — the quantities behind the paper's efficiency
/// claims (Fig. 9, Table IV, Table VI).
struct SearchStats {
  std::vector<double> classification_power;  ///< CP per attribute (Eq. 1)
  std::vector<dataset::AttrId> kept_attributes;  ///< Alg. 1 output order
  std::int32_t attributes_deleted = 0;
  std::uint64_t cuboids_visited = 0;
  std::uint64_t combinations_evaluated = 0;
  std::uint64_t combinations_pruned = 0;
  std::uint64_t candidates_found = 0;
  bool early_stopped = false;
  /// Non-empty when Algorithm 2 returned a PARTIAL candidate set after
  /// hitting a resource bound instead of exhausting the lattice:
  /// "deadline" (SearchConfig.deadline_seconds expired), "layer-cap"
  /// (SearchConfig.max_layers reached with layers left), or "fault"
  /// (an injected search.layer abort — chaos builds only).  The
  /// candidates returned are exactly those accepted before the cut, so
  /// a degraded result is still a valid (if incomplete) localization.
  std::string degraded_reason;
  /// Concurrency the search ACTUALLY used: 1 + the most pool helpers
  /// any layer enlisted (a layer with c cuboids never uses more than c
  /// threads).  1 = every layer ran serially — including trivial
  /// tables, single-cuboid layers and the serial reference schedule —
  /// regardless of how many workers the pool had idle.
  std::int32_t search_threads = 1;
  /// Per-layer breakdown of the totals above, in visit order; the last
  /// entry is partial when the search early-stopped inside it.
  std::vector<LayerSearchStats> layers;
  /// Wall time per localization stage (always measured; the cost is one
  /// steady_clock read per stage).
  double seconds_attribute_deletion = 0.0;  ///< Algorithm 1
  double seconds_search = 0.0;              ///< Algorithm 2
  double seconds_ranking = 0.0;             ///< Eq. 3 sort + truncate
};

struct LocalizationResult {
  std::vector<ScoredPattern> patterns;  ///< sorted by RAPScore descending
  SearchStats stats;
  /// True when the search was cut short (deadline / layer cap / injected
  /// fault) and `patterns` ranks a partial candidate set; the reason is
  /// stats.degraded_reason.
  bool degraded = false;
};

}  // namespace rap::core
