// Result types of the RAPMiner pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/attribute_combination.h"

namespace rap::core {

/// One localized root anomaly pattern with its ranking signals.
struct ScoredPattern {
  dataset::AttributeCombination ac;
  double confidence = 0.0;  ///< Confidence(ac => Anomaly), Criteria 2
  std::int32_t layer = 0;   ///< cuboid layer the pattern was found in
  double score = 0.0;       ///< RAPScore = confidence / sqrt(layer), Eq. 3
};

/// Search-effort counters — the quantities behind the paper's efficiency
/// claims (Fig. 9, Table IV, Table VI).
struct SearchStats {
  std::vector<double> classification_power;  ///< CP per attribute (Eq. 1)
  std::vector<dataset::AttrId> kept_attributes;  ///< Alg. 1 output order
  std::int32_t attributes_deleted = 0;
  std::uint64_t cuboids_visited = 0;
  std::uint64_t combinations_evaluated = 0;
  std::uint64_t candidates_found = 0;
  bool early_stopped = false;
};

struct LocalizationResult {
  std::vector<ScoredPattern> patterns;  ///< sorted by RAPScore descending
  SearchStats stats;
};

}  // namespace rap::core
