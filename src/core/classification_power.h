// Stage 1 of RAPMiner: Classification Power based redundant attribute
// deletion (paper §IV-C, Eq. 1, Algorithm 1).
//
// CP(attr) measures how much splitting the leaf dataset by an attribute
// reduces the entropy of the anomalous/normal labels, normalized by the
// unsplit entropy.  Attributes whose CP does not exceed t_CP cannot be
// part of any RAP (Insight 1 / Criteria 1) and are deleted, shrinking the
// cuboid lattice by at least 50% per deleted attribute (Proof 1).
#pragma once

#include <vector>

#include "core/types.h"
#include "dataset/leaf_table.h"

namespace rap::core {

/// CP of every attribute (Eq. 1) in schema order.  Returns all zeros when
/// the table carries no label uncertainty (no anomalies or all anomalous).
std::vector<double> classificationPowers(const dataset::LeafTable& table);

/// Algorithm 1: the surviving attributes, sorted by CP descending
/// (deterministic tie-break on attribute id).  `t_cp` follows Criteria 1:
/// attributes with CP <= t_cp are deleted.
std::vector<dataset::AttrId> deleteRedundantAttributes(
    const dataset::LeafTable& table, double t_cp,
    std::vector<double>* powers_out = nullptr);

/// The paper's Proof 1 / Table IV quantity: fraction of cuboids removed
/// from the lattice when k of n attributes are deleted.
double decreaseRatio(std::int32_t n, std::int32_t k) noexcept;

}  // namespace rap::core
