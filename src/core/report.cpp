#include "core/report.h"

#include <algorithm>

#include "util/strings.h"
#include "util/table.h"

namespace rap::core {

std::string renderReport(const dataset::Schema& schema,
                         const LocalizationResult& result,
                         const ReportOptions& options) {
  std::string out;

  out += "Root anomaly patterns";
  out += result.patterns.empty() ? ": none found\n" : ":\n";
  util::TextTable table;
  table.setHeader({"rank", "pattern", "confidence", "layer", "RAPScore"});
  std::int32_t rank = 1;
  for (const auto& pattern : result.patterns) {
    table.addRow({std::to_string(rank++), pattern.ac.toString(schema),
                  util::TextTable::num(pattern.confidence, 3),
                  std::to_string(pattern.layer),
                  util::TextTable::num(pattern.score, 3)});
  }
  if (!result.patterns.empty()) out += table.render();

  if (options.include_powers &&
      !result.stats.classification_power.empty()) {
    out += "Classification power (Eq. 1):\n";
    for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
      const double cp =
          result.stats.classification_power[static_cast<std::size_t>(a)];
      const auto& kept = result.stats.kept_attributes;
      const bool deleted =
          std::find(kept.begin(), kept.end(), a) == kept.end();
      out += util::strFormat("  %-12s %.5f%s\n",
                             schema.attribute(a).name().c_str(), cp,
                             deleted ? "  (deleted)" : "");
    }
  }

  if (options.include_stats) {
    out += "Search effort:\n";
    out += util::strFormat(
        "  %llu cuboid(s) visited, %llu combination(s) evaluated, "
        "%llu pruned, %llu candidate(s)%s\n",
        static_cast<unsigned long long>(result.stats.cuboids_visited),
        static_cast<unsigned long long>(result.stats.combinations_evaluated),
        static_cast<unsigned long long>(result.stats.combinations_pruned),
        static_cast<unsigned long long>(result.stats.candidates_found),
        result.stats.early_stopped ? ", early-stopped" : "");
    if (result.degraded) {
      out += util::strFormat(
          "  DEGRADED (%s): partial candidate set, lattice not exhausted\n",
          result.stats.degraded_reason.c_str());
    }
    if (!result.stats.layers.empty()) {
      util::TextTable layers;
      layers.setHeader({"layer", "cuboids", "evaluated", "pruned",
                        "candidates", "time", "aggregate"});
      for (const auto& layer : result.stats.layers) {
        layers.addRow({std::to_string(layer.layer),
                       std::to_string(layer.cuboids_visited),
                       std::to_string(layer.combinations_evaluated),
                       std::to_string(layer.combinations_pruned),
                       std::to_string(layer.candidates_found),
                       util::TextTable::duration(layer.seconds),
                       util::TextTable::duration(layer.seconds_aggregate)});
      }
      out += layers.render();
      if (result.stats.search_threads > 1) {
        out += util::strFormat("  search threads: %d\n",
                               result.stats.search_threads);
      }
    }
    const double stage_total = result.stats.seconds_attribute_deletion +
                               result.stats.seconds_search +
                               result.stats.seconds_ranking;
    if (stage_total > 0.0) {
      out += util::strFormat(
          "  stage time: CP deletion %s, search %s, ranking %s\n",
          util::TextTable::duration(result.stats.seconds_attribute_deletion)
              .c_str(),
          util::TextTable::duration(result.stats.seconds_search).c_str(),
          util::TextTable::duration(result.stats.seconds_ranking).c_str());
    }
  }
  return out;
}

}  // namespace rap::core
