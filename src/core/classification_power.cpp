#include "core/classification_power.h"

#include <algorithm>
#include <cmath>

#include "stats/entropy.h"

namespace rap::core {

using dataset::AttrId;
using dataset::LeafTable;

std::vector<double> classificationPowers(const LeafTable& table) {
  const auto& schema = table.schema();
  const auto n_attrs = schema.attributeCount();

  // One pass: per-attribute per-element branch counts.
  std::vector<std::vector<stats::BranchCounts>> branches(
      static_cast<std::size_t>(n_attrs));
  for (AttrId a = 0; a < n_attrs; ++a) {
    branches[static_cast<std::size_t>(a)].resize(
        static_cast<std::size_t>(schema.cardinality(a)));
  }
  std::uint64_t positives = 0;
  for (const auto& row : table.rows()) {
    positives += row.anomalous ? 1 : 0;
    for (AttrId a = 0; a < n_attrs; ++a) {
      auto& b = branches[static_cast<std::size_t>(a)]
                        [static_cast<std::size_t>(row.ac.slot(a))];
      b.total += 1;
      b.positives += row.anomalous ? 1 : 0;
    }
  }

  std::vector<double> powers(static_cast<std::size_t>(n_attrs), 0.0);
  for (AttrId a = 0; a < n_attrs; ++a) {
    powers[static_cast<std::size_t>(a)] = stats::classificationPower(
        positives, table.size(), branches[static_cast<std::size_t>(a)]);
  }
  return powers;
}

std::vector<AttrId> deleteRedundantAttributes(const LeafTable& table,
                                              double t_cp,
                                              std::vector<double>* powers_out) {
  const std::vector<double> powers = classificationPowers(table);
  if (powers_out != nullptr) *powers_out = powers;

  std::vector<AttrId> kept;
  for (AttrId a = 0; a < table.schema().attributeCount(); ++a) {
    if (powers[static_cast<std::size_t>(a)] > t_cp) kept.push_back(a);
  }
  // Algorithm 1 line 7: sort by CP reversely (descending); stable id
  // tie-break keeps the order deterministic.
  std::sort(kept.begin(), kept.end(), [&powers](AttrId a, AttrId b) {
    const double pa = powers[static_cast<std::size_t>(a)];
    const double pb = powers[static_cast<std::size_t>(b)];
    return pa != pb ? pa > pb : a < b;
  });
  return kept;
}

double decreaseRatio(std::int32_t n, std::int32_t k) noexcept {
  if (n <= 0 || k <= 0) return 0.0;
  if (k >= n) return 1.0;
  const double total = std::pow(2.0, n) - 1.0;
  const double remaining = std::pow(2.0, n - k) - 1.0;
  return (total - remaining) / total;
}

}  // namespace rap::core
