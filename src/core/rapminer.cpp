#include "core/rapminer.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace rap::core {

double rapScore(double confidence, std::int32_t layer) noexcept {
  return layer <= 0 ? 0.0
                    : confidence / std::sqrt(static_cast<double>(layer));
}

RapMiner::RapMiner(RapMinerConfig config) : config_(config) {
  RAP_CHECK_MSG(config_.t_conf > 0.0 && config_.t_conf < 1.0,
                "t_conf must be in (0,1), got " << config_.t_conf);
  RAP_CHECK_MSG(config_.t_cp >= 0.0 && config_.t_cp < 1.0,
                "t_cp must be in [0,1), got " << config_.t_cp);
}

namespace {

/// One registry write per localize() call, fed from the SearchStats the
/// hot loops already maintain — the search itself never touches an
/// atomic, so the disabled-metrics cost stays at one branch here.
void publishLocalizeMetrics(const SearchStats& stats, double total_seconds) {
  obs::MetricsRegistry& registry = obs::defaultRegistry();
  registry.counter("rap_localize_total").increment();
  registry.counter("rap_localize_attributes_deleted_total")
      .increment(static_cast<std::uint64_t>(
          std::max<std::int32_t>(stats.attributes_deleted, 0)));
  registry.counter("rap_search_cuboids_visited_total")
      .increment(stats.cuboids_visited);
  registry.counter("rap_search_combinations_evaluated_total")
      .increment(stats.combinations_evaluated);
  registry.counter("rap_search_combinations_pruned_total")
      .increment(stats.combinations_pruned);
  registry.counter("rap_search_candidates_total")
      .increment(stats.candidates_found);
  if (stats.early_stopped) {
    registry.counter("rap_search_early_stop_total").increment();
  }
  for (const auto& layer : stats.layers) {
    const obs::Labels labels{{"layer", std::to_string(layer.layer)}};
    registry.counter("rap_search_layer_cuboids_visited_total", labels)
        .increment(layer.cuboids_visited);
    registry.counter("rap_search_layer_combinations_evaluated_total", labels)
        .increment(layer.combinations_evaluated);
    registry.counter("rap_search_layer_combinations_pruned_total", labels)
        .increment(layer.combinations_pruned);
  }
  registry
      .histogram("rap_localize_seconds",
                 obs::exponentialBuckets(1e-4, 4.0, 10))
      .observe(total_seconds);
}

}  // namespace

LocalizationResult RapMiner::localize(const dataset::LeafTable& table,
                                      std::int32_t k) const {
  RAP_TRACE_SPAN("localize",
                 {{"rows", static_cast<std::int64_t>(table.size())},
                  {"k", k}});
  const util::WallTimer total_timer;
  LocalizationResult result;

  // Stage 1 — Algorithm 1.  With deletion disabled (Table VI ablation)
  // every attribute survives, still ordered by CP so the cuboid visit
  // order stays comparable.
  util::WallTimer stage_timer;
  std::vector<dataset::AttrId> kept;
  {
    RAP_TRACE_SPAN("localize/cp_deletion");
    if (config_.enable_attribute_deletion) {
      kept = deleteRedundantAttributes(table, config_.t_cp,
                                       &result.stats.classification_power);
    } else {
      kept = deleteRedundantAttributes(table, -1.0,
                                       &result.stats.classification_power);
    }
  }
  result.stats.kept_attributes = kept;
  result.stats.attributes_deleted =
      table.schema().attributeCount() - static_cast<std::int32_t>(kept.size());
  result.stats.seconds_attribute_deletion = stage_timer.elapsedSeconds();

  // Stage 2 — Algorithm 2.
  stage_timer.reset();
  {
    RAP_TRACE_SPAN("localize/search",
                   {{"kept_attributes",
                     static_cast<std::int64_t>(kept.size())}});
    SearchConfig search_config;
    search_config.t_conf = config_.t_conf;
    search_config.early_stop = config_.early_stop;
    search_config.order = config_.cuboid_order;
    result.patterns =
        acGuidedSearch(table, kept, search_config, result.stats);
  }
  result.stats.seconds_search = stage_timer.elapsedSeconds();

  // Stage 3 — RAPScore ranking (Eq. 3) and truncation to top-k.
  stage_timer.reset();
  {
    RAP_TRACE_SPAN("localize/rank");
    for (auto& pattern : result.patterns) {
      pattern.score = rapScore(pattern.confidence, pattern.layer);
    }
    std::stable_sort(result.patterns.begin(), result.patterns.end(),
                     [](const ScoredPattern& a, const ScoredPattern& b) {
                       return a.score > b.score;
                     });
    if (k > 0 && static_cast<std::int32_t>(result.patterns.size()) > k) {
      result.patterns.resize(static_cast<std::size_t>(k));
    }
  }
  result.stats.seconds_ranking = stage_timer.elapsedSeconds();

  if (obs::metricsEnabled()) {
    publishLocalizeMetrics(result.stats, total_timer.elapsedSeconds());
  }
  return result;
}

}  // namespace rap::core
