#include "core/rapminer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace rap::core {

double rapScore(double confidence, std::int32_t layer) noexcept {
  return layer <= 0 ? 0.0
                    : confidence / std::sqrt(static_cast<double>(layer));
}

RapMiner::RapMiner(RapMinerConfig config) : config_(config) {
  RAP_CHECK_MSG(config_.search.t_conf > 0.0 && config_.search.t_conf <= 1.0,
                "t_conf must be in (0,1], got " << config_.search.t_conf);
  RAP_CHECK_MSG(config_.cp.t_cp >= 0.0 && config_.cp.t_cp < 1.0,
                "t_cp must be in [0,1), got " << config_.cp.t_cp);
  RAP_CHECK_MSG(std::isfinite(config_.search.deadline_seconds) &&
                    config_.search.deadline_seconds >= 0.0,
                "deadline_seconds must be finite and >= 0, got "
                    << config_.search.deadline_seconds);
  RAP_CHECK_MSG(config_.search.max_layers >= 0,
                "max_layers must be >= 0, got " << config_.search.max_layers);
  RAP_CHECK_MSG(config_.parallel.threads >= 0,
                "threads must be >= 0, got " << config_.parallel.threads);
  const std::int32_t effective = resolveThreads(config_.parallel.threads);
  if (effective > 1) {
    pool_ = std::make_shared<util::ThreadPool>(
        static_cast<std::size_t>(effective - 1));
  }
  workspaces_ = std::make_shared<WorkspacePool>();
}

RapMiner::Builder& RapMiner::Builder::config(RapMinerConfig config) {
  config_ = config;
  return *this;
}
RapMiner::Builder& RapMiner::Builder::tCp(double t_cp) {
  config_.cp.t_cp = t_cp;
  return *this;
}
RapMiner::Builder& RapMiner::Builder::tConf(double t_conf) {
  config_.search.t_conf = t_conf;
  return *this;
}
RapMiner::Builder& RapMiner::Builder::attributeDeletion(bool enable) {
  config_.cp.enable_attribute_deletion = enable;
  return *this;
}
RapMiner::Builder& RapMiner::Builder::earlyStop(bool enable) {
  config_.search.early_stop = enable;
  return *this;
}
RapMiner::Builder& RapMiner::Builder::cuboidOrder(CuboidOrder order) {
  config_.search.order = order;
  return *this;
}
RapMiner::Builder& RapMiner::Builder::threads(std::int32_t threads) {
  config_.parallel.threads = threads;
  return *this;
}
RapMiner::Builder& RapMiner::Builder::deadlineSeconds(double seconds) {
  config_.search.deadline_seconds = seconds;
  return *this;
}
RapMiner::Builder& RapMiner::Builder::maxLayers(std::int32_t layers) {
  config_.search.max_layers = layers;
  return *this;
}

util::Status RapMiner::Builder::validate() const {
  // Every float threshold is checked for NaN/Inf FIRST, with a message
  // naming the problem: NaN compares false against both ends of a range
  // check, so a pure range test would produce a misleading "out of
  // range" diagnostic (or, written as two one-sided tests, accept NaN).
  if (!std::isfinite(config_.cp.t_cp)) {
    return util::Status::invalidArgument(util::strFormat(
        "t_cp must be a finite number, got %g", config_.cp.t_cp));
  }
  if (!(config_.cp.t_cp >= 0.0 && config_.cp.t_cp < 1.0)) {
    return util::Status::invalidArgument(util::strFormat(
        "t_cp must be in [0, 1), got %g", config_.cp.t_cp));
  }
  if (!std::isfinite(config_.search.t_conf)) {
    return util::Status::invalidArgument(util::strFormat(
        "t_conf must be a finite number, got %g", config_.search.t_conf));
  }
  if (!(config_.search.t_conf > 0.0 && config_.search.t_conf <= 1.0)) {
    return util::Status::invalidArgument(util::strFormat(
        "t_conf must be in (0, 1], got %g", config_.search.t_conf));
  }
  if (!std::isfinite(config_.search.deadline_seconds) ||
      config_.search.deadline_seconds < 0.0) {
    return util::Status::invalidArgument(util::strFormat(
        "deadline_seconds must be finite and >= 0 (0 = none), got %g",
        config_.search.deadline_seconds));
  }
  if (config_.search.max_layers < 0) {
    return util::Status::invalidArgument(util::strFormat(
        "max_layers must be >= 0 (0 = unlimited), got %d",
        config_.search.max_layers));
  }
  if (config_.parallel.threads < 0) {
    return util::Status::invalidArgument(util::strFormat(
        "threads must be >= 0 (0 = hardware concurrency), got %d",
        config_.parallel.threads));
  }
  return util::Status::ok();
}

util::Result<RapMiner> RapMiner::Builder::build() const {
  if (auto status = validate(); !status.isOk()) return status;
  return RapMiner(config_);
}

namespace {

/// One registry write per localize() call, fed from the SearchStats the
/// hot loops already maintain — the search itself never touches an
/// atomic, so the disabled-metrics cost stays at one branch here.
void publishLocalizeMetrics(const SearchStats& stats, double total_seconds) {
  obs::MetricsRegistry& registry = obs::defaultRegistry();
  registry.counter("rap_localize_total").increment();
  registry.counter("rap_localize_attributes_deleted_total")
      .increment(static_cast<std::uint64_t>(
          std::max<std::int32_t>(stats.attributes_deleted, 0)));
  registry.counter("rap_search_cuboids_visited_total")
      .increment(stats.cuboids_visited);
  registry.counter("rap_search_combinations_evaluated_total")
      .increment(stats.combinations_evaluated);
  registry.counter("rap_search_combinations_pruned_total")
      .increment(stats.combinations_pruned);
  registry.counter("rap_search_candidates_total")
      .increment(stats.candidates_found);
  registry.gauge("rap_search_threads")
      .set(static_cast<double>(stats.search_threads));
  if (stats.early_stopped) {
    registry.counter("rap_search_early_stop_total").increment();
  }
  if (!stats.degraded_reason.empty()) {
    registry
        .counter("rap_search_degraded_total",
                 {{"reason", stats.degraded_reason}})
        .increment();
  }
  for (const auto& layer : stats.layers) {
    const obs::Labels labels{{"layer", std::to_string(layer.layer)}};
    registry.counter("rap_search_layer_cuboids_visited_total", labels)
        .increment(layer.cuboids_visited);
    registry.counter("rap_search_layer_combinations_evaluated_total", labels)
        .increment(layer.combinations_evaluated);
    registry.counter("rap_search_layer_combinations_pruned_total", labels)
        .increment(layer.combinations_pruned);
    registry
        .histogram("rap_search_layer_aggregate_seconds",
                   obs::exponentialBuckets(1e-5, 4.0, 10), labels)
        .observe(layer.seconds_aggregate);
  }
  registry
      .histogram("rap_localize_seconds",
                 obs::exponentialBuckets(1e-4, 4.0, 10))
      .observe(total_seconds);
}

}  // namespace

LocalizationResult RapMiner::localize(const dataset::LeafTable& table,
                                      std::int32_t k) const {
  return localize(table, k, pool_.get(), /*workspaces=*/nullptr);
}

LocalizationResult RapMiner::localize(const dataset::LeafTable& table,
                                      std::int32_t k,
                                      util::ThreadPool* pool) const {
  return localize(table, k, pool, /*workspaces=*/nullptr);
}

LocalizationResult RapMiner::localize(const dataset::LeafTable& table,
                                      std::int32_t k, util::ThreadPool* pool,
                                      WorkspacePool* workspaces) const {
  RAP_TRACE_SPAN("localize",
                 {{"rows", static_cast<std::int64_t>(table.size())},
                  {"k", k}});
  const util::WallTimer total_timer;
  LocalizationResult result;

  // Nothing to localize: no rows, no attributes, or no anomalous leaf.
  // Algorithm 1 would delete every attribute and Algorithm 2 would visit
  // nothing, so skip both stages outright (the stats contract for this
  // path is documented on localize()).
  if (table.empty() || table.schema().attributeCount() == 0 ||
      table.anomalousCount() == 0) {
    if (obs::metricsEnabled()) {
      publishLocalizeMetrics(result.stats, total_timer.elapsedSeconds());
    }
    return result;
  }

  // Stage 1 — Algorithm 1.  With deletion disabled (Table VI ablation)
  // every attribute survives, still ordered by CP so the cuboid visit
  // order stays comparable.
  util::WallTimer stage_timer;
  std::vector<dataset::AttrId> kept;
  {
    RAP_TRACE_SPAN("localize/cp_deletion");
    if (config_.cp.enable_attribute_deletion) {
      kept = deleteRedundantAttributes(table, config_.cp.t_cp,
                                       &result.stats.classification_power);
    } else {
      kept = deleteRedundantAttributes(table, -1.0,
                                       &result.stats.classification_power);
    }
  }
  result.stats.kept_attributes = kept;
  result.stats.attributes_deleted =
      table.schema().attributeCount() - static_cast<std::int32_t>(kept.size());
  result.stats.seconds_attribute_deletion = stage_timer.elapsedSeconds();

  // Stage 2 — Algorithm 2, serial or fanned out across the pool.
  stage_timer.reset();
  {
    RAP_TRACE_SPAN("localize/search",
                   {{"kept_attributes",
                     static_cast<std::int64_t>(kept.size())}});
    // Check a workspace out of the retained pool (the miner's own, or
    // the caller's shared one) so repeated localizations of same-shaped
    // tables reuse the kernel transpose and aggregation scratch.
    WorkspacePool::Lease lease =
        (workspaces != nullptr ? *workspaces : *workspaces_).lease();
    if (pool != nullptr && pool->threadCount() > 0) {
      result.patterns = acGuidedSearchParallel(
          table, kept, config_.search, *pool, lease.get(), result.stats);
    } else {
      result.patterns = acGuidedSearch(table, kept, config_.search,
                                       lease.get(), result.stats);
    }
  }
  result.stats.seconds_search = stage_timer.elapsedSeconds();
  result.degraded = !result.stats.degraded_reason.empty();
  if (result.degraded) {
    RAP_LOG_KV(Warn, {"reason", result.stats.degraded_reason},
               {"candidates", static_cast<std::int64_t>(result.patterns.size())},
               {"seconds", result.stats.seconds_search})
        << "search degraded: returning partial candidate set";
  }

  // Stage 3 — RAPScore ranking (Eq. 3) and truncation to top-k.
  stage_timer.reset();
  {
    RAP_TRACE_SPAN("localize/rank");
    for (auto& pattern : result.patterns) {
      pattern.score = rapScore(pattern.confidence, pattern.layer);
    }
    std::stable_sort(result.patterns.begin(), result.patterns.end(),
                     [](const ScoredPattern& a, const ScoredPattern& b) {
                       return a.score > b.score;
                     });
    if (k > 0 && static_cast<std::int32_t>(result.patterns.size()) > k) {
      result.patterns.resize(static_cast<std::size_t>(k));
    }
  }
  result.stats.seconds_ranking = stage_timer.elapsedSeconds();

  if (obs::metricsEnabled()) {
    publishLocalizeMetrics(result.stats, total_timer.elapsedSeconds());
  }
  return result;
}

}  // namespace rap::core
