#include "core/rapminer.h"

#include <algorithm>
#include <cmath>

namespace rap::core {

double rapScore(double confidence, std::int32_t layer) noexcept {
  return layer <= 0 ? 0.0
                    : confidence / std::sqrt(static_cast<double>(layer));
}

RapMiner::RapMiner(RapMinerConfig config) : config_(config) {
  RAP_CHECK_MSG(config_.t_conf > 0.0 && config_.t_conf < 1.0,
                "t_conf must be in (0,1), got " << config_.t_conf);
  RAP_CHECK_MSG(config_.t_cp >= 0.0 && config_.t_cp < 1.0,
                "t_cp must be in [0,1), got " << config_.t_cp);
}

LocalizationResult RapMiner::localize(const dataset::LeafTable& table,
                                      std::int32_t k) const {
  LocalizationResult result;

  // Stage 1 — Algorithm 1.  With deletion disabled (Table VI ablation)
  // every attribute survives, still ordered by CP so the cuboid visit
  // order stays comparable.
  std::vector<dataset::AttrId> kept;
  if (config_.enable_attribute_deletion) {
    kept = deleteRedundantAttributes(table, config_.t_cp,
                                     &result.stats.classification_power);
  } else {
    kept = deleteRedundantAttributes(table, -1.0,
                                     &result.stats.classification_power);
  }
  result.stats.kept_attributes = kept;
  result.stats.attributes_deleted =
      table.schema().attributeCount() - static_cast<std::int32_t>(kept.size());

  // Stage 2 — Algorithm 2.
  SearchConfig search_config;
  search_config.t_conf = config_.t_conf;
  search_config.early_stop = config_.early_stop;
  search_config.order = config_.cuboid_order;
  result.patterns =
      acGuidedSearch(table, kept, search_config, result.stats);

  // Stage 3 — RAPScore ranking (Eq. 3) and truncation to top-k.
  for (auto& pattern : result.patterns) {
    pattern.score = rapScore(pattern.confidence, pattern.layer);
  }
  std::stable_sort(result.patterns.begin(), result.patterns.end(),
                   [](const ScoredPattern& a, const ScoredPattern& b) {
                     return a.score > b.score;
                   });
  if (k > 0 && static_cast<std::int32_t>(result.patterns.size()) > k) {
    result.patterns.resize(static_cast<std::size_t>(k));
  }
  return result;
}

}  // namespace rap::core
