#include "fault/fault.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rap::fault {

namespace internal {
std::atomic<std::int32_t> g_armed_points{0};
}  // namespace internal

const char* actionName(Action action) noexcept {
  switch (action) {
    case Action::kNone:
      return "none";
    case Action::kThrow:
      return "throw";
    case Action::kError:
      return "error";
    case Action::kDelay:
      return "delay";
    case Action::kDrop:
      return "drop";
  }
  return "unknown";
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) {
    points_.emplace(point, std::make_shared<Point>());
    it = points_.find(point);
    internal::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  } else if (it->second->spec.action == Action::kNone &&
             spec.action != Action::kNone) {
    internal::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
  it->second->spec = spec;
  it->second->hit_count.store(0, std::memory_order_relaxed);
  it->second->fire_count.store(0, std::memory_order_relaxed);
}

void Registry::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return;
  if (it->second->spec.action != Action::kNone) {
    internal::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second->spec.action = Action::kNone;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int32_t armed = 0;
  for (const auto& [name, point] : points_) {
    if (point->spec.action != Action::kNone) ++armed;
  }
  internal::g_armed_points.fetch_sub(armed, std::memory_order_relaxed);
  points_.clear();
  total_fires_.store(0, std::memory_order_relaxed);
}

std::uint64_t Registry::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end()
             ? 0
             : it->second->fire_count.load(std::memory_order_relaxed);
}

std::uint64_t Registry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end()
             ? 0
             : it->second->hit_count.load(std::memory_order_relaxed);
}

std::uint64_t Registry::totalFires() const {
  return total_fires_.load(std::memory_order_relaxed);
}

Registry::Point* Registry::find(const char* point) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? nullptr : it->second.get();
}

Action Registry::onHit(const char* point) {
  Point* p = find(point);
  if (p == nullptr || p->spec.action == Action::kNone) return Action::kNone;
  const FaultSpec spec = p->spec;  // copy once; arm() replaces wholesale

  const std::uint64_t hit =
      p->hit_count.fetch_add(1, std::memory_order_relaxed);
  if (hit < spec.skip_first) return Action::kNone;

  // Deterministic per-hit decision: a pure function of (seed, hit).
  if (spec.probability < 1.0) {
    std::uint64_t state = spec.seed ^ (hit * 0x9E3779B97F4A7C15ULL);
    const std::uint64_t draw = util::splitmix64(state);
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    if (u >= spec.probability) return Action::kNone;
  }

  const std::uint64_t fired =
      p->fire_count.fetch_add(1, std::memory_order_relaxed);
  if (fired >= spec.max_fires) return Action::kNone;
  total_fires_.fetch_add(1, std::memory_order_relaxed);

  if (obs::metricsEnabled()) {
    obs::defaultRegistry()
        .counter("rap_fault_injected_total",
                 {{"point", point}, {"action", actionName(spec.action)}})
        .increment();
  }
  RAP_LOG_KV(Debug, {"point", point}, {"action", actionName(spec.action)},
             {"hit", hit})
      << "fault injected";

  switch (spec.action) {
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_micros));
      return Action::kDelay;
    case Action::kThrow:
      throw InjectedFault(point);
    default:
      return spec.action;
  }
}

Action inject(const char* point) { return Registry::instance().onHit(point); }

util::Result<int> armFromSpec(const std::string& spec) {
  if (spec.empty()) return 0;
  int armed = 0;
  for (const auto& clause : util::split(spec, ';')) {
    const std::string_view text = util::trim(clause);
    if (text.empty()) continue;
    const auto eq = text.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return util::Status::invalidArgument("fault spec clause missing '=': " +
                                           std::string(text));
    }
    const std::string point(util::trim(text.substr(0, eq)));
    const auto fields = util::split(text.substr(eq + 1), ':');
    FaultSpec fault;
    const std::string action = util::toLower(util::trim(fields[0]));
    if (action == "throw") {
      fault.action = Action::kThrow;
    } else if (action == "error") {
      fault.action = Action::kError;
    } else if (action == "delay") {
      fault.action = Action::kDelay;
    } else if (action == "drop") {
      fault.action = Action::kDrop;
    } else {
      return util::Status::invalidArgument("unknown fault action: " + action);
    }
    if (fields.size() > 1) {
      auto p = util::parseDouble(util::trim(fields[1]));
      if (!p || *p < 0.0 || *p > 1.0) {
        return util::Status::invalidArgument("bad fault probability in: " +
                                             std::string(text));
      }
      fault.probability = *p;
    }
    // Remaining fields are non-negative integers in a fixed order:
    // seed, delay_micros, skip_first, max_fires.
    for (std::size_t i = 2; i < fields.size() && i < 6; ++i) {
      auto v = util::parseInt(util::trim(fields[i]));
      if (!v || *v < 0) {
        return util::Status::invalidArgument("bad fault field in: " +
                                             std::string(text));
      }
      switch (i) {
        case 2: fault.seed = static_cast<std::uint64_t>(*v); break;
        case 3: fault.delay_micros = *v; break;
        case 4: fault.skip_first = static_cast<std::uint64_t>(*v); break;
        default: fault.max_fires = static_cast<std::uint64_t>(*v); break;
      }
    }
    Registry::instance().arm(point, fault);
    ++armed;
  }
  return armed;
}

util::Status injectStatus(const char* point) {
  switch (inject(point)) {
    case Action::kError:
    case Action::kDrop:
      return util::Status::internal(std::string("injected fault at ") + point);
    default:
      return util::Status::ok();
  }
}

}  // namespace rap::fault
