// Fault injection for chaos testing (src/fault).
//
// A process-wide Registry of NAMED INJECTION POINTS lets tests arm
// deterministic failure schedules at the seams of the pipeline:
//
//   stream.ingest   — producer-side, before events reach shard queues
//   stream.seal     — sealer thread, before a sealed window is processed
//   stream.localize — localization pool, before RapMiner::localize
//   io.csv_chunk    — streamCsvFile, before each chunk is fed
//   search.layer    — Algorithm 2, at the top of each cuboid layer
//   svc.submit      — svc::JobManager::submit, before admission
//   svc.execute     — service worker, before cache lookup and search
//   svc.tenant      — svc::TenantRouter, at tenant resolution (-> 503)
//   svc.journal.append — svc::JobJournal::append, before the WAL write
//   svc.journal.replay — svc::JobJournal replay, per recovered record
//   svc.breaker     — svc::CircuitBreaker::allowAt (kError trips it open)
//
// Compile gating: every site goes through RAP_FAULT_HIT(point).  Unless
// the build defines RAP_FAULT_INJECTION (CMake -DRAP_FAULT_INJECTION=ON)
// the macro is the constant Action::kNone, the surrounding `if` folds
// away, and production binaries carry ZERO overhead — no atomic load,
// no branch, no registry symbol referenced.  With injection compiled in
// but nothing armed, a site costs one relaxed atomic load and a branch.
//
// Determinism: each point keeps a hit counter; whether hit #i fires is a
// pure function of (spec.seed, i) via a splitmix64 hash compared against
// spec.probability.  The SCHEDULE — the set of firing hit indices — is
// therefore reproducible run to run; under concurrency only the
// assignment of hits to threads varies.
//
// Action semantics are interpreted by each site (docs/robustness.md has
// the full contract):
//   kDelay — inject() sleeps spec.delay_micros, then reports kNone;
//   kThrow — inject() throws InjectedFault (sites on noexcept paths
//            catch it and degrade);
//   kError — reported to the caller; Status-returning paths turn it
//            into Status::internal, others treat it like kDrop;
//   kDrop  — reported to the caller, which discards the unit of work
//            in flight (an event batch, a window, a localization).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/status.h"

namespace rap::fault {

/// True when the build carries the injection sites (RAP_FAULT_INJECTION).
#ifdef RAP_FAULT_INJECTION
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

enum class Action : std::uint8_t {
  kNone = 0,  ///< did not fire (or delay already served inside inject())
  kThrow,     ///< throw InjectedFault out of the injection point
  kError,     ///< report a Status error / recoverable failure
  kDelay,     ///< sleep delay_micros at the injection point
  kDrop,      ///< discard the unit of work in flight
};

const char* actionName(Action action) noexcept;

/// Thrown by inject() for kThrow faults.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& point)
      : std::runtime_error("injected fault at " + point), point_(point) {}
  const std::string& point() const noexcept { return point_; }

 private:
  std::string point_;
};

/// One armed failure schedule.
struct FaultSpec {
  Action action = Action::kNone;
  /// Per-hit firing probability in [0, 1]; 1.0 fires on every hit.
  double probability = 1.0;
  /// Seeds the deterministic per-hit schedule.
  std::uint64_t seed = 0;
  /// Sleep for kDelay fires.
  std::int64_t delay_micros = 1000;
  /// Hits [0, skip_first) never fire (lets a stream warm up cleanly).
  std::uint64_t skip_first = 0;
  /// Stop firing after this many fires (UINT64_MAX = unbounded).
  std::uint64_t max_fires = UINT64_MAX;
};

/// Thread-safe map of injection point -> armed schedule.  Arm/disarm are
/// test-control operations (mutex); the hit path is lock-free after the
/// initial per-point lookup.
class Registry {
 public:
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Arms `point` with `spec` (replacing any previous schedule and
  /// resetting its counters).  Armed points make anyArmed() true.
  void arm(const std::string& point, FaultSpec spec);

  /// Disarms one point (no-op when not armed).
  void disarm(const std::string& point);

  /// Disarms everything and forgets all counters.
  void reset();

  /// Number of times `point` actually fired (0 when never armed).
  std::uint64_t fires(const std::string& point) const;
  /// Number of times `point` was hit while armed.
  std::uint64_t hits(const std::string& point) const;
  /// Total fires across all points.
  std::uint64_t totalFires() const;

  /// The hit path: decides deterministically whether this hit fires and
  /// serves the action (sleeps for kDelay, throws for kThrow).  Returns
  /// the fired action — kNone when nothing fired or the fault was fully
  /// served in place.
  Action onHit(const char* point);

 private:
  struct Point {
    FaultSpec spec;
    std::atomic<std::uint64_t> hit_count{0};
    std::atomic<std::uint64_t> fire_count{0};
  };

  Point* find(const char* point);

  mutable std::mutex mutex_;
  // Pointer stability for the lock-free hit path: points are never
  // erased while armed_ readers may hold them; reset() swaps the map
  // under the mutex after clearing armed_ (tests quiesce between runs).
  std::map<std::string, std::shared_ptr<Point>> points_;
  std::atomic<std::uint64_t> total_fires_{0};
};

namespace internal {
extern std::atomic<std::int32_t> g_armed_points;
}  // namespace internal

/// One relaxed load: true while any point is armed in the process.
inline bool anyArmed() noexcept {
  return internal::g_armed_points.load(std::memory_order_relaxed) > 0;
}

/// Site helper: consults the global registry when anything is armed.
/// May sleep (kDelay) or throw InjectedFault (kThrow); returns the
/// action for the caller to interpret otherwise.
Action inject(const char* point);

/// Status-returning variant for Status pipelines: kError/kDrop become
/// Status::internal("injected fault at <point>"), kDelay sleeps, kThrow
/// still throws.
util::Status injectStatus(const char* point);

/// Arms points from an environment-style spec string, e.g.
///   "svc.tenant=error;svc.execute=error:0.5:42"
/// Each clause is `point=action[:probability[:seed[:delay_micros
/// [:skip_first[:max_fires]]]]]` with action one of
/// throw|error|delay|drop.  Returns the number of points armed, or an
/// error naming the malformed clause.  Intended for `RAP_FAULT_ARM` in
/// chaos CI jobs; a no-op returning 0 when `spec` is empty.  Builds
/// without RAP_FAULT_INJECTION still parse (the sites just never hit).
util::Result<int> armFromSpec(const std::string& spec);

}  // namespace rap::fault

// The per-site hook.  Usage:
//   switch (RAP_FAULT_HIT("stream.ingest")) {
//     case rap::fault::Action::kDrop: ...; break;
//     default: break;
//   }
// Compiled out (the default), this is the constant Action::kNone and the
// whole switch folds away.
#ifdef RAP_FAULT_INJECTION
#define RAP_FAULT_HIT(point)                                 \
  (::rap::fault::anyArmed() ? ::rap::fault::inject(point)    \
                            : ::rap::fault::Action::kNone)
#define RAP_FAULT_STATUS(point)                                        \
  (::rap::fault::anyArmed() ? ::rap::fault::injectStatus(point)        \
                            : ::rap::util::Status::ok())
#else
#define RAP_FAULT_HIT(point) (::rap::fault::Action::kNone)
#define RAP_FAULT_STATUS(point) (::rap::util::Status::ok())
#endif
