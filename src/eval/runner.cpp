#include "eval/runner.h"

#include "baselines/adtributor.h"
#include "baselines/fp_rap.h"
#include "baselines/hotspot.h"
#include "baselines/idice.h"
#include "baselines/squeeze.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rap::eval {

namespace {

/// Per-case timing series, labeled by localizer so Fig. 9-style latency
/// distributions can be scraped straight from the registry.
void publishCaseMetrics(const std::string& localizer, double seconds) {
  obs::MetricsRegistry& registry = obs::defaultRegistry();
  const obs::Labels labels{{"localizer", localizer}};
  registry.counter("rap_eval_cases_total", labels).increment();
  registry
      .histogram("rap_eval_case_seconds",
                 obs::exponentialBuckets(1e-4, 4.0, 10), labels)
      .observe(seconds);
}

CaseRun runOneCase(const NamedLocalizer& localizer, const gen::Case& c,
                   const RunOptions& options) {
  const std::int32_t k =
      options.k_equals_truth ? static_cast<std::int32_t>(c.truth.size())
                             : options.k;
  CaseRun run;
  run.case_id = c.id;
  RAP_TRACE_SPAN("eval/case", {{"case", c.id.c_str()},
                               {"localizer", localizer.name.c_str()}});
  const util::WallTimer timer;
  run.predictions = localizer.fn(c.table, k);
  run.seconds = timer.elapsedSeconds();
  if (obs::metricsEnabled()) publishCaseMetrics(localizer.name, run.seconds);
  return run;
}

}  // namespace

std::vector<NamedLocalizer> standardLocalizers(
    const core::RapMinerConfig& rapminer_config, bool include_hotspot) {
  std::vector<NamedLocalizer> out;
  out.push_back(rapminerLocalizer(rapminer_config));
  out.push_back({"Adtributor",
                 [](const dataset::LeafTable& table, std::int32_t k) {
                   return baselines::adtributorLocalize(table, {}, k);
                 }});
  out.push_back({"iDice",
                 [](const dataset::LeafTable& table, std::int32_t k) {
                   return baselines::idiceLocalize(table, {}, k);
                 }});
  out.push_back({"FP-growth",
                 [](const dataset::LeafTable& table, std::int32_t k) {
                   return baselines::fpGrowthLocalize(table, {}, k);
                 }});
  out.push_back({"Squeeze",
                 [](const dataset::LeafTable& table, std::int32_t k) {
                   // Squeeze cannot return a caller-chosen count (paper
                   // §V-E.2): it reports each cluster's root set.  The
                   // bench still truncates for RC@k bookkeeping.
                   return baselines::squeezeLocalize(table, {}, k);
                 }});
  if (include_hotspot) {
    out.push_back({"HotSpot",
                   [](const dataset::LeafTable& table, std::int32_t k) {
                     return baselines::hotspotLocalize(table, {}, k);
                   }});
  }
  return out;
}

NamedLocalizer rapminerLocalizer(const core::RapMinerConfig& config,
                                 std::string name) {
  return {std::move(name),
          [config](const dataset::LeafTable& table, std::int32_t k) {
            return core::RapMiner(config).localize(table, k).patterns;
          }};
}

std::vector<CaseRun> runLocalizer(const NamedLocalizer& localizer,
                                  const std::vector<gen::Case>& cases,
                                  const RunOptions& options) {
  std::vector<CaseRun> runs;
  runs.reserve(cases.size());
  for (const auto& c : cases) {
    runs.push_back(runOneCase(localizer, c, options));
  }
  return runs;
}

std::vector<CaseRun> runLocalizerParallel(const NamedLocalizer& localizer,
                                          const std::vector<gen::Case>& cases,
                                          const RunOptions& options,
                                          std::size_t threads) {
  std::vector<CaseRun> runs(cases.size());
  util::parallelFor(
      cases.size(),
      [&](std::size_t i) { runs[i] = runOneCase(localizer, cases[i], options); },
      threads);
  return runs;
}

double aggregateF1(const std::vector<CaseRun>& runs,
                   const std::vector<gen::Case>& cases) {
  RAP_CHECK(runs.size() == cases.size());
  F1Accumulator acc;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    acc.add(patternsToAcs(runs[i].predictions), cases[i].truth);
  }
  return acc.f1();
}

double aggregateRecallAtK(const std::vector<CaseRun>& runs,
                          const std::vector<gen::Case>& cases,
                          std::int32_t k) {
  RAP_CHECK(runs.size() == cases.size());
  RecallAtKAccumulator acc(k);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    acc.add(runs[i].predictions, cases[i].truth);
  }
  return acc.value();
}

util::TimingStats aggregateTiming(const std::vector<CaseRun>& runs) {
  util::TimingStats stats;
  for (const auto& run : runs) stats.add(run.seconds);
  return stats;
}

}  // namespace rap::eval
