// Experiment runner: applies a named localizer to a set of cases with
// per-case wall-clock timing, and aggregates the paper's metrics.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/rapminer.h"
#include "eval/metrics.h"
#include "gen/case.h"
#include "util/timer.h"

namespace rap::eval {

/// A localization algorithm under test: table + k -> ranked patterns.
using LocalizeFn = std::function<std::vector<core::ScoredPattern>(
    const dataset::LeafTable&, std::int32_t k)>;

struct NamedLocalizer {
  std::string name;
  LocalizeFn fn;
};

/// The paper's §V-C line-up (RAPMiner + 4 baselines) with the default
/// configurations used by every bench; `include_hotspot` appends the
/// extension baseline.
std::vector<NamedLocalizer> standardLocalizers(
    const core::RapMinerConfig& rapminer_config = {},
    bool include_hotspot = false);

/// Just the RAPMiner entry (for sensitivity sweeps).
NamedLocalizer rapminerLocalizer(const core::RapMinerConfig& config,
                                 std::string name = "RAPMiner");

struct CaseRun {
  std::string case_id;
  std::vector<core::ScoredPattern> predictions;
  double seconds = 0.0;
};

struct RunOptions {
  /// Fixed k for every case; ignored when k_equals_truth.
  std::int32_t k = 5;
  /// Paper §V-B: on the Squeeze dataset the returned count equals the
  /// true RAP count of each case.
  bool k_equals_truth = false;
};

/// Run one localizer over all cases (timing included).
std::vector<CaseRun> runLocalizer(const NamedLocalizer& localizer,
                                  const std::vector<gen::Case>& cases,
                                  const RunOptions& options);

/// Parallel variant for parameter sweeps: cases fan out across
/// `threads` workers (0 = hardware concurrency).  Results are identical
/// to runLocalizer and in the same order; per-case wall times include
/// scheduler contention, so use the serial runner when timing is the
/// measurement (Fig. 9).
std::vector<CaseRun> runLocalizerParallel(const NamedLocalizer& localizer,
                                          const std::vector<gen::Case>& cases,
                                          const RunOptions& options,
                                          std::size_t threads = 0);

/// Aggregate helpers over matched (runs, cases) vectors.
double aggregateF1(const std::vector<CaseRun>& runs,
                   const std::vector<gen::Case>& cases);
double aggregateRecallAtK(const std::vector<CaseRun>& runs,
                          const std::vector<gen::Case>& cases, std::int32_t k);
util::TimingStats aggregateTiming(const std::vector<CaseRun>& runs);

}  // namespace rap::eval
