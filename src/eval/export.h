// Export of experiment artifacts: per-case runs and aggregated metric
// rows as CSV, so bench outputs can be archived and re-plotted without
// re-running (EXPERIMENTS.md workflow).
#pragma once

#include <string>
#include <vector>

#include "eval/runner.h"
#include "io/csv.h"

namespace rap::eval {

/// One CSV row per (case, rank): case_id, rank, pattern, confidence,
/// layer, score, seconds, hit (1 when the pattern is in the case's
/// ground truth).
util::Status writeRunsCsv(const std::string& path,
                          const dataset::Schema& schema,
                          const std::vector<CaseRun>& runs,
                          const std::vector<gen::Case>& cases);

/// A named metric value destined for one row of a summary CSV.
struct MetricRow {
  std::string experiment;  ///< e.g. "fig8b"
  std::string method;      ///< e.g. "RAPMiner"
  std::string metric;      ///< e.g. "RC@3"
  double value = 0.0;
};

util::Status writeMetricsCsv(const std::string& path,
                             const std::vector<MetricRow>& rows);

}  // namespace rap::eval
