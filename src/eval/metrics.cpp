#include "eval/metrics.h"

#include <algorithm>

namespace rap::eval {

using dataset::AttributeCombination;

MatchCounts matchPatterns(const std::vector<AttributeCombination>& predicted,
                          const std::vector<AttributeCombination>& truth) {
  MatchCounts counts;
  for (const auto& p : predicted) {
    const bool hit = std::find(truth.begin(), truth.end(), p) != truth.end();
    if (hit) {
      counts.tp += 1;
    } else {
      counts.fp += 1;
    }
  }
  for (const auto& t : truth) {
    const bool hit =
        std::find(predicted.begin(), predicted.end(), t) != predicted.end();
    if (!hit) counts.fn += 1;
  }
  return counts;
}

void F1Accumulator::add(const MatchCounts& counts) noexcept {
  counts_.tp += counts.tp;
  counts_.fp += counts.fp;
  counts_.fn += counts.fn;
}

void F1Accumulator::add(const std::vector<AttributeCombination>& predicted,
                        const std::vector<AttributeCombination>& truth) {
  add(matchPatterns(predicted, truth));
}

double F1Accumulator::precision() const noexcept {
  const auto denom = counts_.tp + counts_.fp;
  return denom == 0 ? 0.0
                    : static_cast<double>(counts_.tp) /
                          static_cast<double>(denom);
}

double F1Accumulator::recall() const noexcept {
  const auto denom = counts_.tp + counts_.fn;
  return denom == 0 ? 0.0
                    : static_cast<double>(counts_.tp) /
                          static_cast<double>(denom);
}

double F1Accumulator::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

void RecallAtKAccumulator::add(
    const std::vector<core::ScoredPattern>& ranked_predictions,
    const std::vector<AttributeCombination>& truth) {
  total_truth_ += truth.size();
  const auto limit = std::min<std::size_t>(
      ranked_predictions.size(), static_cast<std::size_t>(k_));
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& ac = ranked_predictions[i].ac;
    if (std::find(truth.begin(), truth.end(), ac) != truth.end()) {
      hits_ += 1;
    }
  }
}

double RecallAtKAccumulator::value() const noexcept {
  return total_truth_ == 0
             ? 0.0
             : static_cast<double>(hits_) / static_cast<double>(total_truth_);
}

std::vector<AttributeCombination> patternsToAcs(
    const std::vector<core::ScoredPattern>& patterns) {
  std::vector<AttributeCombination> out;
  out.reserve(patterns.size());
  for (const auto& p : patterns) out.push_back(p.ac);
  return out;
}

}  // namespace rap::eval
