#include "eval/export.h"

#include <algorithm>

#include "util/strings.h"

namespace rap::eval {

util::Status writeRunsCsv(const std::string& path,
                          const dataset::Schema& schema,
                          const std::vector<CaseRun>& runs,
                          const std::vector<gen::Case>& cases) {
  if (runs.size() != cases.size()) {
    return util::Status::invalidArgument(
        "runs and cases must be matched vectors");
  }
  std::vector<io::CsvRow> rows;
  rows.push_back({"case_id", "rank", "pattern", "confidence", "layer",
                  "score", "seconds", "hit"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    const auto& truth = cases[i].truth;
    for (std::size_t r = 0; r < run.predictions.size(); ++r) {
      const auto& p = run.predictions[r];
      const bool hit =
          std::find(truth.begin(), truth.end(), p.ac) != truth.end();
      rows.push_back({run.case_id, std::to_string(r + 1),
                      p.ac.toString(schema),
                      util::strFormat("%.6f", p.confidence),
                      std::to_string(p.layer),
                      util::strFormat("%.6f", p.score),
                      util::strFormat("%.6f", run.seconds),
                      hit ? "1" : "0"});
    }
  }
  return io::writeCsvFile(path, rows);
}

util::Status writeMetricsCsv(const std::string& path,
                             const std::vector<MetricRow>& rows) {
  std::vector<io::CsvRow> out;
  out.push_back({"experiment", "method", "metric", "value"});
  for (const auto& row : rows) {
    out.push_back({row.experiment, row.method, row.metric,
                   util::strFormat("%.6f", row.value)});
  }
  return io::writeCsvFile(path, out);
}

}  // namespace rap::eval
