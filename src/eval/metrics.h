// Evaluation metrics of the paper's §V-B.
//
//  * F1-score (Eq. 6) — used on the Squeeze-style dataset where the
//    number of returned results is fixed to the true RAP count; TP/FP/FN
//    are accumulated over all cases of a group and exact-match compares
//    attribute combinations.
//  * RC@k (Eq. 7) — recall of the top-k recommendations over all cases,
//    used on RAPMD where the RAP count is unknown a priori.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "dataset/attribute_combination.h"

namespace rap::eval {

struct MatchCounts {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;
};

/// Exact-match counts of one case's prediction against its ground truth.
MatchCounts matchPatterns(
    const std::vector<dataset::AttributeCombination>& predicted,
    const std::vector<dataset::AttributeCombination>& truth);

/// Accumulates TP/FP/FN over cases; precision/recall/F1 per Eq. 6.
class F1Accumulator {
 public:
  void add(const MatchCounts& counts) noexcept;
  void add(const std::vector<dataset::AttributeCombination>& predicted,
           const std::vector<dataset::AttributeCombination>& truth);

  std::uint64_t tp() const noexcept { return counts_.tp; }
  std::uint64_t fp() const noexcept { return counts_.fp; }
  std::uint64_t fn() const noexcept { return counts_.fn; }

  double precision() const noexcept;
  double recall() const noexcept;
  double f1() const noexcept;

 private:
  MatchCounts counts_;
};

/// RC@k accumulator (Eq. 7): sums over cases the number of true RAPs hit
/// by the top-k recommendations, normalized by the total true RAP count.
class RecallAtKAccumulator {
 public:
  explicit RecallAtKAccumulator(std::int32_t k) : k_(k) {}

  void add(const std::vector<core::ScoredPattern>& ranked_predictions,
           const std::vector<dataset::AttributeCombination>& truth);

  double value() const noexcept;
  std::int32_t k() const noexcept { return k_; }

 private:
  std::int32_t k_;
  std::uint64_t hits_ = 0;
  std::uint64_t total_truth_ = 0;
};

/// Strip ScoredPatterns down to their combinations (rank order kept).
std::vector<dataset::AttributeCombination> patternsToAcs(
    const std::vector<core::ScoredPattern>& patterns);

}  // namespace rap::eval
