#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/adtributor.h"
#include "baselines/fp_rap.h"
#include "baselines/hotspot.h"
#include "baselines/idice.h"
#include "baselines/squeeze.h"
#include "dataset/cuboid.h"

namespace rap::baselines {
namespace {

using dataset::AttributeCombination;
using dataset::LeafTable;
using dataset::Schema;

/// Dense tiny table: leaves under any `broken` pattern drop to
/// `broken_share` of their forecast and are flagged anomalous.
LeafTable makeTable(const std::vector<std::string>& broken_patterns,
                    double broken_share = 0.1) {
  const Schema schema = Schema::tiny();
  std::vector<AttributeCombination> broken;
  for (const auto& text : broken_patterns) {
    broken.push_back(AttributeCombination::parse(schema, text).value());
  }
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const bool anomalous =
        std::any_of(broken.begin(), broken.end(),
                    [&leaf](const AttributeCombination& ac) {
                      return ac.matchesLeaf(leaf);
                    });
    const double f = 100.0;
    table.addRow(leaf, anomalous ? f * broken_share : f, f, anomalous);
  }
  return table;
}

bool contains(const std::vector<core::ScoredPattern>& patterns,
              const LeafTable& table, const std::string& text) {
  const auto target =
      AttributeCombination::parse(table.schema(), text).value();
  return std::any_of(patterns.begin(), patterns.end(),
                     [&target](const core::ScoredPattern& p) {
                       return p.ac == target;
                     });
}

// -------------------------------------------------------------- Adtributor

TEST(Adtributor, FindsOneDimensionalCause) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  const auto patterns = adtributorLocalize(table, {}, 3);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].ac.toString(table.schema()), "(a1, *, *, *)");
  EXPECT_EQ(patterns[0].layer, 1);
}

TEST(Adtributor, ReturnsOnlyOneDimensionalPatterns) {
  const LeafTable table = makeTable({"(a1, b1, *, *)"});
  for (const auto& p : adtributorLocalize(table, {}, 10)) {
    EXPECT_EQ(p.ac.dim(), 1);
  }
}

TEST(Adtributor, NoChangeNoFindings) {
  const LeafTable table = makeTable({});
  EXPECT_TRUE(adtributorLocalize(table, {}, 5).empty());
}

TEST(Adtributor, RespectsK) {
  const LeafTable table = makeTable({"(a1, *, *, *)", "(a2, *, *, *)"});
  EXPECT_LE(adtributorLocalize(table, {}, 1).size(), 1u);
}

TEST(Adtributor, ScoresMonotoneNonIncreasing) {
  const LeafTable table = makeTable({"(a1, *, *, *)", "(*, *, *, d1)"});
  const auto patterns = adtributorLocalize(table, {}, 10);
  for (std::size_t i = 1; i < patterns.size(); ++i) {
    EXPECT_LE(patterns[i].score, patterns[i - 1].score);
  }
}

// ------------------------------------------------------------------ iDice

TEST(IDice, FindsMultiDimensionalCombination) {
  const LeafTable table = makeTable({"(a1, b2, *, *)"});
  const auto patterns = idiceLocalize(table, {}, 3);
  ASSERT_FALSE(patterns.empty());
  EXPECT_TRUE(contains(patterns, table, "(a1, b2, *, *)"));
}

TEST(IDice, PrefersGeneralCombination) {
  const LeafTable table = makeTable({"(a2, *, *, *)"});
  const auto patterns = idiceLocalize(table, {}, 3);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].ac.toString(table.schema()), "(a2, *, *, *)");
  // No descendant of the winner may appear.
  for (const auto& p : patterns) {
    EXPECT_FALSE(patterns[0].ac.isAncestorOf(p.ac));
  }
}

TEST(IDice, NoAnomaliesNothingReturned) {
  const LeafTable table = makeTable({});
  EXPECT_TRUE(idiceLocalize(table, {}, 5).empty());
}

TEST(IDice, ImpactPruningDropsTinyCombinations) {
  // One single anomalous leaf is below any reasonable impact floor when
  // the ratio threshold is high.
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    table.addRow(leaf, 100.0, 100.0, i == 0);
  }
  IDiceConfig config;
  config.min_impact_abs = 2;
  EXPECT_TRUE(idiceLocalize(table, config, 5).empty());
}

TEST(IDice, MaxLayerBoundsSearch) {
  const LeafTable table = makeTable({"(a1, b1, c1, *)"});
  IDiceConfig config;
  config.max_layer = 1;
  for (const auto& p : idiceLocalize(table, config, 10)) {
    EXPECT_LE(p.ac.dim(), 1);
  }
}

// -------------------------------------------------------------- FP-growth

TEST(FpRap, FindsGeneralPattern) {
  const LeafTable table = makeTable({"(a1, *, c2, *)"});
  const auto patterns = fpGrowthLocalize(table, {}, 3);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].ac.toString(table.schema()), "(a1, *, c2, *)");
}

TEST(FpRap, GeneralizationFilterDropsDescendants) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  const auto patterns = fpGrowthLocalize(table, {}, 10);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].ac.toString(table.schema()), "(a1, *, *, *)");
  for (const auto& p : patterns) {
    EXPECT_FALSE(patterns[0].ac.isAncestorOf(p.ac));
  }
}

TEST(FpRap, TwoIndependentRaps) {
  const LeafTable table = makeTable({"(a1, *, *, *)", "(*, *, c1, d2)"});
  const auto patterns = fpGrowthLocalize(table, {}, 5);
  EXPECT_TRUE(contains(patterns, table, "(a1, *, *, *)"));
  EXPECT_TRUE(contains(patterns, table, "(*, *, c1, d2)"));
}

TEST(FpRap, ConfidenceFilterSuppressesWeakRules) {
  // Anomalies confined to half of (a1): rule a1 => anomaly has
  // confidence 0.5 and must not pass a 0.7 bar; the true pattern does.
  const LeafTable table = makeTable({"(a1, b1, *, *)"});
  FpRapConfig config;
  config.min_confidence = 0.7;
  const auto patterns = fpGrowthLocalize(table, config, 5);
  EXPECT_FALSE(contains(patterns, table, "(a1, *, *, *)"));
  EXPECT_TRUE(contains(patterns, table, "(a1, b1, *, *)"));
}

TEST(FpRap, NoAnomaliesNothingReturned) {
  const LeafTable table = makeTable({});
  EXPECT_TRUE(fpGrowthLocalize(table, {}, 5).empty());
}

// ---------------------------------------------------------------- Squeeze

/// Table with per-pattern deviation magnitudes (Squeeze's assumptions).
LeafTable makeSqueezeStyleTable(
    const std::vector<std::pair<std::string, double>>& patterns_with_dev) {
  const Schema schema = Schema::tiny();
  std::vector<std::pair<AttributeCombination, double>> broken;
  for (const auto& [text, dev] : patterns_with_dev) {
    broken.emplace_back(AttributeCombination::parse(schema, text).value(), dev);
  }
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const double f = 100.0;
    double v = f;
    bool anomalous = false;
    for (const auto& [ac, dev] : broken) {
      if (ac.matchesLeaf(leaf)) {
        v = f * (1.0 - dev);
        anomalous = true;
        break;
      }
    }
    table.addRow(leaf, v, f, anomalous);
  }
  return table;
}

TEST(Squeeze, SingleRapRecovered) {
  const auto table = makeSqueezeStyleTable({{"(a3, *, *, *)", 0.6}});
  const auto patterns = squeezeLocalize(table, {}, 3);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].ac.toString(table.schema()), "(a3, *, *, *)");
  EXPECT_EQ(patterns[0].layer, 1);
}

TEST(Squeeze, TwoMagnitudesSplitIntoClusters) {
  const auto table = makeSqueezeStyleTable(
      {{"(a1, *, *, *)", 0.8}, {"(a2, *, *, *)", 0.35}});
  const auto patterns = squeezeLocalize(table, {}, 5);
  EXPECT_TRUE(contains(patterns, table, "(a1, *, *, *)"));
  EXPECT_TRUE(contains(patterns, table, "(a2, *, *, *)"));
}

TEST(Squeeze, PrefersCoarseCuboidOnTies) {
  // Regression test for the float-tie bug: a layer-1 pattern must beat
  // its own layer-2 decomposition.
  const auto table = makeSqueezeStyleTable({{"(*, b1, *, *)", 0.5}});
  const auto patterns = squeezeLocalize(table, {}, 4);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].ac.toString(table.schema()), "(*, b1, *, *)");
  EXPECT_EQ(patterns.size(), 1u);
}

TEST(Squeeze, QuietTableNothingReturned) {
  const auto table = makeSqueezeStyleTable({});
  EXPECT_TRUE(squeezeLocalize(table, {}, 5).empty());
}

TEST(Squeeze, GpsScoreWithinUnitRange) {
  const auto table = makeSqueezeStyleTable({{"(a1, *, *, *)", 0.7}});
  for (const auto& p : squeezeLocalize(table, {}, 5)) {
    EXPECT_GE(p.score, 0.0);
    EXPECT_LE(p.score, 1.0 + 1e-9);
  }
}

// ---------------------------------------------------------------- HotSpot

TEST(HotSpot, SingleRapRecovered) {
  const auto table = makeSqueezeStyleTable({{"(a2, *, *, *)", 0.7}});
  const auto patterns = hotspotLocalize(table, {}, 3);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].ac.toString(table.schema()), "(a2, *, *, *)");
}

TEST(HotSpot, MultiElementSetInOneCuboid) {
  // HotSpot's own assumption: both causes in the same cuboid with the
  // same magnitude.
  const auto table = makeSqueezeStyleTable(
      {{"(a1, *, *, *)", 0.6}, {"(a3, *, *, *)", 0.6}});
  const auto patterns = hotspotLocalize(table, {}, 5);
  EXPECT_TRUE(contains(patterns, table, "(a1, *, *, *)"));
  EXPECT_TRUE(contains(patterns, table, "(a3, *, *, *)"));
}

TEST(HotSpot, DeterministicForFixedSeed) {
  const auto table = makeSqueezeStyleTable({{"(a1, *, c1, *)", 0.5}});
  const auto a = hotspotLocalize(table, {}, 5);
  const auto b = hotspotLocalize(table, {}, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].ac, b[i].ac);
}

TEST(HotSpot, QuietTableNothingReturned) {
  const auto table = makeSqueezeStyleTable({});
  EXPECT_TRUE(hotspotLocalize(table, {}, 5).empty());
}

TEST(HotSpot, MaxSetSizeBoundsResult) {
  const auto table = makeSqueezeStyleTable(
      {{"(a1, *, *, *)", 0.6}, {"(a2, *, *, *)", 0.6}, {"(a3, *, *, *)", 0.6}});
  HotSpotConfig config;
  config.max_set_size = 1;
  EXPECT_LE(hotspotLocalize(table, config, 5).size(), 1u);
}

// ----------------------------------------------------- config behaviour

TEST(Adtributor, SuccinctnessCapHonored) {
  // Four independently broken elements of A; a cap of 2 keeps at most
  // two of them in the attribute's explanatory set.
  const Schema schema = Schema::synthetic({6, 3, 3});
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const bool broken = leaf.slot(0) < 4;
    table.addRow(leaf, broken ? 10.0 : 100.0, 100.0, broken);
  }
  AdtributorConfig config;
  config.max_elements_per_attribute = 2;
  config.t_ep = 0.3;  // reachable with two of four elements
  const auto patterns = adtributorLocalize(table, config, 10);
  // The cap is per attribute: at most 2 of A0's four broken elements
  // may appear (other attributes may contribute their own sets).
  std::size_t from_a0 = 0;
  for (const auto& p : patterns) {
    if (!p.ac.isWildcard(0)) ++from_a0;
  }
  EXPECT_LE(from_a0, 2u);
  EXPECT_GE(from_a0, 1u);
}

TEST(IDice, LooserSignificanceAcceptsMoreCandidates) {
  const LeafTable table = makeTable({"(a1, *, *, *)", "(*, b2, c1, *)"});
  IDiceConfig strict;
  strict.significance = 1e-12;
  IDiceConfig loose;
  loose.significance = 0.05;
  const auto few = idiceLocalize(table, strict, 0);
  const auto many = idiceLocalize(table, loose, 0);
  EXPECT_LE(few.size(), many.size());
}

TEST(Squeeze, MinClusterSizeFiltersNoise) {
  // A single deviating leaf is below any sane cluster floor.
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const bool broken = i == 0;
    table.addRow(leaf, broken ? 10.0 : 100.0, 100.0, broken);
  }
  SqueezeConfig config;
  config.min_cluster_size = 3;
  EXPECT_TRUE(squeezeLocalize(table, config, 5).empty());
}

TEST(FpRap, EnginesProduceIdenticalPatterns) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    (void)seed;  // tables below are deterministic; loop widens shapes
  }
  for (const char* pattern : {"(a1, *, *, *)", "(a2, b1, *, *)",
                              "(*, *, c1, d2)"}) {
    const LeafTable table = makeTable({pattern});
    FpRapConfig fp_config;
    fp_config.engine = RuleMiningEngine::kFpGrowth;
    FpRapConfig ap_config;
    ap_config.engine = RuleMiningEngine::kApriori;
    const auto fp = fpGrowthLocalize(table, fp_config, 0);
    const auto ap = fpGrowthLocalize(table, ap_config, 0);
    ASSERT_EQ(fp.size(), ap.size()) << pattern;
    for (std::size_t i = 0; i < fp.size(); ++i) {
      EXPECT_EQ(fp[i].ac, ap[i].ac) << pattern;
      EXPECT_DOUBLE_EQ(fp[i].score, ap[i].score) << pattern;
    }
  }
}

}  // namespace
}  // namespace rap::baselines
