#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/divergence.h"
#include "stats/entropy.h"
#include "stats/histogram.h"
#include "stats/hypothesis.h"

namespace rap::stats {
namespace {

// --------------------------------------------------------------- entropy

TEST(Entropy, BinaryEntropyEndpointsAndPeak) {
  EXPECT_DOUBLE_EQ(binaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binaryEntropy(1.0), 0.0);
  EXPECT_NEAR(binaryEntropy(0.5), std::log(2.0), 1e-12);
  // Symmetric.
  EXPECT_NEAR(binaryEntropy(0.2), binaryEntropy(0.8), 1e-12);
}

TEST(Entropy, FromCounts) {
  EXPECT_DOUBLE_EQ(entropyFromCounts({}), 0.0);
  EXPECT_DOUBLE_EQ(entropyFromCounts({5}), 0.0);
  EXPECT_NEAR(entropyFromCounts({3, 3}), std::log(2.0), 1e-12);
  EXPECT_NEAR(entropyFromCounts({1, 1, 1, 1}), std::log(4.0), 1e-12);
}

TEST(Entropy, DatasetInfoMatchesBinaryEntropy) {
  EXPECT_NEAR(datasetInfo(5, 10), binaryEntropy(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(datasetInfo(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(datasetInfo(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(datasetInfo(0, 0), 0.0);
}

TEST(Entropy, PerfectSplitRemovesAllEntropy) {
  // The paper's Fig. 6 left: splitting by the RAP attribute puts every
  // anomalous leaf in one pure branch.
  const std::vector<BranchCounts> branches{{8, 8}, {0, 8}, {0, 8}};
  EXPECT_DOUBLE_EQ(splitInfo(branches), 0.0);
  EXPECT_DOUBLE_EQ(classificationPower(8, 24, branches), 1.0);
}

TEST(Entropy, UselessSplitKeepsEntropy) {
  // Fig. 6 middle: anomalies spread evenly over the branches.
  const std::vector<BranchCounts> branches{{4, 12}, {4, 12}};
  EXPECT_NEAR(splitInfo(branches), datasetInfo(8, 24), 1e-12);
  EXPECT_NEAR(classificationPower(8, 24, branches), 0.0, 1e-12);
}

TEST(Entropy, CpMonotoneInSplitPurity) {
  // Purer splits must have larger CP.
  const std::vector<BranchCounts> pure{{8, 10}, {0, 14}};
  const std::vector<BranchCounts> mixed{{6, 12}, {2, 12}};
  EXPECT_GT(classificationPower(8, 24, pure),
            classificationPower(8, 24, mixed));
}

TEST(Entropy, CpZeroWhenNoLabelUncertainty) {
  const std::vector<BranchCounts> branches{{5, 5}, {5, 5}};
  EXPECT_DOUBLE_EQ(classificationPower(10, 10, branches), 0.0);
  EXPECT_DOUBLE_EQ(classificationPower(0, 10, {{0, 5}, {0, 5}}), 0.0);
}

TEST(Entropy, CpNeverNegative) {
  // Any split's weighted entropy <= dataset entropy (concavity), so CP is
  // clamped at 0 even under floating-point cancellation.
  const std::vector<BranchCounts> branches{{3, 9}, {3, 9}, {2, 6}};
  EXPECT_GE(classificationPower(8, 24, branches), 0.0);
}

// ------------------------------------------------------------- histogram

TEST(Histogram, BinOfClampsOutOfRange) {
  const Histogram hist(0.0, 10.0, 10);
  EXPECT_EQ(hist.binOf(-5.0), 0);
  EXPECT_EQ(hist.binOf(0.0), 0);
  EXPECT_EQ(hist.binOf(9.99), 9);
  EXPECT_EQ(hist.binOf(100.0), 9);
}

TEST(Histogram, CountsAccumulate) {
  Histogram hist(0.0, 4.0, 4);
  hist.addAll({0.5, 1.5, 1.6, 3.9});
  EXPECT_EQ(hist.totalCount(), 4u);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 2u);
  EXPECT_EQ(hist.count(2), 0u);
  EXPECT_EQ(hist.count(3), 1u);
}

TEST(Histogram, BinCenters) {
  const Histogram hist(0.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(hist.binCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(hist.binCenter(3), 3.5);
  EXPECT_DOUBLE_EQ(hist.binWidth(), 1.0);
}

TEST(Histogram, SmoothingPreservesMass) {
  Histogram hist(0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) hist.add(5.0);
  const auto smoothed = hist.smoothedCounts(0);  // radius 0 == identity
  double total = 0.0;
  for (const double c : smoothed) total += c;
  EXPECT_DOUBLE_EQ(total, 50.0);
}

TEST(DensityClusters, TwoSeparatedModes) {
  Histogram hist(0.0, 2.0, 40);
  for (int i = 0; i < 200; ++i) hist.add(0.4 + 0.001 * (i % 10));
  for (int i = 0; i < 150; ++i) hist.add(1.5 + 0.001 * (i % 10));
  const auto clusters = densityClusters(hist, 1, 0.5);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_LT(clusters[0].hi, clusters[1].lo);
  EXPECT_EQ(clusters[0].weight + clusters[1].weight, 350u);
}

TEST(DensityClusters, SingleModeStaysWhole) {
  Histogram hist(0.0, 2.0, 40);
  for (int i = 0; i < 500; ++i) {
    hist.add(1.0 + 0.2 * std::sin(static_cast<double>(i)));
  }
  const auto clusters = densityClusters(hist, 2, 0.3);
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(DensityClusters, EmptyHistogramNoClusters) {
  const Histogram hist(0.0, 1.0, 10);
  EXPECT_TRUE(densityClusters(hist, 1, 0.5).empty());
}

TEST(DensityClusters, AssignCoversEverySample) {
  Histogram hist(-1.0, 1.0, 20);
  const std::vector<double> values{-0.8, -0.75, 0.6, 0.65, 0.7};
  hist.addAll(values);
  const auto clusters = densityClusters(hist, 1, 0.5);
  const auto assignment = assignToClusters(values, clusters);
  for (const auto cluster_id : assignment) EXPECT_GE(cluster_id, 0);
}

// ------------------------------------------------------------ divergence

TEST(Divergence, JsSymmetricAndBounded) {
  const std::vector<double> p{0.9, 0.1};
  const std::vector<double> q{0.1, 0.9};
  EXPECT_NEAR(jsDivergence(p, q), jsDivergence(q, p), 1e-12);
  EXPECT_GE(jsDivergence(p, q), 0.0);
  EXPECT_LE(jsDivergence(p, q), std::log(2.0) + 1e-12);
  EXPECT_NEAR(jsDivergence(p, p), 0.0, 1e-12);
}

TEST(Divergence, JsDisjointSupportIsLn2) {
  EXPECT_NEAR(jsDivergence({1.0, 0.0}, {0.0, 1.0}), std::log(2.0), 1e-9);
}

TEST(Divergence, SurpriseZeroWhenSharesEqual) {
  EXPECT_NEAR(surprise(0.3, 0.3), 0.0, 1e-12);
  EXPECT_NEAR(surprise(0.0, 0.0), 0.0, 1e-12);
}

TEST(Divergence, SurpriseGrowsWithShareShift) {
  EXPECT_GT(surprise(0.5, 0.1), surprise(0.5, 0.4));
  EXPECT_GT(surprise(0.5, 0.1), 0.0);
}

TEST(Divergence, KlTermEdgeCases) {
  EXPECT_DOUBLE_EQ(klTerm(0.0, 0.5), 0.0);
  EXPECT_GT(klTerm(0.5, 1e-320), 0.0);  // q ~ 0 -> large positive
  EXPECT_NEAR(klTerm(0.5, 0.5), 0.0, 1e-12);
}

// ------------------------------------------------------------ hypothesis

TEST(Hypothesis, NormalCdf) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
}

TEST(Hypothesis, TwoProportionDetectsLargeDifference) {
  // 90/100 vs 10/100 is overwhelming evidence.
  EXPECT_LT(twoProportionPValue(90, 100, 10, 100), 1e-6);
}

TEST(Hypothesis, TwoProportionAcceptsEqualRates) {
  EXPECT_GT(twoProportionPValue(50, 100, 52, 100), 0.5);
  EXPECT_DOUBLE_EQ(twoProportionPValue(0, 0, 5, 10), 1.0);
}

TEST(Hypothesis, ChiSquareMonotoneInAssociation) {
  const double strong = chiSquare2x2(90, 10, 10, 90);
  const double weak = chiSquare2x2(55, 45, 45, 55);
  EXPECT_GT(strong, weak);
  EXPECT_GT(strong, 0.0);
}

TEST(Hypothesis, ChiSquareDegenerateMarginsAreZero) {
  EXPECT_DOUBLE_EQ(chiSquare2x2(0, 0, 10, 20), 0.0);
  EXPECT_DOUBLE_EQ(chiSquare2x2(5, 0, 5, 0), 0.0);
}

TEST(Hypothesis, ChiSquarePValue) {
  EXPECT_NEAR(chiSquarePValue1Df(0.0), 1.0, 1e-12);
  EXPECT_NEAR(chiSquarePValue1Df(3.841), 0.05, 2e-3);  // classic 5% point
  EXPECT_LT(chiSquarePValue1Df(20.0), 1e-4);
}

// ----------------------------------------------------------- descriptive

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Descriptive, RunningStatsMatchesBatch) {
  const std::vector<double> xs{1.5, -2.0, 3.25, 0.0, 7.5};
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
}

TEST(Descriptive, RunningStatsEmpty) {
  const RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace rap::stats
