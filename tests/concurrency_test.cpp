#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "eval/runner.h"
#include "gen/rapmd.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rap {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIsReusable) {
  util::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  util::ThreadPool pool(2);
  pool.wait();  // nothing submitted — must not block
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    util::ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  util::parallelFor(hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndSingleElement) {
  int calls = 0;
  util::parallelFor(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  util::parallelFor(1, [&calls](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SingleThreadIsSerial) {
  std::vector<std::size_t> order;
  util::parallelFor(10, [&order](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(Logging, ConcurrentStatementsNeverInterleave) {
  // Each LogMessage flushes its whole line with a single fwrite, so a
  // file written to by many threads must contain only complete lines.
  std::FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  util::setLogStream(capture);
  const util::LogLevel before = util::logLevel();
  util::setLogLevel(util::LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        RAP_LOG_KV(Info, {"thread", t}, {"i", i})
            << "BEGIN payload-" << t << "-" << i << " END";
      }
    });
  }
  for (auto& t : threads) t.join();
  util::setLogLevel(before);
  util::setLogStream(nullptr);

  std::fflush(capture);
  std::rewind(capture);
  std::string contents;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), capture)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(capture);

  // Every line carries exactly one statement: one BEGIN, one END, the
  // END before the newline, and the total matches what was logged.
  ASSERT_FALSE(contents.empty());
  EXPECT_EQ(contents.back(), '\n');
  int lines = 0;
  std::size_t start = 0;
  while (start < contents.size()) {
    std::size_t end = contents.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = contents.substr(start, end - start);
    EXPECT_EQ(line.find("BEGIN"), line.rfind("BEGIN")) << line;
    EXPECT_NE(line.find("BEGIN"), std::string::npos) << line;
    EXPECT_NE(line.find(" END"), std::string::npos) << line;
    EXPECT_NE(line.find("thread="), std::string::npos) << line;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

TEST(ParallelRunner, MatchesSerialResults) {
  gen::RapmdConfig config;
  config.num_cases = 8;
  gen::RapmdGenerator generator(dataset::Schema::cdn(), config, 321);
  const auto cases = generator.generate();
  const auto localizer = eval::rapminerLocalizer({});

  const auto serial = eval::runLocalizer(localizer, cases, {.k = 5});
  const auto parallel =
      eval::runLocalizerParallel(localizer, cases, {.k = 5}, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].case_id, parallel[i].case_id);
    ASSERT_EQ(serial[i].predictions.size(), parallel[i].predictions.size());
    for (std::size_t j = 0; j < serial[i].predictions.size(); ++j) {
      EXPECT_EQ(serial[i].predictions[j].ac, parallel[i].predictions[j].ac);
    }
  }
  EXPECT_DOUBLE_EQ(eval::aggregateRecallAtK(serial, cases, 3),
                   eval::aggregateRecallAtK(parallel, cases, 3));
}

}  // namespace
}  // namespace rap
