#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "eval/runner.h"
#include "gen/rapmd.h"
#include "util/thread_pool.h"

namespace rap {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIsReusable) {
  util::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  util::ThreadPool pool(2);
  pool.wait();  // nothing submitted — must not block
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    util::ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  util::parallelFor(hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndSingleElement) {
  int calls = 0;
  util::parallelFor(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  util::parallelFor(1, [&calls](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SingleThreadIsSerial) {
  std::vector<std::size_t> order;
  util::parallelFor(10, [&order](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelRunner, MatchesSerialResults) {
  gen::RapmdConfig config;
  config.num_cases = 8;
  gen::RapmdGenerator generator(dataset::Schema::cdn(), config, 321);
  const auto cases = generator.generate();
  const auto localizer = eval::rapminerLocalizer({});

  const auto serial = eval::runLocalizer(localizer, cases, {.k = 5});
  const auto parallel =
      eval::runLocalizerParallel(localizer, cases, {.k = 5}, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].case_id, parallel[i].case_id);
    ASSERT_EQ(serial[i].predictions.size(), parallel[i].predictions.size());
    for (std::size_t j = 0; j < serial[i].predictions.size(); ++j) {
      EXPECT_EQ(serial[i].predictions[j].ac, parallel[i].predictions[j].ac);
    }
  }
  EXPECT_DOUBLE_EQ(eval::aggregateRecallAtK(serial, cases, 3),
                   eval::aggregateRecallAtK(parallel, cases, 3));
}

}  // namespace
}  // namespace rap
