#include <gtest/gtest.h>

#include <cmath>

#include "dataset/cuboid.h"
#include "detect/detector.h"

namespace rap::detect {
namespace {

using dataset::AttributeCombination;
using dataset::LeafTable;
using dataset::Schema;

LeafTable tableWithDeviations(const std::vector<std::pair<double, double>>& vf) {
  const Schema schema = Schema::synthetic(
      {static_cast<std::int32_t>(vf.size()), 1});
  LeafTable table(schema);
  for (std::size_t i = 0; i < vf.size(); ++i) {
    AttributeCombination leaf(2);
    leaf.setSlot(0, static_cast<dataset::ElemId>(i));
    leaf.setSlot(1, 0);
    table.addRow(std::move(leaf), vf[i].first, vf[i].second,
                 /*anomalous=*/false);
  }
  return table;
}

TEST(RelativeDeviation, ComputesForecastMinusActualShare) {
  const Schema schema = Schema::synthetic({1, 1});
  dataset::LeafRow row;
  row.v = 60.0;
  row.f = 100.0;
  EXPECT_DOUBLE_EQ(relativeDeviation(row), 0.4);
  row.v = 120.0;
  EXPECT_DOUBLE_EQ(relativeDeviation(row), -0.2);
  (void)schema;
}

TEST(RelativeDeviation, ZeroForecastGuarded) {
  dataset::LeafRow row;
  row.v = 5.0;
  row.f = 0.0;
  EXPECT_TRUE(std::isfinite(relativeDeviation(row)));
}

TEST(RelativeDeviationDetector, OneSidedFlagsOnlyDrops) {
  // v/f pairs: strong drop, mild drop, spike, nominal.
  auto table = tableWithDeviations({{20, 100}, {95, 100}, {150, 100}, {100, 100}});
  const RelativeDeviationDetector detector(0.1);
  EXPECT_EQ(detector.run(table), 1u);
  EXPECT_TRUE(table.row(0).anomalous);
  EXPECT_FALSE(table.row(1).anomalous);
  EXPECT_FALSE(table.row(2).anomalous);  // spike ignored one-sided
  EXPECT_FALSE(table.row(3).anomalous);
}

TEST(RelativeDeviationDetector, TwoSidedFlagsSpikesToo) {
  auto table = tableWithDeviations({{20, 100}, {150, 100}, {100, 100}});
  const RelativeDeviationDetector detector(0.1, /*two_sided=*/true);
  EXPECT_EQ(detector.run(table), 2u);
  EXPECT_TRUE(table.row(0).anomalous);
  EXPECT_TRUE(table.row(1).anomalous);
  EXPECT_FALSE(table.row(2).anomalous);
}

TEST(RelativeDeviationDetector, ThresholdIsExclusive) {
  auto table = tableWithDeviations({{90, 100}});  // dev exactly 0.1
  const RelativeDeviationDetector detector(0.1);
  EXPECT_EQ(detector.run(table), 0u);
}

TEST(RelativeDeviationDetector, RerunOverwritesPriorVerdicts) {
  auto table = tableWithDeviations({{20, 100}, {100, 100}});
  table.setAnomalous(1, true);  // stale verdict
  const RelativeDeviationDetector detector(0.5);
  EXPECT_EQ(detector.run(table), 1u);
  EXPECT_TRUE(table.row(0).anomalous);
  EXPECT_FALSE(table.row(1).anomalous);
}

TEST(NSigmaDetector, FlagsOutlierResiduals) {
  // 19 nominal rows, one with a huge residual.
  std::vector<std::pair<double, double>> vf(19, {100.0, 100.0});
  vf.push_back({0.0, 100.0});
  auto table = tableWithDeviations(vf);
  const NSigmaDetector detector(3.0);
  EXPECT_EQ(detector.run(table), 1u);
  EXPECT_TRUE(table.row(19).anomalous);
}

TEST(NSigmaDetector, AllEqualResidualsNothingFlagged) {
  auto table = tableWithDeviations({{90, 100}, {90, 100}, {90, 100}});
  const NSigmaDetector detector(2.0);
  EXPECT_EQ(detector.run(table), 0u);  // zero variance -> no outliers
}

TEST(Detectors, NamesAreStable) {
  EXPECT_EQ(RelativeDeviationDetector(0.1).name(), "relative-deviation");
  EXPECT_EQ(NSigmaDetector(3.0).name(), "n-sigma");
}

}  // namespace
}  // namespace rap::detect
